//! Constraint-handling GA variants compared in the paper's Figure 13:
//!
//! * **GA-1** — stochastic ranking (Runarsson & Yao): candidates are
//!   ranked by a randomised bubble sort that compares objective value with
//!   probability `p_f` and constraint violation otherwise; invalid
//!   chromosomes survive but sink.
//! * **GA-2** — SAT-decoder (Lukasiewycz et al.): genotypes are free
//!   tunable vectors decoded to the nearest valid phenotype by the CSP
//!   solver; validity is guaranteed but decoded phenotypes drift from the
//!   parents, losing good genes as problems grow.
//! * **GA-3** — infeasibility-driven multi-objective (Ray et al.):
//!   selection keeps a Pareto mix of objective and violation count.

use heron_csp::{rand_sat_with_budget, Csp, Domain, Solution};
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_rng::Rng;

use crate::generate::GeneratedSpace;

use super::classic::{crossover_tunables, mutate_tunable};
use super::{push_best, roulette_wheel, Chromosome, Evaluate, Explorer};

/// Number of violated constraints of an assignment.
pub fn violation_count(csp: &Csp, sol: &Solution) -> usize {
    let env = |r: heron_csp::VarRef| sol.value(r);
    csp.constraints().iter().filter(|c| !c.check(&env)).count()
}

/// A chromosome annotated with its violation count.
#[derive(Debug, Clone)]
struct Ranked {
    solution: Solution,
    fitness: f64,
    violations: usize,
}

/// GA-1: stochastic ranking.
#[derive(Debug)]
pub struct StochasticRankingGa {
    /// Population size.
    pub population: usize,
    /// Probability of comparing by objective even for infeasible pairs.
    pub p_f: f64,
}

impl Default for StochasticRankingGa {
    fn default() -> Self {
        StochasticRankingGa {
            population: 20,
            p_f: 0.45,
        }
    }
}

fn stochastic_rank(pop: &mut [Ranked], p_f: f64, rng: &mut HeronRng) {
    let n = pop.len();
    for _ in 0..n {
        let mut swapped = false;
        for i in 0..n.saturating_sub(1) {
            let both_feasible = pop[i].violations == 0 && pop[i + 1].violations == 0;
            let by_objective = both_feasible || rng.random::<f64>() < p_f;
            let should_swap = if by_objective {
                pop[i].fitness < pop[i + 1].fitness
            } else {
                pop[i].violations > pop[i + 1].violations
            };
            if should_swap {
                pop.swap(i, i + 1);
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }
}

/// Generates a completely random (likely invalid) tunable assignment with
/// auxiliaries copied from a template solution.
fn random_genotype(space: &GeneratedSpace, base: &Solution, rng: &mut HeronRng) -> Solution {
    let mut values = base.values().to_vec();
    for var in space.csp.tunables() {
        let options: Vec<i64> = space.csp.var(var).domain.iter_values().collect();
        if let Some(&v) = options.as_slice().choose(rng) {
            values[var.0] = v;
        }
    }
    Solution::new(values)
}

/// Best-effort completion of auxiliaries for a tunable assignment; falls
/// back to the raw (violating) assignment when inconsistent, so that the
/// chromosome carries a non-zero violation count.
fn complete_or_keep(space: &GeneratedSpace, sol: Solution, rng: &mut HeronRng) -> Solution {
    super::classic::complete_from_tunables(space, &sol, rng).unwrap_or(sol)
}

impl Explorer for StochasticRankingGa {
    fn name(&self) -> &'static str {
        "GA-1"
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(steps);
        let seeds = rand_sat_with_budget(&space.csp, rng, self.population / 2, 400).solutions;
        if seeds.is_empty() {
            return curve;
        }
        let mut pop: Vec<Ranked> = Vec::new();
        for sol in seeds {
            if curve.len() >= steps {
                break;
            }
            let fitness = measure(&sol).unwrap_or_default();
            push_best(&mut curve, fitness);
            pop.push(Ranked {
                violations: violation_count(&space.csp, &sol),
                solution: sol,
                fitness,
            });
        }
        while curve.len() < steps {
            // Produce an offspring by crossover+mutation on raw genotypes.
            let a = pop
                .as_slice()
                .choose(rng)
                .expect("non-empty")
                .solution
                .clone();
            let b = pop
                .as_slice()
                .choose(rng)
                .expect("non-empty")
                .solution
                .clone();
            let child = crossover_tunables(space, &a, &b, rng);
            let child = mutate_tunable(space, &child, rng);
            let child = complete_or_keep(space, child, rng);
            let violations = violation_count(&space.csp, &child);
            let fitness = if violations == 0 {
                measure(&child).unwrap_or_default()
            } else {
                0.0
            };
            // Infeasible offspring still consume a trial (compile failure).
            push_best(&mut curve, fitness);
            pop.push(Ranked {
                solution: child,
                fitness,
                violations,
            });
            stochastic_rank(&mut pop, self.p_f, rng);
            pop.truncate(self.population);
        }
        curve
    }
}

/// GA-2: SAT-decoder GA.
#[derive(Debug)]
pub struct SatDecoderGa {
    /// Population size.
    pub population: usize,
}

impl Default for SatDecoderGa {
    fn default() -> Self {
        SatDecoderGa { population: 20 }
    }
}

/// Decodes a genotype to a valid phenotype: pins each tunable to its gene
/// value *if the propagated domain still allows it*, otherwise to the
/// nearest remaining value, then solves.
pub fn sat_decode(
    space: &GeneratedSpace,
    genotype: &Solution,
    rng: &mut HeronRng,
) -> Option<Solution> {
    use heron_csp::propagate::Propagator;
    use heron_csp::Dom;
    let csp = &space.csp;
    let prop = Propagator::new(csp);
    let mut store = prop.store();
    if prop.run_all(&mut store).is_err() {
        return None;
    }
    for var in csp.tunables() {
        let gene = genotype.value(var);
        let pick = if store.contains(var.0, gene) {
            gene
        } else {
            // Nearest value in the current domain.
            let options: Vec<i64> = match store.dom(var.0) {
                Dom::Bits(_) => store.value_list(var.0),
                Dom::Wide(Domain::Values(v)) => v.clone(),
                Dom::Wide(Domain::Range { lo, hi }) => vec![*lo, *hi],
            };
            *options
                .iter()
                .min_by_key(|&&v| (v - gene).abs())
                .expect("domains are non-empty")
        };
        if store.fix(var.0, pick).is_err() || prop.run_from(&mut store, var).is_err() {
            // Re-solve from scratch for the remainder.
            return rand_sat_with_budget(csp, rng, 1, 200).one();
        }
    }
    // Complete any remaining free variables through the solver with pins.
    let mut pinned = csp.clone();
    for var in csp.tunables() {
        if let Some(v) = store.fixed_value(var.0) {
            pinned.post_in(var, [v]);
        }
    }
    rand_sat_with_budget(&pinned, rng, 1, 200).one()
}

impl Explorer for SatDecoderGa {
    fn name(&self) -> &'static str {
        "GA-2"
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(steps);
        let seeds = rand_sat_with_budget(&space.csp, rng, self.population, 400).solutions;
        if seeds.is_empty() {
            return curve;
        }
        // Genotypes evolve freely; phenotypes are decoded before measuring.
        let mut pop: Vec<Chromosome> = Vec::new();
        for sol in seeds {
            if curve.len() >= steps {
                break;
            }
            let fitness = measure(&sol).unwrap_or_default();
            push_best(&mut curve, fitness);
            pop.push(Chromosome {
                solution: sol,
                fitness,
            });
        }
        while curve.len() < steps {
            let parents = roulette_wheel(&pop, 2, rng);
            let geno = crossover_tunables(
                space,
                &pop[parents[0]].solution,
                &pop[parents[1]].solution,
                rng,
            );
            let geno = if rng.random::<f64>() < 0.3 {
                mutate_tunable(space, &geno, rng)
            } else {
                geno
            };
            let Some(pheno) = sat_decode(space, &geno, rng) else {
                push_best(&mut curve, 0.0);
                continue;
            };
            debug_assert!(heron_csp::validate(&space.csp, &pheno));
            let fitness = measure(&pheno).unwrap_or_default();
            push_best(&mut curve, fitness);
            pop.push(Chromosome {
                solution: pheno,
                fitness,
            });
            pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
            pop.truncate(self.population);
        }
        curve
    }
}

/// GA-3: infeasibility-driven evolutionary algorithm (simplified IDEA):
/// a fraction of the archive is reserved for the *best infeasible*
/// chromosomes, the rest selected by objective among the feasible.
#[derive(Debug)]
pub struct InfeasibilityDrivenGa {
    /// Population size.
    pub population: usize,
    /// Fraction of slots reserved for infeasible chromosomes.
    pub infeasible_fraction: f64,
}

impl Default for InfeasibilityDrivenGa {
    fn default() -> Self {
        InfeasibilityDrivenGa {
            population: 20,
            infeasible_fraction: 0.2,
        }
    }
}

impl Explorer for InfeasibilityDrivenGa {
    fn name(&self) -> &'static str {
        "GA-3"
    }

    fn explore(
        &mut self,
        space: &GeneratedSpace,
        measure: &mut Evaluate<'_>,
        steps: usize,
        rng: &mut HeronRng,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(steps);
        let seeds = rand_sat_with_budget(&space.csp, rng, self.population / 2, 400).solutions;
        if seeds.is_empty() {
            return curve;
        }
        let mut pop: Vec<Ranked> = Vec::new();
        for sol in seeds {
            if curve.len() >= steps {
                break;
            }
            let fitness = measure(&sol).unwrap_or_default();
            push_best(&mut curve, fitness);
            pop.push(Ranked {
                violations: violation_count(&space.csp, &sol),
                solution: sol,
                fitness,
            });
        }
        while curve.len() < steps {
            let a = pop
                .as_slice()
                .choose(rng)
                .expect("non-empty")
                .solution
                .clone();
            let child = if rng.random::<f64>() < 0.5 {
                let b = pop
                    .as_slice()
                    .choose(rng)
                    .expect("non-empty")
                    .solution
                    .clone();
                crossover_tunables(space, &a, &b, rng)
            } else {
                random_genotype(space, &a, rng)
            };
            let child = mutate_tunable(space, &child, rng);
            let child = complete_or_keep(space, child, rng);
            let violations = violation_count(&space.csp, &child);
            let fitness = if violations == 0 {
                measure(&child).unwrap_or_default()
            } else {
                0.0
            };
            push_best(&mut curve, fitness);
            pop.push(Ranked {
                solution: child,
                fitness,
                violations,
            });

            // IDEA-style environmental selection.
            let slots_inf = ((self.population as f64) * self.infeasible_fraction).round() as usize;
            let (mut feas, mut infeas): (Vec<Ranked>, Vec<Ranked>) =
                pop.drain(..).partition(|c| c.violations == 0);
            feas.sort_by(|x, y| y.fitness.total_cmp(&x.fitness));
            infeas.sort_by_key(|c| c.violations);
            feas.truncate(self.population - slots_inf.min(infeas.len()));
            infeas.truncate(slots_inf);
            pop = feas;
            pop.extend(infeas);
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_csp::VarCategory;

    fn toy_space() -> GeneratedSpace {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::divisors_of(64), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::divisors_of(64), VarCategory::Tunable);
        let n = csp.add_const("n", 64);
        csp.post_prod(n, vec![x, y]);
        GeneratedSpace {
            csp,
            template: heron_sched::KernelTemplate::default(),
            dla: heron_dla::v100(),
            workload: "toy".into(),
        }
    }

    #[test]
    fn violation_count_detects_broken_prod() {
        let space = toy_space();
        assert_eq!(
            violation_count(&space.csp, &Solution::new(vec![8, 8, 64])),
            0
        );
        assert_eq!(
            violation_count(&space.csp, &Solution::new(vec![8, 4, 64])),
            1
        );
    }

    #[test]
    fn sat_decode_returns_valid_phenotypes() {
        let space = toy_space();
        let mut rng = HeronRng::from_seed(0);
        // Genotype violating x*y == 64.
        let geno = Solution::new(vec![8, 16, 64]);
        let pheno = sat_decode(&space, &geno, &mut rng).expect("decodes");
        assert!(heron_csp::validate(&space.csp, &pheno));
        // Decoder keeps the first gene (pinned while consistent).
        assert_eq!(pheno.value(heron_csp::VarRef(0)), 8);
    }

    #[test]
    fn stochastic_rank_sinks_violators() {
        let mut rng = HeronRng::from_seed(1);
        let mut pop: Vec<Ranked> = vec![
            Ranked {
                solution: Solution::new(vec![]),
                fitness: 9.0,
                violations: 5,
            },
            Ranked {
                solution: Solution::new(vec![]),
                fitness: 1.0,
                violations: 0,
            },
            Ranked {
                solution: Solution::new(vec![]),
                fitness: 5.0,
                violations: 0,
            },
        ];
        // With p_f = 0 ranking is purely by violations then objective.
        stochastic_rank(&mut pop, 0.0, &mut rng);
        assert_eq!(pop[0].violations, 0);
        assert!(pop[0].fitness >= pop[1].fitness || pop[1].violations == 0);
        assert_eq!(pop[2].violations, 5);
    }
}
