//! Checkpoint/resume for tuning sessions.
//!
//! A [`TuneCheckpoint`] captures *everything* a [`crate::tuner::Tuner`]
//! needs to continue an interrupted session bit-for-bit: the best program
//! so far, the best-so-far curve, every measured fingerprint, the
//! quarantine set, the cost-model sample log (replayed on resume), the
//! survivor population, and — critically — the exact RNG stream position.
//!
//! The on-disk format is a line-oriented UTF-8 text format in the same
//! `key = value` idiom as the [`crate::library`] format, versioned by a
//! `heron-checkpoint v2` header. Floating-point values are serialised as
//! the 16-hex-digit big-endian IEEE-754 bit pattern (via [`f64::to_bits`])
//! so the roundtrip is *exact* — a resumed session must reproduce the
//! uninterrupted one to the last bit, which decimal formatting cannot
//! guarantee. A human-readable decimal rendering follows as a `#` comment
//! and is ignored by the parser.
//!
//! # Corruption proofing (format v2)
//!
//! Resuming from a half-written or bit-flipped checkpoint must fail
//! loudly, never half-parse into a wrong-but-plausible session. Two
//! mechanisms guarantee that:
//!
//! * **Atomic save** — [`TuneCheckpoint::save`] writes to a temporary
//!   sibling file, syncs it, then renames over the target, so no reader
//!   can ever observe a partially written checkpoint.
//! * **CRC32 footer** — the final line is `crc32 = xxxxxxxx`, the IEEE
//!   CRC-32 of every byte before it. [`TuneCheckpoint::from_text`]
//!   verifies the footer *before* parsing anything (the header included),
//!   so any truncation or byte flip is rejected with
//!   [`CheckpointError::Corrupt`] carrying the corrupt byte offset. A
//!   pre-CRC `heron-checkpoint v1` file is rejected with
//!   [`CheckpointError::VersionMismatch`].
//!
//! ```text
//! heron-checkpoint v2
//! workload = gemm-256
//! dla = nvidia-v100
//! seed = 42
//! rng = 0123456789abcdef ... (4 words)
//! best_gflops = 40b3880000000000 # 5000
//! curve = 40b3880000000000 ...
//! sample = 40b3880000000000 4 16 2 ...
//! survivor = 4 16 2 ...
//! crc32 = 89abcdef
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use heron_insight::SearchLog;

use crate::tuner::{IterationStats, TuneTiming};

/// Why loading or applying a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The checkpoint bytes fail integrity verification (truncated file,
    /// bit flip, invalid UTF-8, missing or mismatching CRC footer). The
    /// offset points at the corrupt region so operators can inspect it.
    Corrupt {
        /// Byte offset of (the start of) the corrupt region.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint uses a different (e.g. pre-CRC `v1`) format
    /// version.
    VersionMismatch {
        /// The header found in the file.
        found: String,
        /// The header this build writes and reads.
        expected: String,
    },
    /// The checkpoint text passed integrity checks but is malformed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint is internally valid but does not belong to the
    /// session it was applied to (wrong workload, platform or solution
    /// arity).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { offset, message } => {
                write!(f, "checkpoint corrupt at byte offset {offset}: {message}")
            }
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version mismatch: found `{found}`, this build reads `{expected}`"
            ),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// IEEE CRC-32 (polynomial `0xEDB88320`, bit-reflected, init/xorout
/// `0xFFFFFFFF`) — the checksum protecting the checkpoint body. Bitwise,
/// dependency-free; checkpoints are small, so table-driven speed is not
/// worth the code.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A complete serialisable snapshot of a tuning session, exact at
/// iteration boundaries. See the [module docs](self) for the format.
#[derive(Debug, Clone)]
pub struct TuneCheckpoint {
    /// Workload name the session tunes (must match the space on resume).
    pub workload: String,
    /// Platform name the session targets (must match on resume).
    pub dla: String,
    /// The session seed (identifies the fork-stream family).
    pub seed: u64,
    /// Exact xoshiro256** state words of the main RNG stream.
    pub rng_state: [u64; 4],
    /// Consecutive stalled ε-greedy rounds at checkpoint time.
    pub stall_rounds: usize,
    /// Lifetime ε-greedy rounds executed, earlier resumes included — the
    /// counter a `TunerControl` round deadline is measured against.
    /// Absent in pre-v7 checkpoints (defaults to 0 on parse).
    pub rounds_total: usize,
    /// Quarantine entries evicted so far by the `max_quarantined` bound.
    /// Absent in pre-v7 checkpoints (defaults to 0 on parse).
    pub quarantine_evictions: usize,
    /// Best observed throughput so far, Gops.
    pub best_gflops: f64,
    /// Latency of the best program, seconds (`inf` if none found yet).
    pub best_latency_s: f64,
    /// Raw variable values of the best solution, if any.
    pub best_solution: Option<Vec<i64>>,
    /// Best-so-far score after every trial.
    pub curve: Vec<f64>,
    /// Trials that produced a running program.
    pub valid_trials: usize,
    /// Trials rejected or quarantined.
    pub invalid_trials: usize,
    /// Trials that needed at least one transient-failure retry.
    pub retried_trials: usize,
    /// Total transient-failure retries across all trials.
    pub total_retries: usize,
    /// Trials that saw at least one measurement timeout.
    pub timeout_trials: usize,
    /// Offspring whose CSP needed constraint relaxation to materialise.
    pub repaired_offspring: usize,
    /// Total injected `IN` constraints dropped by offspring repair.
    pub relaxed_constraints: usize,
    /// Solver calls that hit the step deadline.
    pub solver_deadline_hits: usize,
    /// Offspring replaced by a random `CSP_initial` sample after repair
    /// failed.
    pub fallback_samples: usize,
    /// Error occurrences by class tag.
    pub error_counts: BTreeMap<String, usize>,
    /// Timing breakdown so far.
    pub timing: TuneTiming,
    /// Per-iteration statistics so far.
    pub iterations: Vec<IterationStats>,
    /// Fingerprints of every measured solution, ascending.
    pub measured: Vec<u64>,
    /// Fingerprints of every *currently* quarantined solution, in
    /// insertion order (the order the `max_quarantined` bound evicts
    /// oldest-first — serialising it keeps eviction deterministic across
    /// resume). Pre-v7 checkpoints stored ascending order, which is an
    /// equally valid insertion history and still parses.
    pub quarantined: Vec<u64>,
    /// The cost-model training log in measurement order:
    /// `(solution values, trained score)`.
    pub samples: Vec<(Vec<i64>, f64)>,
    /// Raw variable values of the survivor population.
    pub survivors: Vec<Vec<i64>>,
    /// The search-health log, when insight was enabled on the session.
    /// Serialised as `insight.*` keys so a resumed run's `insight.json`
    /// is byte-identical to the uninterrupted run's. Absent (`None`) in
    /// checkpoints written without insight — including every pre-insight
    /// v2 file, which therefore still parses.
    pub insight: Option<SearchLog>,
}

const HEADER: &str = "heron-checkpoint v2";
const HEADER_PREFIX: &str = "heron-checkpoint v";
const FOOTER_KEY: &str = "crc32 = ";

/// Exact f64 serialisation: 16 hex digits of the IEEE-754 bit pattern.
fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64_hex(tok: &str, line: usize) -> Result<f64, CheckpointError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Parse {
            line,
            message: format!("expected 16-hex-digit f64 bits, got `{tok}`"),
        })
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, CheckpointError> {
    tok.parse::<u64>().map_err(|_| CheckpointError::Parse {
        line,
        message: format!("expected unsigned integer, got `{tok}`"),
    })
}

fn parse_usize(tok: &str, line: usize) -> Result<usize, CheckpointError> {
    tok.parse::<usize>().map_err(|_| CheckpointError::Parse {
        line,
        message: format!("expected unsigned integer, got `{tok}`"),
    })
}

fn parse_i64_list(toks: &str, line: usize) -> Result<Vec<i64>, CheckpointError> {
    toks.split_whitespace()
        .map(|t| {
            t.parse::<i64>().map_err(|_| CheckpointError::Parse {
                line,
                message: format!("expected integer, got `{t}`"),
            })
        })
        .collect()
}

/// Locates and verifies the CRC footer; returns the protected body on
/// success. Runs *before* any parsing so corruption can never half-parse.
fn verify_footer(text: &str) -> Result<&str, CheckpointError> {
    if text.trim().is_empty() {
        return Err(CheckpointError::Corrupt {
            offset: 0,
            message: "empty checkpoint".into(),
        });
    }
    let footer_pos = match text.rfind(&format!("\n{FOOTER_KEY}")) {
        Some(p) => p + 1,
        None => {
            // No footer at all: an old v1 file (pre-CRC format) is a
            // version mismatch; anything else is corrupt/truncated.
            let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
            if first.trim().starts_with(HEADER_PREFIX) && first.trim() != HEADER {
                return Err(CheckpointError::VersionMismatch {
                    found: first.trim().to_string(),
                    expected: HEADER.to_string(),
                });
            }
            return Err(CheckpointError::Corrupt {
                offset: text.len(),
                message: "missing crc32 footer (truncated checkpoint?)".into(),
            });
        }
    };
    // The footer must be the *exact* tail of the file — `crc32 = ` plus 8
    // lowercase hex digits plus one final newline, nothing else. A strict
    // byte-level check (no trimming, no tolerated trailing whitespace)
    // guarantees that a flip of any byte of the file, footer included,
    // is detected: bytes before the footer change the CRC, bytes inside
    // it break this shape or the stored value.
    let tail = &text[footer_pos..];
    let hex = tail
        .strip_prefix(FOOTER_KEY)
        .and_then(|rest| rest.strip_suffix('\n'))
        .filter(|h| {
            h.len() == 8
                && h.bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        });
    let stored = match hex.and_then(|h| u32::from_str_radix(h, 16).ok()) {
        Some(v) => v,
        None => {
            return Err(CheckpointError::Corrupt {
                offset: footer_pos,
                message: format!("unreadable crc32 footer `{}`", tail.trim_end()),
            });
        }
    };
    let body = &text[..footer_pos];
    let computed = crc32(body.as_bytes());
    if stored != computed {
        return Err(CheckpointError::Corrupt {
            offset: footer_pos,
            message: format!(
                "crc mismatch over bytes 0..{}: stored {stored:08x}, computed {computed:08x}",
                body.len()
            ),
        });
    }
    Ok(body)
}

impl TuneCheckpoint {
    /// Serialises the checkpoint to its versioned text format, CRC footer
    /// included.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "# tuning-session checkpoint; floats are IEEE-754 bits");
        let _ = writeln!(out, "workload = {}", self.workload);
        let _ = writeln!(out, "dla = {}", self.dla);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(
            out,
            "rng = {:016x} {:016x} {:016x} {:016x}",
            self.rng_state[0], self.rng_state[1], self.rng_state[2], self.rng_state[3]
        );
        let _ = writeln!(out, "stall_rounds = {}", self.stall_rounds);
        let _ = writeln!(out, "rounds_total = {}", self.rounds_total);
        let _ = writeln!(out, "quarantine_evictions = {}", self.quarantine_evictions);
        let _ = writeln!(
            out,
            "best_gflops = {} # {}",
            f64_hex(self.best_gflops),
            self.best_gflops
        );
        let _ = writeln!(
            out,
            "best_latency_s = {} # {}",
            f64_hex(self.best_latency_s),
            self.best_latency_s
        );
        if let Some(values) = &self.best_solution {
            let _ = writeln!(out, "best_solution = {}", join_i64(values));
        }
        let _ = writeln!(out, "valid_trials = {}", self.valid_trials);
        let _ = writeln!(out, "invalid_trials = {}", self.invalid_trials);
        let _ = writeln!(out, "retried_trials = {}", self.retried_trials);
        let _ = writeln!(out, "total_retries = {}", self.total_retries);
        let _ = writeln!(out, "timeout_trials = {}", self.timeout_trials);
        let _ = writeln!(out, "repaired_offspring = {}", self.repaired_offspring);
        let _ = writeln!(out, "relaxed_constraints = {}", self.relaxed_constraints);
        let _ = writeln!(out, "solver_deadline_hits = {}", self.solver_deadline_hits);
        let _ = writeln!(out, "fallback_samples = {}", self.fallback_samples);
        for (tag, n) in &self.error_counts {
            let _ = writeln!(out, "error.{tag} = {n}");
        }
        let _ = writeln!(out, "timing.cga_s = {}", f64_hex(self.timing.cga_s));
        let _ = writeln!(out, "timing.sim_s = {}", f64_hex(self.timing.sim_s));
        let _ = writeln!(out, "timing.model_s = {}", f64_hex(self.timing.model_s));
        let _ = writeln!(
            out,
            "timing.hw_measure_s = {}",
            f64_hex(self.timing.hw_measure_s)
        );
        if !self.curve.is_empty() {
            let hex: Vec<String> = self.curve.iter().map(|&x| f64_hex(x)).collect();
            let _ = writeln!(out, "curve = {}", hex.join(" "));
        }
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "iter = {} {} {} {} {} {}",
                it.iteration,
                it.trials_done,
                f64_hex(it.best_gflops),
                f64_hex(it.batch_mean_gflops),
                u8::from(it.model_fitted),
                it.population
            );
        }
        if !self.measured.is_empty() {
            let toks: Vec<String> = self.measured.iter().map(|fp| fp.to_string()).collect();
            let _ = writeln!(out, "measured = {}", toks.join(" "));
        }
        if !self.quarantined.is_empty() {
            let toks: Vec<String> = self.quarantined.iter().map(|fp| fp.to_string()).collect();
            let _ = writeln!(out, "quarantined = {}", toks.join(" "));
        }
        for (values, score) in &self.samples {
            let _ = writeln!(out, "sample = {} {}", f64_hex(*score), join_i64(values));
        }
        for values in &self.survivors {
            let _ = writeln!(out, "survivor = {}", join_i64(values));
        }
        if let Some(log) = &self.insight {
            for (k, v) in log.checkpoint_lines() {
                let _ = writeln!(out, "{k} = {v}");
            }
        }
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "{FOOTER_KEY}{crc:08x}");
        out
    }

    /// Parses a checkpoint from its text format.
    ///
    /// Verification order is strict: CRC footer first (any truncation or
    /// byte flip → [`CheckpointError::Corrupt`]), then the version header
    /// ([`CheckpointError::VersionMismatch`] for a recognised older
    /// format), then the line-by-line parse
    /// ([`CheckpointError::Parse`] with the 1-based line number).
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let body = verify_footer(text)?;
        let mut lines = body.lines().enumerate();
        let header = loop {
            match lines.next() {
                Some((_, l)) if l.trim().is_empty() => continue,
                Some((i, l)) => break (i, l.trim()),
                None => {
                    return Err(CheckpointError::Parse {
                        line: 1,
                        message: "checkpoint has no header line".into(),
                    })
                }
            }
        };
        if header.1 != HEADER {
            if header.1.starts_with(HEADER_PREFIX) {
                return Err(CheckpointError::VersionMismatch {
                    found: header.1.to_string(),
                    expected: HEADER.to_string(),
                });
            }
            return Err(CheckpointError::Parse {
                line: header.0 + 1,
                message: format!("expected `{HEADER}` header, got `{}`", header.1),
            });
        }

        let mut ck = TuneCheckpoint {
            workload: String::new(),
            dla: String::new(),
            seed: 0,
            rng_state: [0; 4],
            stall_rounds: 0,
            rounds_total: 0,
            quarantine_evictions: 0,
            best_gflops: 0.0,
            best_latency_s: f64::INFINITY,
            best_solution: None,
            curve: Vec::new(),
            valid_trials: 0,
            invalid_trials: 0,
            retried_trials: 0,
            total_retries: 0,
            timeout_trials: 0,
            repaired_offspring: 0,
            relaxed_constraints: 0,
            solver_deadline_hits: 0,
            fallback_samples: 0,
            error_counts: BTreeMap::new(),
            timing: TuneTiming::default(),
            iterations: Vec::new(),
            measured: Vec::new(),
            quarantined: Vec::new(),
            samples: Vec::new(),
            survivors: Vec::new(),
            insight: None,
        };
        let mut seen_rng = false;

        for (idx, raw) in lines {
            let line_no = idx + 1;
            // Strip trailing comments; skip blank/comment-only lines.
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let (key, value) = content
                .split_once('=')
                .ok_or_else(|| CheckpointError::Parse {
                    line: line_no,
                    message: format!("expected `key = value`, got `{content}`"),
                })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "workload" => ck.workload = value.to_string(),
                "dla" => ck.dla = value.to_string(),
                "seed" => ck.seed = parse_u64(value, line_no)?,
                "rng" => {
                    let words: Vec<&str> = value.split_whitespace().collect();
                    if words.len() != 4 {
                        return Err(CheckpointError::Parse {
                            line: line_no,
                            message: format!("rng needs 4 state words, got {}", words.len()),
                        });
                    }
                    for (i, w) in words.iter().enumerate() {
                        ck.rng_state[i] =
                            u64::from_str_radix(w, 16).map_err(|_| CheckpointError::Parse {
                                line: line_no,
                                message: format!("bad rng state word `{w}`"),
                            })?;
                    }
                    seen_rng = true;
                }
                "stall_rounds" => ck.stall_rounds = parse_usize(value, line_no)?,
                "rounds_total" => ck.rounds_total = parse_usize(value, line_no)?,
                "quarantine_evictions" => {
                    ck.quarantine_evictions = parse_usize(value, line_no)?;
                }
                "best_gflops" => ck.best_gflops = parse_f64_hex(value, line_no)?,
                "best_latency_s" => ck.best_latency_s = parse_f64_hex(value, line_no)?,
                "best_solution" => ck.best_solution = Some(parse_i64_list(value, line_no)?),
                "valid_trials" => ck.valid_trials = parse_usize(value, line_no)?,
                "invalid_trials" => ck.invalid_trials = parse_usize(value, line_no)?,
                "retried_trials" => ck.retried_trials = parse_usize(value, line_no)?,
                "total_retries" => ck.total_retries = parse_usize(value, line_no)?,
                "timeout_trials" => ck.timeout_trials = parse_usize(value, line_no)?,
                "repaired_offspring" => ck.repaired_offspring = parse_usize(value, line_no)?,
                "relaxed_constraints" => ck.relaxed_constraints = parse_usize(value, line_no)?,
                "solver_deadline_hits" => ck.solver_deadline_hits = parse_usize(value, line_no)?,
                "fallback_samples" => ck.fallback_samples = parse_usize(value, line_no)?,
                "timing.cga_s" => ck.timing.cga_s = parse_f64_hex(value, line_no)?,
                "timing.sim_s" => ck.timing.sim_s = parse_f64_hex(value, line_no)?,
                "timing.model_s" => ck.timing.model_s = parse_f64_hex(value, line_no)?,
                "timing.hw_measure_s" => ck.timing.hw_measure_s = parse_f64_hex(value, line_no)?,
                "curve" => {
                    ck.curve = value
                        .split_whitespace()
                        .map(|t| parse_f64_hex(t, line_no))
                        .collect::<Result<_, _>>()?;
                }
                "iter" => {
                    let toks: Vec<&str> = value.split_whitespace().collect();
                    if toks.len() != 6 {
                        return Err(CheckpointError::Parse {
                            line: line_no,
                            message: format!("iter needs 6 fields, got {}", toks.len()),
                        });
                    }
                    ck.iterations.push(IterationStats {
                        iteration: parse_usize(toks[0], line_no)?,
                        trials_done: parse_usize(toks[1], line_no)?,
                        best_gflops: parse_f64_hex(toks[2], line_no)?,
                        batch_mean_gflops: parse_f64_hex(toks[3], line_no)?,
                        model_fitted: toks[4] == "1",
                        population: parse_usize(toks[5], line_no)?,
                    });
                }
                "measured" => {
                    ck.measured = value
                        .split_whitespace()
                        .map(|t| parse_u64(t, line_no))
                        .collect::<Result<_, _>>()?;
                }
                "quarantined" => {
                    ck.quarantined = value
                        .split_whitespace()
                        .map(|t| parse_u64(t, line_no))
                        .collect::<Result<_, _>>()?;
                }
                "sample" => {
                    let mut toks = value.splitn(2, char::is_whitespace);
                    let score = parse_f64_hex(toks.next().unwrap_or_default(), line_no)?;
                    let values = parse_i64_list(toks.next().unwrap_or(""), line_no)?;
                    ck.samples.push((values, score));
                }
                "survivor" => ck.survivors.push(parse_i64_list(value, line_no)?),
                k if k.starts_with("insight.") => {
                    ck.insight
                        .get_or_insert_with(|| SearchLog::new("", "", 0, 0))
                        .apply_checkpoint_line(k, value)
                        .map_err(|message| CheckpointError::Parse {
                            line: line_no,
                            message,
                        })?;
                }
                k if k.starts_with("error.") => {
                    let tag = k.trim_start_matches("error.").to_string();
                    ck.error_counts.insert(tag, parse_usize(value, line_no)?);
                }
                _ => {
                    return Err(CheckpointError::Parse {
                        line: line_no,
                        message: format!("unknown key `{key}`"),
                    });
                }
            }
        }
        if ck.workload.is_empty() || ck.dla.is_empty() || !seen_rng {
            return Err(CheckpointError::Parse {
                line: 1,
                message: "checkpoint is missing workload, dla or rng state".into(),
            });
        }
        Ok(ck)
    }

    /// Writes the checkpoint to `path` **atomically**: the text is
    /// written to a temporary sibling (`<path>.tmp.<pid>`), synced to
    /// disk, then renamed over the target. A crash at any point leaves
    /// either the previous checkpoint or the new one — never a partial
    /// file.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failure (the temporary file
    /// is cleaned up best-effort).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let write_sync_rename = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = write_sync_rename {
            std::fs::remove_file(&tmp).ok();
            return Err(CheckpointError::Io(e));
        }
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Corrupt`] on integrity failure (invalid UTF-8,
    /// truncation, CRC mismatch), [`CheckpointError::VersionMismatch`]
    /// for pre-CRC formats, [`CheckpointError::Parse`] on malformed
    /// content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8(bytes).map_err(|e| CheckpointError::Corrupt {
            offset: e.utf8_error().valid_up_to(),
            message: "checkpoint is not valid UTF-8".into(),
        })?;
        Self::from_text(&text)
    }
}

fn join_i64(values: &[i64]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Appends a valid CRC footer to a hand-written body, so tests can
    /// exercise the parser behind the integrity gate.
    fn with_crc(body: &str) -> String {
        format!("{body}{FOOTER_KEY}{:08x}\n", crc32(body.as_bytes()))
    }

    fn sample_checkpoint() -> TuneCheckpoint {
        let mut error_counts = BTreeMap::new();
        error_counts.insert("timeout".to_string(), 3);
        error_counts.insert("capacity".to_string(), 7);
        TuneCheckpoint {
            workload: "gemm-256".into(),
            dla: "nvidia-v100".into(),
            seed: 42,
            rng_state: [
                0x0123_4567_89ab_cdef,
                0xfedc_ba98_7654_3210,
                0xdead_beef_cafe_f00d,
                0x0000_0000_0000_0001,
            ],
            stall_rounds: 2,
            rounds_total: 9,
            quarantine_evictions: 1,
            best_gflops: 1_234.567_890_123,
            best_latency_s: 3.2e-5,
            best_solution: Some(vec![4, 16, 2, -1, 8]),
            curve: vec![0.0, 100.5, 100.5, 1_234.567_890_123],
            valid_trials: 3,
            invalid_trials: 1,
            retried_trials: 2,
            total_retries: 5,
            timeout_trials: 1,
            repaired_offspring: 4,
            relaxed_constraints: 9,
            solver_deadline_hits: 2,
            fallback_samples: 1,
            error_counts,
            timing: TuneTiming {
                cga_s: 0.25,
                sim_s: 0.125,
                model_s: 0.0625,
                hw_measure_s: 17.75,
            },
            iterations: vec![IterationStats {
                iteration: 0,
                trials_done: 4,
                best_gflops: 1_234.567_890_123,
                batch_mean_gflops: 617.3,
                model_fitted: true,
                population: 32,
            }],
            measured: vec![11, 22, 33, 44],
            quarantined: vec![22],
            samples: vec![
                (vec![4, 16, 2, -1, 8], 1_234.567_890_123),
                (vec![2, 8, 4, 0, 16], 100.5),
            ],
            survivors: vec![vec![4, 16, 2, -1, 8], vec![2, 8, 4, 0, 16]],
            insight: None,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let ck = sample_checkpoint();
        let text = ck.to_text();
        let back = TuneCheckpoint::from_text(&text).expect("parses");
        assert_eq!(back.workload, ck.workload);
        assert_eq!(back.dla, ck.dla);
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.rng_state, ck.rng_state);
        assert_eq!(back.stall_rounds, ck.stall_rounds);
        assert_eq!(back.rounds_total, ck.rounds_total);
        assert_eq!(back.quarantine_evictions, ck.quarantine_evictions);
        assert_eq!(back.best_gflops.to_bits(), ck.best_gflops.to_bits());
        assert_eq!(back.best_latency_s.to_bits(), ck.best_latency_s.to_bits());
        assert_eq!(back.best_solution, ck.best_solution);
        assert_eq!(back.curve.len(), ck.curve.len());
        for (a, b) in back.curve.iter().zip(&ck.curve) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.valid_trials, ck.valid_trials);
        assert_eq!(back.invalid_trials, ck.invalid_trials);
        assert_eq!(back.retried_trials, ck.retried_trials);
        assert_eq!(back.total_retries, ck.total_retries);
        assert_eq!(back.timeout_trials, ck.timeout_trials);
        assert_eq!(back.repaired_offspring, ck.repaired_offspring);
        assert_eq!(back.relaxed_constraints, ck.relaxed_constraints);
        assert_eq!(back.solver_deadline_hits, ck.solver_deadline_hits);
        assert_eq!(back.fallback_samples, ck.fallback_samples);
        assert_eq!(back.error_counts, ck.error_counts);
        assert_eq!(back.timing.cga_s.to_bits(), ck.timing.cga_s.to_bits());
        assert_eq!(
            back.timing.hw_measure_s.to_bits(),
            ck.timing.hw_measure_s.to_bits()
        );
        assert_eq!(back.iterations, ck.iterations);
        assert_eq!(back.measured, ck.measured);
        assert_eq!(back.quarantined, ck.quarantined);
        assert_eq!(back.samples.len(), ck.samples.len());
        for ((va, sa), (vb, sb)) in back.samples.iter().zip(&ck.samples) {
            assert_eq!(va, vb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        assert_eq!(back.survivors, ck.survivors);
        // And re-serialising the parsed checkpoint is byte-identical.
        assert_eq!(back.to_text(), text);
        // The serialised form ends with the CRC footer.
        assert!(text.trim_end().lines().last().unwrap().starts_with("crc32"));
    }

    #[test]
    fn insight_log_roundtrips_inside_the_checkpoint() {
        use heron_insight::{RefitRecord, RoundRecord};
        let mut log = SearchLog::new("gemm-256", "nvidia-v100", 42, 3);
        log.set_vars([
            ("tile.C.i".to_string(), 16u64),
            ("vec width".to_string(), 4),
        ]);
        log.observe_assignment(&[8, 2]);
        log.observe_assignment(&[4, 2]);
        let mut r0 = RoundRecord::new(0);
        r0.trials_done = 8;
        r0.best_gflops = 123.456;
        r0.batch_rank_accuracy = Some(0.75);
        r0.entropy_bits = 1.5;
        log.push_round(r0);
        let mut r1 = RoundRecord::new(1);
        r1.stalled = true;
        log.push_round(r1);
        log.push_refit(RefitRecord {
            round: 0,
            samples: 8,
            train_rank_accuracy: 0.9,
            train_spearman: 0.85,
            top_importance: vec![(0, 0.7), (3, 0.2)],
        });
        let mut ck = sample_checkpoint();
        ck.insight = Some(log.clone());
        let text = ck.to_text();
        let back = TuneCheckpoint::from_text(&text).expect("parses");
        assert_eq!(back.insight.as_ref(), Some(&log));
        // Re-serialising is byte-identical (insight lines included).
        assert_eq!(back.to_text(), text);
        // A checkpoint without insight still parses to None (backwards
        // compatibility with pre-insight v2 files).
        let plain = sample_checkpoint();
        let back = TuneCheckpoint::from_text(&plain.to_text()).expect("parses");
        assert!(back.insight.is_none());
        // A malformed insight line is a parse error, not a panic.
        let bad = with_crc(&format!(
            "{HEADER}\nworkload = g\ndla = d\nrng = 1 2 3 4\ninsight.round = nonsense\n"
        ));
        let err = TuneCheckpoint::from_text(&bad).expect_err("bad insight line");
        assert!(
            matches!(err, CheckpointError::Parse { line: 5, .. }),
            "{err}"
        );
    }

    #[test]
    fn pre_service_checkpoints_parse_with_zero_round_and_eviction_counters() {
        // A pre-PR-7 v2 checkpoint has no `rounds_total` /
        // `quarantine_evictions` lines; it must still load, with both
        // counters defaulting to zero (fresh-deadline semantics).
        let mut text = sample_checkpoint().to_text();
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("rounds_total") && !l.starts_with("quarantine_evictions"))
            .take_while(|l| !l.starts_with("crc32"))
            .map(|l| format!("{l}\n"))
            .collect();
        text = with_crc(&body);
        let back = TuneCheckpoint::from_text(&text).expect("legacy checkpoint parses");
        assert_eq!(back.rounds_total, 0);
        assert_eq!(back.quarantine_evictions, 0);
        assert_eq!(back.quarantined, vec![22]);
    }

    #[test]
    fn infinity_and_empty_session_roundtrip() {
        let mut ck = sample_checkpoint();
        ck.best_gflops = 0.0;
        ck.best_latency_s = f64::INFINITY;
        ck.best_solution = None;
        ck.curve.clear();
        ck.measured.clear();
        ck.quarantined.clear();
        ck.samples.clear();
        ck.survivors.clear();
        ck.iterations.clear();
        ck.error_counts.clear();
        let back = TuneCheckpoint::from_text(&ck.to_text()).expect("parses");
        assert!(back.best_latency_s.is_infinite());
        assert_eq!(back.best_solution, None);
        assert!(back.curve.is_empty());
        assert!(back.samples.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_rejected_as_corrupt() {
        let text = sample_checkpoint().to_text();
        let bytes = text.as_bytes();
        // Deterministically sweep a sample of offsets across the whole
        // file (every 7th byte, plus the first and last).
        let offsets: Vec<usize> = std::iter::once(0)
            .chain((0..bytes.len()).step_by(7))
            .chain(std::iter::once(bytes.len() - 1))
            .collect();
        for &off in &offsets {
            let mut mutated = bytes.to_vec();
            mutated[off] ^= 0x01; // guaranteed different byte
            let outcome = match String::from_utf8(mutated) {
                Ok(s) => TuneCheckpoint::from_text(&s),
                // Invalid UTF-8 is what `load` maps to Corrupt; simulate.
                Err(_) => Err(CheckpointError::Corrupt {
                    offset: off,
                    message: "utf8".into(),
                }),
            };
            assert!(
                matches!(outcome, Err(CheckpointError::Corrupt { .. })),
                "flip at byte {off} was not rejected as Corrupt: {:?}",
                outcome.map(|_| ()).map_err(|e| e.to_string())
            );
        }
    }

    #[test]
    fn truncation_is_rejected_as_corrupt() {
        let text = sample_checkpoint().to_text();
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let truncated = &text[..cut];
            let err = TuneCheckpoint::from_text(truncated).expect_err("truncated");
            assert!(
                matches!(err, CheckpointError::Corrupt { .. }),
                "truncation at {cut} gave {err}"
            );
        }
        let err = TuneCheckpoint::from_text("").expect_err("empty");
        assert!(matches!(err, CheckpointError::Corrupt { offset: 0, .. }));
    }

    #[test]
    fn v1_checkpoints_are_a_version_mismatch() {
        // A pre-CRC v1 file: old header, no footer.
        let v1 = "heron-checkpoint v1\nworkload = g\ndla = d\nrng = 1 2 3 4\n";
        let err = TuneCheckpoint::from_text(v1).expect_err("v1");
        match &err {
            CheckpointError::VersionMismatch { found, expected } => {
                assert_eq!(found, "heron-checkpoint v1");
                assert_eq!(expected, HEADER);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("version mismatch"));

        // A v1 header *with* a valid CRC footer is still a mismatch.
        let crcd = with_crc("heron-checkpoint v1\nworkload = g\ndla = d\nrng = 1 2 3 4\n");
        assert!(matches!(
            TuneCheckpoint::from_text(&crcd),
            Err(CheckpointError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        // Foreign format without a footer: corrupt, not half-parsed.
        let err = TuneCheckpoint::from_text("heron-library v1\n").expect_err("bad header");
        assert!(matches!(err, CheckpointError::Corrupt { .. }));

        // Foreign format with a valid footer: a parse error on the header.
        let err =
            TuneCheckpoint::from_text(&with_crc("heron-library v1\n")).expect_err("bad header");
        assert!(matches!(err, CheckpointError::Parse { line: 1, .. }));

        let text = with_crc(&format!("{HEADER}\nworkload = g\ndla = d\nrng = 1 2 3\n"));
        let err = TuneCheckpoint::from_text(&text).expect_err("3-word rng");
        match err {
            CheckpointError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("4 state words"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }

        let text = with_crc(&format!("{HEADER}\nnonsense line without equals\n"));
        assert!(TuneCheckpoint::from_text(&text).is_err());

        let text = with_crc(&format!(
            "{HEADER}\nworkload = g\ndla = d\nfrobnicate = 1\n"
        ));
        let err = TuneCheckpoint::from_text(&text).expect_err("unknown key");
        assert!(err.to_string().contains("unknown key"));

        // Missing rng state is rejected even if everything else parses.
        let text = with_crc(&format!("{HEADER}\nworkload = g\ndla = d\n"));
        assert!(TuneCheckpoint::from_text(&text).is_err());
    }

    #[test]
    fn save_is_atomic_and_load_roundtrips() {
        let ck = sample_checkpoint();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "heron-ckpt-test-{}-{}.txt",
            std::process::id(),
            ck.seed
        ));
        ck.save(&path).expect("saves");
        let back = TuneCheckpoint::load(&path).expect("loads");
        assert_eq!(back.to_text(), ck.to_text());
        // No temporary file remains next to the checkpoint.
        let tmp_leftover = std::fs::read_dir(&dir)
            .expect("temp dir lists")
            .filter_map(|e| e.ok())
            .any(|e| {
                let name = e.file_name().to_string_lossy().to_string();
                name.starts_with(&format!(
                    "heron-ckpt-test-{}-{}.txt.tmp",
                    std::process::id(),
                    ck.seed
                )) && name != path.file_name().unwrap().to_string_lossy()
            });
        assert!(!tmp_leftover, "atomic save left a temporary file behind");
        // Overwriting an existing checkpoint also succeeds atomically.
        ck.save(&path).expect("overwrites");
        std::fs::remove_file(&path).ok();

        let missing = TuneCheckpoint::load("/nonexistent/heron.ckpt");
        assert!(matches!(missing, Err(CheckpointError::Io(_))));
    }

    #[test]
    fn corrupt_file_on_disk_reports_offset() {
        let ck = sample_checkpoint();
        let path = std::env::temp_dir().join(format!(
            "heron-ckpt-corrupt-{}-{}.txt",
            std::process::id(),
            ck.seed
        ));
        ck.save(&path).expect("saves");
        // Flip one byte mid-file.
        let mut bytes = std::fs::read(&path).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("writes");
        let err = TuneCheckpoint::load(&path).expect_err("corrupt");
        match &err {
            CheckpointError::Corrupt { message, .. } => {
                assert!(err.to_string().contains("byte offset"), "{err}");
                assert!(message.contains("crc mismatch"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
