//! Checkpoint/resume for tuning sessions.
//!
//! A [`TuneCheckpoint`] captures *everything* a [`crate::tuner::Tuner`]
//! needs to continue an interrupted session bit-for-bit: the best program
//! so far, the best-so-far curve, every measured fingerprint, the
//! quarantine set, the cost-model sample log (replayed on resume), the
//! survivor population, and — critically — the exact RNG stream position.
//!
//! The on-disk format is a line-oriented UTF-8 text format in the same
//! `key = value` idiom as the [`crate::library`] format, versioned by a
//! `heron-checkpoint v1` header. Floating-point values are serialised as
//! the 16-hex-digit big-endian IEEE-754 bit pattern (via [`f64::to_bits`])
//! so the roundtrip is *exact* — a resumed session must reproduce the
//! uninterrupted one to the last bit, which decimal formatting cannot
//! guarantee. A human-readable decimal rendering follows as a `#` comment
//! and is ignored by the parser.
//!
//! ```text
//! heron-checkpoint v1
//! workload = gemm-256
//! dla = nvidia-v100
//! seed = 42
//! rng = 0123456789abcdef ... (4 words)
//! best_gflops = 40b3880000000000 # 5000
//! curve = 40b3880000000000 ...
//! sample = 40b3880000000000 4 16 2 ...
//! survivor = 4 16 2 ...
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use crate::tuner::{IterationStats, TuneTiming};

/// Why loading or applying a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The checkpoint text is malformed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint is internally valid but does not belong to the
    /// session it was applied to (wrong workload, platform or solution
    /// arity).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A complete serialisable snapshot of a tuning session, exact at
/// iteration boundaries. See the [module docs](self) for the format.
#[derive(Debug, Clone)]
pub struct TuneCheckpoint {
    /// Workload name the session tunes (must match the space on resume).
    pub workload: String,
    /// Platform name the session targets (must match on resume).
    pub dla: String,
    /// The session seed (identifies the fork-stream family).
    pub seed: u64,
    /// Exact xoshiro256** state words of the main RNG stream.
    pub rng_state: [u64; 4],
    /// Consecutive stalled ε-greedy rounds at checkpoint time.
    pub stall_rounds: usize,
    /// Best observed throughput so far, Gops.
    pub best_gflops: f64,
    /// Latency of the best program, seconds (`inf` if none found yet).
    pub best_latency_s: f64,
    /// Raw variable values of the best solution, if any.
    pub best_solution: Option<Vec<i64>>,
    /// Best-so-far score after every trial.
    pub curve: Vec<f64>,
    /// Trials that produced a running program.
    pub valid_trials: usize,
    /// Trials rejected or quarantined.
    pub invalid_trials: usize,
    /// Trials that needed at least one transient-failure retry.
    pub retried_trials: usize,
    /// Total transient-failure retries across all trials.
    pub total_retries: usize,
    /// Trials that saw at least one measurement timeout.
    pub timeout_trials: usize,
    /// Error occurrences by class tag.
    pub error_counts: BTreeMap<String, usize>,
    /// Timing breakdown so far.
    pub timing: TuneTiming,
    /// Per-iteration statistics so far.
    pub iterations: Vec<IterationStats>,
    /// Fingerprints of every measured solution, ascending.
    pub measured: Vec<u64>,
    /// Fingerprints of every quarantined solution, ascending.
    pub quarantined: Vec<u64>,
    /// The cost-model training log in measurement order:
    /// `(solution values, trained score)`.
    pub samples: Vec<(Vec<i64>, f64)>,
    /// Raw variable values of the survivor population.
    pub survivors: Vec<Vec<i64>>,
}

const HEADER: &str = "heron-checkpoint v1";

/// Exact f64 serialisation: 16 hex digits of the IEEE-754 bit pattern.
fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64_hex(tok: &str, line: usize) -> Result<f64, CheckpointError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Parse {
            line,
            message: format!("expected 16-hex-digit f64 bits, got `{tok}`"),
        })
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, CheckpointError> {
    tok.parse::<u64>().map_err(|_| CheckpointError::Parse {
        line,
        message: format!("expected unsigned integer, got `{tok}`"),
    })
}

fn parse_usize(tok: &str, line: usize) -> Result<usize, CheckpointError> {
    tok.parse::<usize>().map_err(|_| CheckpointError::Parse {
        line,
        message: format!("expected unsigned integer, got `{tok}`"),
    })
}

fn parse_i64_list(toks: &str, line: usize) -> Result<Vec<i64>, CheckpointError> {
    toks.split_whitespace()
        .map(|t| {
            t.parse::<i64>().map_err(|_| CheckpointError::Parse {
                line,
                message: format!("expected integer, got `{t}`"),
            })
        })
        .collect()
}

impl TuneCheckpoint {
    /// Serialises the checkpoint to its versioned text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "# tuning-session checkpoint; floats are IEEE-754 bits");
        let _ = writeln!(out, "workload = {}", self.workload);
        let _ = writeln!(out, "dla = {}", self.dla);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(
            out,
            "rng = {:016x} {:016x} {:016x} {:016x}",
            self.rng_state[0], self.rng_state[1], self.rng_state[2], self.rng_state[3]
        );
        let _ = writeln!(out, "stall_rounds = {}", self.stall_rounds);
        let _ = writeln!(
            out,
            "best_gflops = {} # {}",
            f64_hex(self.best_gflops),
            self.best_gflops
        );
        let _ = writeln!(
            out,
            "best_latency_s = {} # {}",
            f64_hex(self.best_latency_s),
            self.best_latency_s
        );
        if let Some(values) = &self.best_solution {
            let _ = writeln!(out, "best_solution = {}", join_i64(values));
        }
        let _ = writeln!(out, "valid_trials = {}", self.valid_trials);
        let _ = writeln!(out, "invalid_trials = {}", self.invalid_trials);
        let _ = writeln!(out, "retried_trials = {}", self.retried_trials);
        let _ = writeln!(out, "total_retries = {}", self.total_retries);
        let _ = writeln!(out, "timeout_trials = {}", self.timeout_trials);
        for (tag, n) in &self.error_counts {
            let _ = writeln!(out, "error.{tag} = {n}");
        }
        let _ = writeln!(out, "timing.cga_s = {}", f64_hex(self.timing.cga_s));
        let _ = writeln!(out, "timing.sim_s = {}", f64_hex(self.timing.sim_s));
        let _ = writeln!(out, "timing.model_s = {}", f64_hex(self.timing.model_s));
        let _ = writeln!(
            out,
            "timing.hw_measure_s = {}",
            f64_hex(self.timing.hw_measure_s)
        );
        if !self.curve.is_empty() {
            let hex: Vec<String> = self.curve.iter().map(|&x| f64_hex(x)).collect();
            let _ = writeln!(out, "curve = {}", hex.join(" "));
        }
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "iter = {} {} {} {} {} {}",
                it.iteration,
                it.trials_done,
                f64_hex(it.best_gflops),
                f64_hex(it.batch_mean_gflops),
                u8::from(it.model_fitted),
                it.population
            );
        }
        if !self.measured.is_empty() {
            let toks: Vec<String> = self.measured.iter().map(|fp| fp.to_string()).collect();
            let _ = writeln!(out, "measured = {}", toks.join(" "));
        }
        if !self.quarantined.is_empty() {
            let toks: Vec<String> = self.quarantined.iter().map(|fp| fp.to_string()).collect();
            let _ = writeln!(out, "quarantined = {}", toks.join(" "));
        }
        for (values, score) in &self.samples {
            let _ = writeln!(out, "sample = {} {}", f64_hex(*score), join_i64(values));
        }
        for values in &self.survivors {
            let _ = writeln!(out, "survivor = {}", join_i64(values));
        }
        out
    }

    /// Parses a checkpoint from its text format.
    ///
    /// # Errors
    /// [`CheckpointError::Parse`] on a missing/incompatible header, an
    /// unknown key, or a malformed value; the error carries the 1-based
    /// line number.
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines().enumerate();
        let header = loop {
            match lines.next() {
                Some((_, l)) if l.trim().is_empty() => continue,
                Some((i, l)) => break (i, l.trim()),
                None => {
                    return Err(CheckpointError::Parse {
                        line: 1,
                        message: "empty checkpoint".into(),
                    })
                }
            }
        };
        if header.1 != HEADER {
            return Err(CheckpointError::Parse {
                line: header.0 + 1,
                message: format!("expected `{HEADER}` header, got `{}`", header.1),
            });
        }

        let mut ck = TuneCheckpoint {
            workload: String::new(),
            dla: String::new(),
            seed: 0,
            rng_state: [0; 4],
            stall_rounds: 0,
            best_gflops: 0.0,
            best_latency_s: f64::INFINITY,
            best_solution: None,
            curve: Vec::new(),
            valid_trials: 0,
            invalid_trials: 0,
            retried_trials: 0,
            total_retries: 0,
            timeout_trials: 0,
            error_counts: BTreeMap::new(),
            timing: TuneTiming::default(),
            iterations: Vec::new(),
            measured: Vec::new(),
            quarantined: Vec::new(),
            samples: Vec::new(),
            survivors: Vec::new(),
        };
        let mut seen_rng = false;

        for (idx, raw) in lines {
            let line_no = idx + 1;
            // Strip trailing comments; skip blank/comment-only lines.
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let (key, value) = content
                .split_once('=')
                .ok_or_else(|| CheckpointError::Parse {
                    line: line_no,
                    message: format!("expected `key = value`, got `{content}`"),
                })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "workload" => ck.workload = value.to_string(),
                "dla" => ck.dla = value.to_string(),
                "seed" => ck.seed = parse_u64(value, line_no)?,
                "rng" => {
                    let words: Vec<&str> = value.split_whitespace().collect();
                    if words.len() != 4 {
                        return Err(CheckpointError::Parse {
                            line: line_no,
                            message: format!("rng needs 4 state words, got {}", words.len()),
                        });
                    }
                    for (i, w) in words.iter().enumerate() {
                        ck.rng_state[i] =
                            u64::from_str_radix(w, 16).map_err(|_| CheckpointError::Parse {
                                line: line_no,
                                message: format!("bad rng state word `{w}`"),
                            })?;
                    }
                    seen_rng = true;
                }
                "stall_rounds" => ck.stall_rounds = parse_usize(value, line_no)?,
                "best_gflops" => ck.best_gflops = parse_f64_hex(value, line_no)?,
                "best_latency_s" => ck.best_latency_s = parse_f64_hex(value, line_no)?,
                "best_solution" => ck.best_solution = Some(parse_i64_list(value, line_no)?),
                "valid_trials" => ck.valid_trials = parse_usize(value, line_no)?,
                "invalid_trials" => ck.invalid_trials = parse_usize(value, line_no)?,
                "retried_trials" => ck.retried_trials = parse_usize(value, line_no)?,
                "total_retries" => ck.total_retries = parse_usize(value, line_no)?,
                "timeout_trials" => ck.timeout_trials = parse_usize(value, line_no)?,
                "timing.cga_s" => ck.timing.cga_s = parse_f64_hex(value, line_no)?,
                "timing.sim_s" => ck.timing.sim_s = parse_f64_hex(value, line_no)?,
                "timing.model_s" => ck.timing.model_s = parse_f64_hex(value, line_no)?,
                "timing.hw_measure_s" => ck.timing.hw_measure_s = parse_f64_hex(value, line_no)?,
                "curve" => {
                    ck.curve = value
                        .split_whitespace()
                        .map(|t| parse_f64_hex(t, line_no))
                        .collect::<Result<_, _>>()?;
                }
                "iter" => {
                    let toks: Vec<&str> = value.split_whitespace().collect();
                    if toks.len() != 6 {
                        return Err(CheckpointError::Parse {
                            line: line_no,
                            message: format!("iter needs 6 fields, got {}", toks.len()),
                        });
                    }
                    ck.iterations.push(IterationStats {
                        iteration: parse_usize(toks[0], line_no)?,
                        trials_done: parse_usize(toks[1], line_no)?,
                        best_gflops: parse_f64_hex(toks[2], line_no)?,
                        batch_mean_gflops: parse_f64_hex(toks[3], line_no)?,
                        model_fitted: toks[4] == "1",
                        population: parse_usize(toks[5], line_no)?,
                    });
                }
                "measured" => {
                    ck.measured = value
                        .split_whitespace()
                        .map(|t| parse_u64(t, line_no))
                        .collect::<Result<_, _>>()?;
                }
                "quarantined" => {
                    ck.quarantined = value
                        .split_whitespace()
                        .map(|t| parse_u64(t, line_no))
                        .collect::<Result<_, _>>()?;
                }
                "sample" => {
                    let mut toks = value.splitn(2, char::is_whitespace);
                    let score = parse_f64_hex(toks.next().unwrap_or_default(), line_no)?;
                    let values = parse_i64_list(toks.next().unwrap_or(""), line_no)?;
                    ck.samples.push((values, score));
                }
                "survivor" => ck.survivors.push(parse_i64_list(value, line_no)?),
                k if k.starts_with("error.") => {
                    let tag = k.trim_start_matches("error.").to_string();
                    ck.error_counts.insert(tag, parse_usize(value, line_no)?);
                }
                _ => {
                    return Err(CheckpointError::Parse {
                        line: line_no,
                        message: format!("unknown key `{key}`"),
                    });
                }
            }
        }
        if ck.workload.is_empty() || ck.dla.is_empty() || !seen_rng {
            return Err(CheckpointError::Parse {
                line: 1,
                message: "checkpoint is missing workload, dla or rng state".into(),
            });
        }
        Ok(ck)
    }

    /// Writes the checkpoint to `path` in text format.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Parse`] on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text)
    }
}

fn join_i64(values: &[i64]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> TuneCheckpoint {
        let mut error_counts = BTreeMap::new();
        error_counts.insert("timeout".to_string(), 3);
        error_counts.insert("capacity".to_string(), 7);
        TuneCheckpoint {
            workload: "gemm-256".into(),
            dla: "nvidia-v100".into(),
            seed: 42,
            rng_state: [
                0x0123_4567_89ab_cdef,
                0xfedc_ba98_7654_3210,
                0xdead_beef_cafe_f00d,
                0x0000_0000_0000_0001,
            ],
            stall_rounds: 2,
            best_gflops: 1_234.567_890_123,
            best_latency_s: 3.2e-5,
            best_solution: Some(vec![4, 16, 2, -1, 8]),
            curve: vec![0.0, 100.5, 100.5, 1_234.567_890_123],
            valid_trials: 3,
            invalid_trials: 1,
            retried_trials: 2,
            total_retries: 5,
            timeout_trials: 1,
            error_counts,
            timing: TuneTiming {
                cga_s: 0.25,
                sim_s: 0.125,
                model_s: 0.0625,
                hw_measure_s: 17.75,
            },
            iterations: vec![IterationStats {
                iteration: 0,
                trials_done: 4,
                best_gflops: 1_234.567_890_123,
                batch_mean_gflops: 617.3,
                model_fitted: true,
                population: 32,
            }],
            measured: vec![11, 22, 33, 44],
            quarantined: vec![22],
            samples: vec![
                (vec![4, 16, 2, -1, 8], 1_234.567_890_123),
                (vec![2, 8, 4, 0, 16], 100.5),
            ],
            survivors: vec![vec![4, 16, 2, -1, 8], vec![2, 8, 4, 0, 16]],
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let ck = sample_checkpoint();
        let text = ck.to_text();
        let back = TuneCheckpoint::from_text(&text).expect("parses");
        assert_eq!(back.workload, ck.workload);
        assert_eq!(back.dla, ck.dla);
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.rng_state, ck.rng_state);
        assert_eq!(back.stall_rounds, ck.stall_rounds);
        assert_eq!(back.best_gflops.to_bits(), ck.best_gflops.to_bits());
        assert_eq!(back.best_latency_s.to_bits(), ck.best_latency_s.to_bits());
        assert_eq!(back.best_solution, ck.best_solution);
        assert_eq!(back.curve.len(), ck.curve.len());
        for (a, b) in back.curve.iter().zip(&ck.curve) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.valid_trials, ck.valid_trials);
        assert_eq!(back.invalid_trials, ck.invalid_trials);
        assert_eq!(back.retried_trials, ck.retried_trials);
        assert_eq!(back.total_retries, ck.total_retries);
        assert_eq!(back.timeout_trials, ck.timeout_trials);
        assert_eq!(back.error_counts, ck.error_counts);
        assert_eq!(back.timing.cga_s.to_bits(), ck.timing.cga_s.to_bits());
        assert_eq!(
            back.timing.hw_measure_s.to_bits(),
            ck.timing.hw_measure_s.to_bits()
        );
        assert_eq!(back.iterations, ck.iterations);
        assert_eq!(back.measured, ck.measured);
        assert_eq!(back.quarantined, ck.quarantined);
        assert_eq!(back.samples.len(), ck.samples.len());
        for ((va, sa), (vb, sb)) in back.samples.iter().zip(&ck.samples) {
            assert_eq!(va, vb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        assert_eq!(back.survivors, ck.survivors);
        // And re-serialising the parsed checkpoint is byte-identical.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn infinity_and_empty_session_roundtrip() {
        let mut ck = sample_checkpoint();
        ck.best_gflops = 0.0;
        ck.best_latency_s = f64::INFINITY;
        ck.best_solution = None;
        ck.curve.clear();
        ck.measured.clear();
        ck.quarantined.clear();
        ck.samples.clear();
        ck.survivors.clear();
        ck.iterations.clear();
        ck.error_counts.clear();
        let back = TuneCheckpoint::from_text(&ck.to_text()).expect("parses");
        assert!(back.best_latency_s.is_infinite());
        assert_eq!(back.best_solution, None);
        assert!(back.curve.is_empty());
        assert!(back.samples.is_empty());
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        let err = TuneCheckpoint::from_text("heron-library v1\n").expect_err("bad header");
        assert!(matches!(err, CheckpointError::Parse { line: 1, .. }));

        let text = format!("{HEADER}\nworkload = g\ndla = d\nrng = 1 2 3\n");
        let err = TuneCheckpoint::from_text(&text).expect_err("3-word rng");
        match err {
            CheckpointError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("4 state words"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }

        let text = format!("{HEADER}\nnonsense line without equals\n");
        assert!(TuneCheckpoint::from_text(&text).is_err());

        let text = format!("{HEADER}\nworkload = g\ndla = d\nfrobnicate = 1\n");
        let err = TuneCheckpoint::from_text(&text).expect_err("unknown key");
        assert!(err.to_string().contains("unknown key"));

        // Missing rng state is rejected even if everything else parses.
        let text = format!("{HEADER}\nworkload = g\ndla = d\n");
        assert!(TuneCheckpoint::from_text(&text).is_err());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let ck = sample_checkpoint();
        let path = std::env::temp_dir().join(format!(
            "heron-ckpt-test-{}-{}.txt",
            std::process::id(),
            ck.seed
        ));
        ck.save(&path).expect("saves");
        let back = TuneCheckpoint::load(&path).expect("loads");
        assert_eq!(back.to_text(), ck.to_text());
        std::fs::remove_file(&path).ok();

        let missing = TuneCheckpoint::load("/nonexistent/heron.ckpt");
        assert!(matches!(missing, Err(CheckpointError::Io(_))));
    }
}
