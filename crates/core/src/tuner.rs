//! The full Heron tuning session: Algorithm 2 with instrumentation and a
//! fault-tolerant measurement pipeline.
//!
//! Couples the generated space, the CGA evolutionary loop, the ε-greedy
//! measurement selection, the DLA measurer, and the cost model. Records
//! the best program found, the best-so-far curve, and a compilation-time
//! breakdown (CGA / measurement / model-training) used to regenerate the
//! paper's Table 10 and Figure 14.
//!
//! # Fault tolerance
//!
//! Real measurement infrastructure (the paper's V100/T4/A100 boards, DL
//! Boost sockets, VTA FPGAs behind TVM RPC) times out, drops sessions and
//! reports noisy latencies. The loop therefore:
//!
//! * takes each hardware number as the **median** of
//!   [`TuneConfig::measure_repeats`] independent runs (outlier rejection);
//! * **retries** transient failures ([`heron_dla::ErrorClass::Transient`])
//!   with capped exponential backoff, charging both the fault cost and the
//!   backoff wait to the simulated `hw_measure_s` clock;
//! * **quarantines** (by solution fingerprint) any candidate that exhausts
//!   [`TuneConfig::max_retries`], so a configuration that reliably hangs
//!   the board cannot eat the session's measurement budget;
//! * trains the cost model on failures with a **penalty score**
//!   ([`TuneConfig::penalty_fraction`] of the current best) instead of a
//!   raw `0.0`, which would drag predictions toward zero in fault-heavy
//!   regimes;
//! * runs in resumable **steps**: [`Tuner::checkpoint`] captures the whole
//!   session (including RNG state) and [`Tuner::resume`] continues it so a
//!   killed session reproduces the uninterrupted run bit-for-bit.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

use heron_csp::{tunable_domains, Solution, SolveSession, SolveStats, SolveStatus};
use heron_dla::{FaultPlan, FaultyMeasurer, MeasureError, Measurement, Measurer};
use heron_insight::{population_entropy_bits, RefitRecord, RoundRecord, SearchLog};
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_sched::{lower, Kernel, LowerError};
use heron_trace::{ProfileNode, Tracer};

use crate::checkpoint::{CheckpointError, TuneCheckpoint};
use crate::control::TunerControl;
use crate::explore::cga::{materialize_offspring_session, offspring_pins, CgaConfig};
use crate::explore::{eps_greedy_detailed, roulette_wheel, Chromosome};
use crate::generate::GeneratedSpace;
use crate::model::CostModel;

/// Fork-stream base for cost-model fitting: fit at iteration `i` draws
/// from `rng.fork(FIT_STREAM + i)`, which depends only on `(seed, i)` —
/// never on how many values the main stream has consumed — so a resumed
/// session can refit the exact model of the interrupted one.
const FIT_STREAM: u64 = 0x4649_5453_5452_4d00; // "FITSTRM\0"

/// Why one evaluation failed: the template could not be lowered under the
/// solution (a generator bug — but one bad template variable must not
/// kill a 2,000-trial session) or the measurer rejected / failed the
/// kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Lowering referenced an undefined variable.
    Lower(LowerError),
    /// The device rejected or failed the kernel.
    Measure(MeasureError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Lower(e) => write!(f, "lowering failed: {e}"),
            EvalError::Measure(e) => write!(f, "measurement failed: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Lower(e) => Some(e),
            EvalError::Measure(e) => Some(e),
        }
    }
}

impl From<LowerError> for EvalError {
    fn from(e: LowerError) -> Self {
        EvalError::Lower(e)
    }
}

impl From<MeasureError> for EvalError {
    fn from(e: MeasureError) -> Self {
        EvalError::Measure(e)
    }
}

impl EvalError {
    /// Stable short tag for per-error-class accounting.
    pub fn tag(&self) -> &'static str {
        match self {
            EvalError::Lower(_) => "lower",
            EvalError::Measure(e) => e.tag(),
        }
    }

    /// Whether a retry of the identical candidate can succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            EvalError::Lower(_) => false,
            EvalError::Measure(e) => e.is_transient(),
        }
    }
}

/// Lowers and measures one solution.
///
/// # Errors
/// Returns [`EvalError`] when lowering fails or the measurer rejects the
/// kernel. Never panics: lowering failures are generator bugs, but they
/// surface as errors so one bad template variable cannot kill a session.
pub fn evaluate(
    space: &GeneratedSpace,
    measurer: &Measurer,
    sol: &Solution,
) -> Result<(Kernel, Measurement), EvalError> {
    let csp = &space.csp;
    let kernel = lower(&space.template, sol.fingerprint(), &|name| {
        sol.value_by_name(csp, name)
    })?;
    let m = measurer.measure(&kernel)?;
    Ok((kernel, m))
}

/// Tuning-session configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Total hardware-measurement trials (the paper uses 2,000).
    pub trials: usize,
    /// CGA hyper-parameters.
    pub cga: CgaConfig,
    /// Per-trial fixed overhead charged to the simulated wall clock
    /// (compilation + transfer on a real deployment), seconds.
    pub trial_overhead_s: f64,
    /// Repeats per hardware measurement; the trial latency is the
    /// *median* of the repeats (outlier rejection for noisy boards).
    pub measure_repeats: u32,
    /// Transient-failure retries per candidate before it is quarantined.
    pub max_retries: u32,
    /// First retry backoff, seconds (doubles per retry, charged to the
    /// simulated measurement clock).
    pub backoff_base_s: f64,
    /// Backoff cap, seconds.
    pub backoff_cap_s: f64,
    /// Failed/quarantined trials train the cost model with
    /// `penalty_fraction × best_gflops_so_far` instead of raw `0.0`
    /// (which would drag predictions toward zero in fault-heavy regimes).
    pub penalty_fraction: f64,
    /// Space-exhaustion heuristic: after this many consecutive ε-greedy
    /// rounds in which evolution produced no yet-unmeasured candidate,
    /// the session concludes the reachable space is exhausted and stops
    /// ([`Termination::SpaceExhausted`]). Small constrained spaces (e.g.
    /// VTA conv layers) genuinely run dry long before the trial budget;
    /// without this bail-out the loop would spin forever re-deriving
    /// already-measured configurations.
    pub max_stall_rounds: usize,
    /// Bound on the per-fingerprint quarantine set. Quarantine is a
    /// *cache* of known-bad configurations, and a week-long service
    /// session on a fault-heavy board would otherwise grow it without
    /// limit; past the cap the **oldest** entry is evicted (deterministic
    /// FIFO of insertion order, checkpointed in that order so resume
    /// evicts identically). `0` disables the bound.
    pub max_quarantined: usize,
}

impl TuneConfig {
    /// The paper's configuration: 2,000 trials.
    pub fn paper() -> Self {
        TuneConfig {
            trials: 2_000,
            cga: CgaConfig::default(),
            trial_overhead_s: 0.8,
            measure_repeats: 3,
            max_retries: 3,
            backoff_base_s: 0.5,
            backoff_cap_s: 8.0,
            penalty_fraction: 0.1,
            max_stall_rounds: 16,
            max_quarantined: 4096,
        }
    }

    /// A reduced-budget configuration for tests and quick demos.
    pub fn quick(trials: usize) -> Self {
        TuneConfig {
            trials,
            cga: CgaConfig {
                population: 16,
                generations: 2,
                offspring: 10,
                key_vars: 6,
                eps: 0.15,
                measure_batch: 8,
                solver_budget: 300,
                solve_deadline: 0,
                max_stall_rounds: 16,
                penalty_fraction: 0.1,
            },
            ..TuneConfig::paper()
        }
    }
}

/// Why a tuning session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The session is still in progress (only observable through
    /// [`Tuner::result`] on a live session).
    Running,
    /// The full trial budget was spent.
    TrialsExhausted,
    /// Evolution stalled for [`TuneConfig::max_stall_rounds`] consecutive
    /// rounds without producing an unmeasured candidate: the reachable
    /// space is exhausted.
    SpaceExhausted,
    /// The constraint space admits no solution at all.
    Infeasible,
    /// The space was never proven infeasible, but the solver repeatedly
    /// failed to materialise any chromosome within its budget/deadline
    /// ([`TuneConfig::max_stall_rounds`] consecutive starved rounds).
    SolverStarved,
    /// The session was preempted at a round boundary — by a supervisor's
    /// [`TunerControl::request_preempt`] or by reaching a
    /// [`TunerControl::set_deadline_rounds`] deadline. The session is
    /// expected to be checkpointed and resumed later; a resumed run
    /// continues bit-for-bit where the preempted one stopped.
    Preempted,
    /// The session was cancelled at a round boundary
    /// ([`TunerControl::request_cancel`]): it is being abandoned and its
    /// result will not be collected.
    Cancelled,
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Termination::Running => "running",
            Termination::TrialsExhausted => "trials-exhausted",
            Termination::SpaceExhausted => "space-exhausted",
            Termination::Infeasible => "infeasible",
            Termination::SolverStarved => "solver-starved",
            Termination::Preempted => "preempted",
            Termination::Cancelled => "cancelled",
        })
    }
}

/// Wall-clock breakdown of a tuning session (paper Figure 14).
#[derive(Debug, Clone, Copy, Default)]
pub struct TuneTiming {
    /// Real seconds spent in CGA evolution + CSP solving.
    pub cga_s: f64,
    /// Real seconds spent in the simulator.
    pub sim_s: f64,
    /// Real seconds spent fitting the cost model.
    pub model_s: f64,
    /// *Simulated deployment* measurement wall clock: per-trial overhead,
    /// per-run latencies, fault costs (timeout budgets, device resets,
    /// RPC reconnects) and retry backoff — what "hardware measurement"
    /// would cost on the physical DLA.
    pub hw_measure_s: f64,
}

impl TuneTiming {
    /// Total simulated compilation time: exploration + model + deployment
    /// measurements.
    pub fn total_s(&self) -> f64 {
        self.cga_s + self.model_s + self.hw_measure_s
    }
}

/// Per-iteration statistics of the Algorithm-2 loop (for session reports
/// and convergence debugging).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (one ε-greedy measurement round each).
    pub iteration: usize,
    /// Total trials measured so far.
    pub trials_done: usize,
    /// Best score so far, Gops.
    pub best_gflops: f64,
    /// Mean score of this iteration's measured batch.
    pub batch_mean_gflops: f64,
    /// Whether the cost model was fitted after this iteration.
    pub model_fitted: bool,
    /// Distinct chromosomes in the evolved population.
    pub population: usize,
}

/// Result of one tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best observed throughput in Gops.
    pub best_gflops: f64,
    /// Latency of the best program, seconds.
    pub best_latency_s: f64,
    /// The best assignment, if any valid program was found.
    pub best_solution: Option<Solution>,
    /// The best lowered kernel.
    pub best_kernel: Option<Kernel>,
    /// Best-so-far score after every trial.
    pub curve: Vec<f64>,
    /// Trials that produced a running program.
    pub valid_trials: usize,
    /// Trials rejected by the measurer (compile/run errors) or
    /// quarantined after exhausting their retries.
    pub invalid_trials: usize,
    /// Trials that needed at least one transient-failure retry.
    pub retried_trials: usize,
    /// Total transient-failure retries across all trials.
    pub total_retries: usize,
    /// Candidates *currently* quarantined after exhausting
    /// [`TuneConfig::max_retries`] (bounded by
    /// [`TuneConfig::max_quarantined`]).
    pub quarantined: usize,
    /// Quarantine entries evicted by the [`TuneConfig::max_quarantined`]
    /// bound (oldest-first, deterministic).
    pub quarantine_evictions: usize,
    /// Lifetime ε-greedy rounds this session has executed, *including*
    /// rounds before a checkpoint/resume — the counter a
    /// [`TunerControl`] round deadline is measured against.
    pub rounds_total: usize,
    /// Trials that experienced at least one measurement timeout.
    pub timeout_trials: usize,
    /// Offspring CSPs that needed at least one injected constraint
    /// dropped before the solver could materialise them.
    pub repaired_offspring: usize,
    /// Total injected constraints dropped across all repairs.
    pub relaxed_constraints: usize,
    /// Solve calls that hit the configured step deadline.
    pub solver_deadline_hits: usize,
    /// Offspring slots filled by a fresh random sample of `CSP_initial`
    /// after repair could not recover the offspring CSP.
    pub fallback_samples: usize,
    /// Error occurrences by class tag (`capacity`, `intrinsic`, `launch`,
    /// `timeout`, `rpc-dropped`, …), counting every failed attempt
    /// including retried ones.
    pub error_counts: BTreeMap<String, usize>,
    /// Why the session ended.
    pub termination: Termination,
    /// Pairwise rank accuracy of the final cost model on its training
    /// samples (`None` if it never fitted) — the fidelity signal that
    /// matters for ε-greedy selection, reported so fault-heavy sessions
    /// can prove the penalty policy kept the model sane.
    pub model_rank_accuracy: Option<f64>,
    /// Timing breakdown.
    pub timing: TuneTiming,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

impl TuneResult {
    fn empty() -> Self {
        TuneResult {
            best_gflops: 0.0,
            best_latency_s: f64::INFINITY,
            best_solution: None,
            best_kernel: None,
            curve: Vec::new(),
            valid_trials: 0,
            invalid_trials: 0,
            retried_trials: 0,
            total_retries: 0,
            quarantined: 0,
            quarantine_evictions: 0,
            rounds_total: 0,
            timeout_trials: 0,
            repaired_offspring: 0,
            relaxed_constraints: 0,
            solver_deadline_hits: 0,
            fallback_samples: 0,
            error_counts: BTreeMap::new(),
            termination: Termination::Running,
            model_rank_accuracy: None,
            timing: TuneTiming::default(),
            iterations: Vec::new(),
        }
    }

    /// Flamegraph-style text breakdown of the session's simulated
    /// compilation time. Built directly from [`TuneTiming`], so the layer
    /// totals sum exactly to [`TuneTiming::total_s`] (the trace-derived
    /// profile of `trace_report` is span-based and may differ by the
    /// uninstrumented slack).
    pub fn profile(&self) -> String {
        let mut root = ProfileNode::new("tune", self.timing.total_s());
        root.push(
            ProfileNode::new("cga.evolve", self.timing.cga_s).with_note("evolution + csp solving"),
        );
        root.push(ProfileNode::new("model.fit", self.timing.model_s));
        root.push(
            ProfileNode::new("measure.hw", self.timing.hw_measure_s)
                .with_note("simulated deployment"),
        );
        root.render()
    }

    /// Multi-line human-readable session report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tuning session: {} trials ({} valid, {} invalid), best {:.1} Gops @ {:.1} us",
            self.curve.len(),
            self.valid_trials,
            self.invalid_trials,
            self.best_gflops,
            self.best_latency_s * 1e6
        );
        let _ = writeln!(
            out,
            "resilience: {} retried trials ({} retries), {} quarantined, {} timeout trials; termination: {}",
            self.retried_trials,
            self.total_retries,
            self.quarantined,
            self.timeout_trials,
            self.termination
        );
        if self.quarantine_evictions > 0 {
            let _ = writeln!(
                out,
                "quarantine: {} oldest entries evicted by the max_quarantined bound",
                self.quarantine_evictions
            );
        }
        if self.repaired_offspring > 0 || self.solver_deadline_hits > 0 || self.fallback_samples > 0
        {
            let _ = writeln!(
                out,
                "solver: {} repaired offspring ({} constraints relaxed), {} deadline hits, {} fallback samples",
                self.repaired_offspring,
                self.relaxed_constraints,
                self.solver_deadline_hits,
                self.fallback_samples
            );
        }
        if !self.error_counts.is_empty() {
            let classes: Vec<String> = self
                .error_counts
                .iter()
                .map(|(tag, n)| format!("{tag}={n}"))
                .collect();
            let _ = writeln!(out, "errors: {}", classes.join(", "));
        }
        if let Some(acc) = self.model_rank_accuracy {
            let _ = writeln!(out, "cost model rank accuracy: {acc:.3}");
        }
        let _ = writeln!(
            out,
            "time: cga {:.2}s, simulator {:.2}s, model {:.2}s, simulated hw measurement {:.1}s",
            self.timing.cga_s, self.timing.sim_s, self.timing.model_s, self.timing.hw_measure_s
        );
        for line in self.profile().lines() {
            let _ = writeln!(out, "  {line}");
        }
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "  iter {:>3}: {:>5} trials, best {:>9.1}, batch mean {:>9.1}, pop {:>3}{}",
                it.iteration,
                it.trials_done,
                it.best_gflops,
                it.batch_mean_gflops,
                it.population,
                if it.model_fitted {
                    ", model fitted"
                } else {
                    ""
                }
            );
        }
        out
    }

    /// Canonical serialisation of everything **deterministic** about the
    /// session: the best program (exact float bits), the full best-so-far
    /// curve, per-iteration stats, every resilience/solver counter, and
    /// the *simulated* measurement clock. Host wall-clock timings
    /// (`cga_s`, `sim_s`, `model_s`) are excluded — they vary run to run
    /// on the same machine.
    ///
    /// Two runs of the same `(space, seed, config)` produce byte-equal
    /// records; so does a run recovered from any round-boundary
    /// checkpoint versus its uninterrupted original. That equality is the
    /// crash-recovery proof obligation of `heron-serve`'s chaos harness.
    pub fn deterministic_record(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "best_gflops={:016x} best_latency_s={:016x}",
            self.best_gflops.to_bits(),
            self.best_latency_s.to_bits()
        );
        if let Some(sol) = &self.best_solution {
            let _ = writeln!(
                out,
                "best_solution={:?} fp={:#018x}",
                sol.values(),
                sol.fingerprint()
            );
        }
        if let Some(k) = &self.best_kernel {
            let _ = writeln!(out, "best_kernel={k:?}");
        }
        for (i, v) in self.curve.iter().enumerate() {
            let _ = writeln!(out, "curve[{i}]={:016x}", v.to_bits());
        }
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "iter={} trials={} best={:016x} batch_mean={:016x} fitted={} pop={}",
                it.iteration,
                it.trials_done,
                it.best_gflops.to_bits(),
                it.batch_mean_gflops.to_bits(),
                u8::from(it.model_fitted),
                it.population
            );
        }
        let _ = writeln!(
            out,
            "valid={} invalid={} retried={} retries={} quarantined={} evictions={} \
             rounds={} timeouts={} termination={}",
            self.valid_trials,
            self.invalid_trials,
            self.retried_trials,
            self.total_retries,
            self.quarantined,
            self.quarantine_evictions,
            self.rounds_total,
            self.timeout_trials,
            self.termination
        );
        let _ = writeln!(
            out,
            "repaired={} relaxed={} deadline_hits={} fallbacks={}",
            self.repaired_offspring,
            self.relaxed_constraints,
            self.solver_deadline_hits,
            self.fallback_samples
        );
        for (tag, n) in &self.error_counts {
            let _ = writeln!(out, "error[{tag}]={n}");
        }
        let _ = writeln!(
            out,
            "hw_measure_s={:016x}",
            self.timing.hw_measure_s.to_bits()
        );
        out
    }

    /// FNV-1a 64-bit hash of [`TuneResult::deterministic_record`] — a
    /// compact determinism fingerprint for manifests and sweep tests.
    pub fn determinism_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.deterministic_record().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The bounded per-fingerprint quarantine: a membership set plus the
/// insertion-order queue that makes the [`TuneConfig::max_quarantined`]
/// eviction deterministic (oldest entry out first). Checkpointed in
/// insertion order so a resumed session evicts identically.
#[derive(Debug, Default)]
struct Quarantine {
    set: BTreeSet<u64>,
    order: VecDeque<u64>,
    evictions: usize,
}

impl Quarantine {
    /// Rebuilds the quarantine from its checkpointed insertion-order
    /// fingerprint list and eviction count.
    fn from_ordered(fps: &[u64], evictions: usize) -> Self {
        let mut q = Quarantine {
            evictions,
            ..Quarantine::default()
        };
        for &fp in fps {
            if q.set.insert(fp) {
                q.order.push_back(fp);
            }
        }
        q
    }

    /// Inserts a fingerprint, then evicts oldest-first past `cap`
    /// (`cap == 0` means unbounded). Returns how many entries were
    /// evicted by this insertion.
    fn insert(&mut self, fp: u64, cap: usize) -> usize {
        if self.set.insert(fp) {
            self.order.push_back(fp);
        }
        let mut evicted = 0;
        while cap > 0 && self.set.len() > cap {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.set.remove(&old);
            self.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    /// Fingerprints in insertion order (the serialisation order).
    fn ordered(&self) -> Vec<u64> {
        self.order.iter().copied().collect()
    }
}

/// The mutable mid-session state (everything a checkpoint captures,
/// except the RNG which lives beside it on the [`Tuner`]).
#[derive(Debug)]
struct SessionState {
    model: CostModel,
    /// Every recorded `(solution values, score)` sample in measurement
    /// order — the replay log that lets [`Tuner::resume`] rebuild the
    /// cost model exactly.
    samples: Vec<(Vec<i64>, f64)>,
    result: TuneResult,
    measured: BTreeSet<u64>,
    quarantined: Quarantine,
    survivors: Vec<Chromosome>,
    stall_rounds: usize,
    finished: bool,
    /// Search-health log (`None` unless [`Tuner::with_insight`] enabled
    /// it). Checkpointed alongside the rest of the session so a resumed
    /// run reports the identical insight stream.
    insight: Option<SearchLog>,
}

impl SessionState {
    fn fresh(space: &GeneratedSpace) -> Self {
        SessionState {
            model: CostModel::new(&space.csp),
            samples: Vec::new(),
            result: TuneResult::empty(),
            measured: BTreeSet::new(),
            quarantined: Quarantine::default(),
            survivors: Vec::new(),
            stall_rounds: 0,
            finished: false,
            insight: None,
        }
    }
}

/// Robustness-counter snapshot taken at round start so the search-health
/// log can record per-round deltas instead of cumulative totals.
#[derive(Debug, Clone, Copy)]
struct RoundSnapshot {
    repaired_offspring: usize,
    relaxed_constraints: usize,
    fallback_samples: usize,
    deadline_hits: usize,
}

impl RoundSnapshot {
    fn of(r: &TuneResult) -> Self {
        RoundSnapshot {
            repaired_offspring: r.repaired_offspring,
            relaxed_constraints: r.relaxed_constraints,
            fallback_samples: r.fallback_samples,
            deadline_hits: r.solver_deadline_hits,
        }
    }
}

/// Capped exponential backoff for retry `retry` (1-based), seconds.
fn backoff_s(cfg: &TuneConfig, retry: u32) -> f64 {
    (cfg.backoff_base_s * 2f64.powi(retry.saturating_sub(1).min(62) as i32)).min(cfg.backoff_cap_s)
}

/// Median of a slice (mean of the middle two for even lengths).
fn median(xs: &mut [f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// A tuning session for one generated space.
#[derive(Debug)]
pub struct Tuner {
    space: GeneratedSpace,
    measurer: FaultyMeasurer,
    config: TuneConfig,
    rng: HeronRng,
    state: SessionState,
    tracer: Tracer,
    /// Cooperative stop-token + heartbeat shared with a supervisor
    /// (idle/no-op unless one was attached via [`Tuner::set_control`]).
    control: TunerControl,
    /// Long-lived solver state: propagator adjacency and the cached root
    /// fixpoint, built once per session (and rebuilt identically on
    /// resume — its setup cost is never charged to any round's stats, so
    /// resumed runs stay byte-identical).
    solver: SolveSession,
}

impl Tuner {
    /// Creates a session with a perfectly reliable (fault-free) device.
    pub fn new(space: GeneratedSpace, measurer: Measurer, config: TuneConfig, seed: u64) -> Self {
        let measurer = FaultyMeasurer::new(
            measurer.with_protocol(config.measure_repeats, 0.01),
            FaultPlan::none(seed),
        );
        let state = SessionState::fresh(&space);
        let solver = SolveSession::new(&space.csp);
        Tuner {
            space,
            measurer,
            config,
            rng: HeronRng::from_seed(seed),
            state,
            tracer: Tracer::disabled(),
            control: TunerControl::new(),
            solver,
        }
    }

    /// Replaces the fault-injection plan (builder style):
    /// `Tuner::new(..).with_faults(FaultPlan::uniform(seed, 0.2))`.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.measurer = FaultyMeasurer::new(self.measurer.inner().clone(), plan)
            .with_tracer(self.tracer.clone());
        self
    }

    /// Attaches a tracer (builder style). All pipeline layers the session
    /// touches — CSP solving, CGA evolution, ε-greedy measurement, fault
    /// injection, cost-model fitting — record spans and metrics on it.
    /// The tracer observes only: it never draws from the session RNG, so
    /// traced and untraced runs are bit-identical.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Replaces the attached tracer in place (used by checkpoint/resume
    /// tests to start tracing at an iteration boundary).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        self.measurer.set_tracer(tracer.clone());
        self.state.model.set_tracer(tracer);
    }

    /// The attached tracer ([`Tracer::disabled`] unless one was set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a supervisor control handle (builder style). The tuner
    /// consults it at every round boundary ([`Termination::Preempted`] /
    /// [`Termination::Cancelled`]) and publishes a heartbeat on it. Like
    /// the tracer, the control observes only: attaching one never
    /// perturbs the deterministic session stream.
    #[must_use]
    pub fn with_control(mut self, control: TunerControl) -> Self {
        self.set_control(control);
        self
    }

    /// Replaces the control handle in place (used when a recovered job
    /// is re-attached to a fresh worker epoch).
    pub fn set_control(&mut self, control: TunerControl) {
        self.control = control;
    }

    /// The attached control handle (an idle default unless one was set).
    pub fn control(&self) -> &TunerControl {
        &self.control
    }

    /// Lifetime ε-greedy rounds executed, checkpoint/resume included —
    /// the counter round deadlines are measured against.
    pub fn rounds_total(&self) -> usize {
        self.state.result.rounds_total
    }

    /// Enables the search-health log (builder style): per-round
    /// exploration statistics, per-refit cost-model quality and drift,
    /// and per-variable domain coverage accumulate on a [`SearchLog`]
    /// readable through [`Tuner::insight`]. `top_k` caps the
    /// feature-importance snapshot recorded per refit. Like the tracer,
    /// the log observes only: it never draws from the session RNG, so
    /// logged and unlogged runs are bit-identical.
    #[must_use]
    pub fn with_insight(mut self, top_k: u32) -> Self {
        self.enable_insight(top_k);
        self
    }

    /// Enables (or resets) the search-health log in place, registering
    /// every tunable variable's initial domain size as the coverage
    /// denominator.
    pub fn enable_insight(&mut self, top_k: u32) {
        let mut log = SearchLog::new(
            &self.space.workload,
            &self.space.dla.name,
            self.rng.seed(),
            top_k,
        );
        log.set_vars(tunable_domains(&self.space.csp));
        self.state.insight = Some(log);
    }

    /// The accumulated search-health log (`None` unless insight is
    /// enabled).
    pub fn insight(&self) -> Option<&SearchLog> {
        self.state.insight.as_ref()
    }

    /// Base per-round record: round index, trials, best-so-far, and the
    /// round's deltas of the robustness counters plus its visible solver
    /// work (population sampling + fallback sampling).
    fn insight_round_record(
        &self,
        snap: &RoundSnapshot,
        solver: &SolveStats,
        offspring: &SolveStats,
        population: usize,
    ) -> Option<RoundRecord> {
        let log = self.state.insight.as_ref()?;
        let r = &self.state.result;
        let mut rec = RoundRecord::new(log.next_round());
        rec.trials_done = r.curve.len() as u32;
        rec.best_gflops = r.best_gflops;
        rec.population = population as u32;
        rec.repaired_offspring = (r.repaired_offspring - snap.repaired_offspring) as u32;
        rec.relaxed_constraints = (r.relaxed_constraints - snap.relaxed_constraints) as u32;
        rec.fallback_samples = (r.fallback_samples - snap.fallback_samples) as u32;
        rec.deadline_hits = (r.solver_deadline_hits - snap.deadline_hits) as u32;
        rec.solver_attempts = solver.attempts;
        rec.solver_propagations = solver.propagations;
        rec.solver_wipeouts = solver.wipeouts;
        rec.solver_max_trail = solver.max_trail_depth.max(offspring.max_trail_depth);
        rec.solver_incremental = offspring.incremental_hits;
        Some(rec)
    }

    /// Records a round in which no measurable candidate was produced
    /// (solver starvation or space exhaustion).
    fn record_stalled_round(
        &mut self,
        snap: &RoundSnapshot,
        solver: &SolveStats,
        offspring: &SolveStats,
        population: usize,
    ) {
        let Some(mut rec) = self.insight_round_record(snap, solver, offspring, population) else {
            return;
        };
        rec.stalled = true;
        if let Some(log) = &mut self.state.insight {
            log.push_round(rec);
        }
    }

    /// The tuned space.
    pub fn space(&self) -> &GeneratedSpace {
        &self.space
    }

    /// Trials measured so far.
    pub fn trials_done(&self) -> usize {
        self.state.result.curve.len()
    }

    /// Whether the session has terminated.
    pub fn is_finished(&self) -> bool {
        self.state.finished
    }

    /// A snapshot of the session result so far (termination is
    /// [`Termination::Running`] until the session ends).
    pub fn result(&self) -> TuneResult {
        self.state.result.clone()
    }

    /// Runs Algorithm 2 to completion.
    pub fn run(&mut self) -> TuneResult {
        while self.step() {}
        self.state.result.clone()
    }

    /// Runs until at least `trials_done` trials have been measured (or
    /// the session terminates first); returns whether the session is
    /// finished. Because the loop advances in whole ε-greedy iterations,
    /// the session stops at the first iteration boundary at or past the
    /// requested count — the granularity at which [`Tuner::checkpoint`]
    /// is exact.
    pub fn run_until(&mut self, trials_done: usize) -> bool {
        while !self.state.finished && self.state.result.curve.len() < trials_done {
            if !self.step() {
                break;
            }
        }
        self.state.finished
    }

    fn finish(&mut self, termination: Termination) {
        self.state.result.termination = termination;
        self.state.result.model_rank_accuracy = self.state.model.rank_accuracy();
        self.state.finished = true;
    }

    /// One Algorithm-2 iteration: (re)populate, evolve on CSPs, ε-greedy
    /// measure one batch with retries/quarantine, refit the model.
    /// Returns `false` once the session has terminated.
    pub fn step(&mut self) -> bool {
        if self.state.finished {
            return false;
        }
        let cfg = self.config;
        if self.state.result.curve.len() >= cfg.trials {
            self.finish(Termination::TrialsExhausted);
            return false;
        }
        // Cooperative control checks, round-boundary granularity only:
        // cancellation (session abandoned) wins over preemption (session
        // to be checkpointed and resumed); an explicit preempt request
        // and an expired round deadline share one exit path.
        if self.control.cancel_requested() {
            self.tracer.counter_add("tuner.cancelled", 1);
            self.finish(Termination::Cancelled);
            return false;
        }
        let deadline = self.control.deadline_rounds();
        if self.control.preempt_requested()
            || (deadline > 0 && self.state.result.rounds_total as u64 >= deadline)
        {
            self.tracer.counter_add("tuner.preempted", 1);
            self.finish(Termination::Preempted);
            return false;
        }
        // This round is now committed: count it (stalled or not) on the
        // lifetime counter and publish progress to any supervisor.
        self.state.result.rounds_total += 1;
        self.control.beat();
        let tracer = self.tracer.clone();
        let iter_no = self.state.result.iterations.len();
        let _step_span = tracer.span_with("tuner.step", || [("iter", iter_no.to_string())]);
        tracer.counter_add("tuner.steps", 1);
        let insight_on = self.state.insight.is_some();
        let snap = RoundSnapshot::of(&self.state.result);
        let mut round_solver = SolveStats::default();
        // Solver work spent materialising offspring (incremental pinned
        // re-solves); kept apart from `round_solver` so the populate /
        // fallback columns of the round record keep their historical
        // meaning.
        let mut round_offspring = SolveStats::default();

        // ---- Step 1: first generation --------------------------------
        let t = Instant::now();
        let policy = cfg.cga.solver_policy();
        let need = cfg
            .cga
            .population
            .saturating_sub(self.state.survivors.len());
        let populate_span = tracer.span_with("cga.populate", || [("need", need.to_string())]);
        let outcome = self.solver.solve(&mut self.rng, need, &policy, &tracer);
        let populate_status = outcome.status;
        round_solver.absorb(&outcome.stats);
        if populate_status == SolveStatus::DeadlineExceeded {
            self.state.result.solver_deadline_hits += 1;
        }
        tracer.counter_add("cga.fresh_sampled", outcome.solutions.len() as u64);
        drop(populate_span);
        let mut pop: Vec<Chromosome> = self.state.survivors.clone();
        pop.extend(outcome.solutions.into_iter().map(|solution| Chromosome {
            fitness: self.state.model.predict(&solution),
            solution,
        }));
        if pop.is_empty() {
            self.record_stalled_round(&snap, &round_solver, &round_offspring, 0);
            if populate_status == SolveStatus::RootInfeasible {
                // A propagation wipeout at the root is an UNSAT *proof*:
                // the space admits no solution at all.
                self.finish(Termination::Infeasible);
                return false;
            }
            // The solver merely starved (budget / deadline) on a space not
            // proven infeasible: retry a bounded number of rounds instead
            // of misreporting `Infeasible`.
            self.state.stall_rounds += 1;
            tracer.counter_add("tuner.solver_starved", 1);
            self.state.result.timing.cga_s += t.elapsed().as_secs_f64();
            if self.state.stall_rounds > cfg.max_stall_rounds {
                self.finish(Termination::SolverStarved);
                return false;
            }
            return true;
        }

        // ---- Step 2: evolve on CSPs -----------------------------------
        let evolve_span = tracer.span_with("cga.evolve", || {
            [("generations", cfg.cga.generations.to_string())]
        });
        for _ in 0..cfg.cga.generations {
            let parents = roulette_wheel(&pop, pop.len().min(cfg.cga.population), &mut self.rng);
            let key_vars = if self.state.model.is_fitted() {
                self.state.model.key_variables(cfg.cga.key_vars)
            } else {
                let tunables = self.space.csp.tunables();
                let mut keys = Vec::new();
                for _ in 0..cfg.cga.key_vars.min(tunables.len()) {
                    if let Some(&v) = tunables.as_slice().choose(&mut self.rng) {
                        keys.push(v);
                    }
                }
                keys.sort_unstable();
                keys.dedup();
                keys
            };
            let mut children = Vec::with_capacity(cfg.cga.offspring);
            for _ in 0..cfg.cga.offspring {
                let &i1 = parents.as_slice().choose(&mut self.rng).expect("non-empty");
                let &i2 = parents.as_slice().choose(&mut self.rng).expect("non-empty");
                let pins = offspring_pins(
                    &key_vars,
                    &pop[i1].solution,
                    &pop[i2].solution,
                    &mut self.rng,
                );
                tracer.counter_add("cga.offspring_attempted", 1);
                let off = materialize_offspring_session(
                    &mut self.solver,
                    pins,
                    &mut self.rng,
                    &policy,
                    &tracer,
                );
                round_offspring.absorb(&off.stats);
                if off.deadline_hit {
                    self.state.result.solver_deadline_hits += 1;
                }
                if off.solution.is_some() && off.relaxed > 0 {
                    self.state.result.repaired_offspring += 1;
                    self.state.result.relaxed_constraints += off.relaxed as usize;
                }
                match off.solution {
                    Some(sol) => children.push(Chromosome {
                        fitness: self.state.model.predict(&sol),
                        solution: sol,
                    }),
                    None => {
                        tracer.counter_add("cga.offspring_invalid", 1);
                        // Graceful degradation: replace the unrecoverable
                        // offspring with a fresh sample of CSP_initial so
                        // the generation keeps its size.
                        let fallback = self.solver.solve(&mut self.rng, 1, &policy, &tracer);
                        round_solver.absorb(&fallback.stats);
                        if let Some(sol) = fallback.one() {
                            self.state.result.fallback_samples += 1;
                            tracer.counter_add("cga.fallback_samples", 1);
                            children.push(Chromosome {
                                fitness: self.state.model.predict(&sol),
                                solution: sol,
                            });
                        }
                    }
                }
            }
            pop.extend(children);
            // NaN predictions are sanitised to -inf at the model, so
            // total_cmp yields a strict deterministic order.
            pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
            pop.truncate(cfg.cga.population * 2);
        }
        drop(evolve_span);
        self.state.result.timing.cga_s += t.elapsed().as_secs_f64();
        tracer.gauge_set("tuner.cga_s", self.state.result.timing.cga_s);

        // Search-health observables over the evolved population: per-column
        // Shannon entropy of the tunable assignments and the distinct-
        // solution count. Computed only when insight is enabled (the
        // tunable projection is O(population × variables)).
        let tunables = if insight_on {
            self.space.csp.tunables()
        } else {
            Vec::new()
        };
        let mut entropy_bits = 0.0;
        let mut distinct = 0usize;
        if insight_on {
            let rows: Vec<Vec<i64>> = pop
                .iter()
                .map(|c| tunables.iter().map(|&v| c.solution.value(v)).collect())
                .collect();
            entropy_bits = population_entropy_bits(&rows);
            distinct = pop
                .iter()
                .map(|c| c.solution.fingerprint())
                .collect::<BTreeSet<u64>>()
                .len();
        }

        // ---- Step 3: ε-greedy measurement -----------------------------
        let unmeasured: Vec<&Chromosome> = pop
            .iter()
            .filter(|c| !self.state.measured.contains(&c.solution.fingerprint()))
            .collect();
        if unmeasured.is_empty() {
            let population = pop.len();
            drop(unmeasured);
            drop(pop);
            if let Some(mut rec) =
                self.insight_round_record(&snap, &round_solver, &round_offspring, population)
            {
                rec.stalled = true;
                rec.entropy_bits = entropy_bits;
                rec.distinct_solutions = distinct as u32;
                rec.diversity = distinct as f64 / population.max(1) as f64;
                if let Some(log) = &mut self.state.insight {
                    log.push_round(rec);
                }
            }
            self.state.stall_rounds += 1;
            self.state.survivors.clear();
            tracer.counter_add("tuner.stall_rounds", 1);
            if self.state.stall_rounds > cfg.max_stall_rounds {
                self.finish(Termination::SpaceExhausted);
                return false;
            }
            return true;
        }
        self.state.stall_rounds = 0;
        let predicted: Vec<f64> = unmeasured.iter().map(|c| c.fitness).collect();
        let budget = cfg
            .cga
            .measure_batch
            .min(cfg.trials - self.state.result.curve.len());
        let sel = eps_greedy_detailed(&predicted, budget, cfg.cga.eps, &mut self.rng);
        tracer.counter_add("tuner.eps_rounds", 1);
        let chosen: Vec<Solution> = sel
            .picks
            .iter()
            .map(|&i| unmeasured[i].solution.clone())
            .collect();
        // Pre-measurement predictions of the chosen batch: the per-batch
        // calibration signal (prediction vs measurement on fresh data).
        let chosen_predicted: Vec<f64> = sel.picks.iter().map(|&i| predicted[i]).collect();
        let model_was_fitted = self.state.model.is_fitted();
        let batch_span =
            tracer.span_with("measure.batch", || [("batch", chosen.len().to_string())]);
        let mut batch_scores: Vec<f64> = Vec::with_capacity(chosen.len());
        let population = pop.len();
        for sol in chosen {
            self.state.measured.insert(sol.fingerprint());
            let score = self.measure_trial(&sol);
            batch_scores.push(score);
            if insight_on {
                let row: Vec<i64> = tunables.iter().map(|&v| sol.value(v)).collect();
                if let Some(log) = &mut self.state.insight {
                    log.observe_assignment(&row);
                }
            }
        }
        drop(batch_span);
        tracer.gauge_set("tuner.hw_measure_s", self.state.result.timing.hw_measure_s);

        // ---- Step 4: update the cost model -----------------------------
        let t = Instant::now();
        let iter_index = self.state.result.iterations.len() as u64;
        let mut fit_rng = self.rng.fork(FIT_STREAM.wrapping_add(iter_index));
        self.state.model.fit(&mut fit_rng);
        self.state.result.timing.model_s += t.elapsed().as_secs_f64();
        tracer.gauge_set("tuner.model_s", self.state.result.timing.model_s);
        tracer.gauge_set("tuner.best_gflops", self.state.result.best_gflops);
        self.state.result.iterations.push(IterationStats {
            iteration: iter_index as usize,
            trials_done: self.state.result.curve.len(),
            best_gflops: self.state.result.best_gflops,
            batch_mean_gflops: batch_scores.iter().sum::<f64>() / batch_scores.len().max(1) as f64,
            model_fitted: self.state.model.is_fitted(),
            population,
        });

        // ---- Search-health log record for this round ------------------
        if let Some(mut rec) =
            self.insight_round_record(&snap, &round_solver, &round_offspring, population)
        {
            rec.batch_size = batch_scores.len() as u32;
            rec.batch_best_gflops = batch_scores.iter().copied().fold(0.0_f64, f64::max);
            rec.batch_mean_gflops =
                batch_scores.iter().sum::<f64>() / batch_scores.len().max(1) as f64;
            rec.exploit_picks = sel.exploit;
            rec.explore_picks = sel.explore;
            rec.distinct_solutions = distinct as u32;
            rec.diversity = distinct as f64 / population.max(1) as f64;
            rec.entropy_bits = entropy_bits;
            // Per-batch calibration: the model's pre-measurement ranking
            // of the chosen batch vs what the hardware actually said.
            // Only meaningful when a fitted model produced the ranking
            // and the batch has at least one comparable pair.
            if model_was_fitted && chosen_predicted.len() >= 2 {
                rec.batch_rank_accuracy = Some(heron_cost::pairwise_rank_accuracy(
                    &chosen_predicted,
                    &batch_scores,
                ));
                rec.batch_spearman =
                    Some(heron_cost::spearman_rho(&chosen_predicted, &batch_scores));
            }
            let round_no = rec.round;
            let refit_quality = self.state.model.train_quality();
            let refit_samples = self.state.model.len() as u32;
            let top_k = self.state.insight.as_ref().map_or(0, |l| l.top_k);
            let top_importance = self.state.model.importance_topk(top_k as usize);
            if let Some(log) = &mut self.state.insight {
                log.push_round(rec);
                if let Some((acc, rho)) = refit_quality {
                    log.push_refit(RefitRecord {
                        round: round_no,
                        samples: refit_samples,
                        train_rank_accuracy: acc,
                        train_spearman: rho,
                        top_importance,
                    });
                }
            }
        }

        for c in &mut pop {
            c.fitness = self.state.model.predict(&c.solution);
        }
        pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
        self.state.survivors = pop.into_iter().take(cfg.cga.population / 2).collect();

        if self.state.result.curve.len() >= cfg.trials {
            self.finish(Termination::TrialsExhausted);
            return false;
        }
        true
    }

    /// Measures one candidate with the full resilience protocol
    /// (median-of-repeats, transient retries with backoff, quarantine)
    /// and records the trial in the session result and the cost model.
    /// Returns the score the trial was trained with.
    fn measure_trial(&mut self, sol: &Solution) -> f64 {
        let cfg = self.config;
        let tracer = self.tracer.clone();
        let _trial_span =
            tracer.span_with("measure.trial", || [("fp", sol.fingerprint().to_string())]);
        tracer.counter_add("measure.trials", 1);
        let t = Instant::now();
        let csp = &self.space.csp;
        let lowered = lower(&self.space.template, sol.fingerprint(), &|name| {
            sol.value_by_name(csp, name)
        });

        let mut retries: u32 = 0;
        let mut saw_timeout = false;
        let mut quarantine = false;
        let res = &mut self.state.result;
        res.timing.hw_measure_s += cfg.trial_overhead_s;
        tracer.advance_s(cfg.trial_overhead_s);
        tracer.gauge_add("measure.overhead_s", cfg.trial_overhead_s);

        let outcome: Result<(Kernel, Measurement), EvalError> = match lowered {
            Err(e) => Err(EvalError::Lower(e)),
            Ok(kernel) => {
                let repeats = cfg.measure_repeats.max(1) as usize;
                let mut runs: Vec<f64> = Vec::with_capacity(repeats);
                let mut attempt: u32 = 0;
                let mut fail: Option<MeasureError> = None;
                while runs.len() < repeats {
                    match self.measurer.measure_attempt(&kernel, attempt) {
                        Ok(m) => {
                            res.timing.hw_measure_s += m.latency_s;
                            tracer.advance_s(m.latency_s);
                            tracer.gauge_add("measure.run_s", m.latency_s);
                            runs.push(m.latency_s);
                        }
                        Err(e) if e.is_transient() => {
                            *res.error_counts.entry(e.tag().to_string()).or_insert(0) += 1;
                            if matches!(e, MeasureError::Timeout { .. }) {
                                saw_timeout = true;
                            }
                            retries += 1;
                            let fault_s = self.measurer.fault_cost_s(&e);
                            let wait_s = backoff_s(&cfg, retries);
                            res.timing.hw_measure_s += fault_s + wait_s;
                            tracer.advance_s(fault_s + wait_s);
                            tracer.gauge_add("measure.fault_s", fault_s);
                            tracer.gauge_add("measure.backoff_s", wait_s);
                            tracer.counter_add("measure.retries", 1);
                            tracer.point_with("measure.retry", || {
                                [("tag", e.tag().to_string()), ("retry", retries.to_string())]
                            });
                            if retries > cfg.max_retries {
                                quarantine = true;
                                fail = Some(e);
                                break;
                            }
                        }
                        Err(e) => {
                            *res.error_counts.entry(e.tag().to_string()).or_insert(0) += 1;
                            fail = Some(e);
                            break;
                        }
                    }
                    attempt += 1;
                }
                match fail {
                    Some(e) => Err(EvalError::Measure(e)),
                    None => {
                        let latency_s = median(&mut runs);
                        let m = Measurement {
                            latency_s,
                            gflops: kernel.total_flops as f64 / latency_s / 1e9,
                        };
                        Ok((kernel, m))
                    }
                }
            }
        };

        if retries > 0 {
            res.retried_trials += 1;
            res.total_retries += retries as usize;
        }
        if saw_timeout {
            res.timeout_trials += 1;
            tracer.counter_add("measure.timeout_trials", 1);
        }
        let score = match outcome {
            Ok((kernel, m)) => {
                res.valid_trials += 1;
                if m.gflops > res.best_gflops {
                    res.best_gflops = m.gflops;
                    res.best_latency_s = m.latency_s;
                    res.best_solution = Some(sol.clone());
                    res.best_kernel = Some(kernel);
                }
                m.gflops
            }
            Err(e) => {
                if let EvalError::Lower(_) = e {
                    *res.error_counts.entry(e.tag().to_string()).or_insert(0) += 1;
                }
                res.invalid_trials += 1;
                tracer.counter_add("measure.invalid_trials", 1);
                if quarantine {
                    let evicted = self
                        .state
                        .quarantined
                        .insert(sol.fingerprint(), cfg.max_quarantined);
                    res.quarantined = self.state.quarantined.len();
                    res.quarantine_evictions = self.state.quarantined.evictions;
                    tracer.counter_add("measure.quarantined", 1);
                    if evicted > 0 {
                        tracer.counter_add("tuner.quarantine_evictions", evicted as u64);
                    }
                    tracer.point_with("measure.quarantine", || {
                        [("fp", sol.fingerprint().to_string())]
                    });
                }
                // Penalty policy: teach the model "bad", not "zero".
                res.best_gflops * cfg.penalty_fraction
            }
        };
        res.timing.sim_s += t.elapsed().as_secs_f64();
        let prev = res.curve.last().copied().unwrap_or_default();
        res.curve.push(prev.max(score));
        self.state.model.add_sample(sol, score);
        self.state.samples.push((sol.values().to_vec(), score));
        score
    }

    /// Captures the complete session state — result so far, measured and
    /// quarantined fingerprints, cost-model samples, survivor population
    /// and the exact RNG stream position — as a serialisable
    /// [`TuneCheckpoint`]. Exact at iteration boundaries (which is where
    /// [`Tuner::run_until`] stops).
    pub fn checkpoint(&self) -> TuneCheckpoint {
        let r = &self.state.result;
        TuneCheckpoint {
            workload: self.space.workload.clone(),
            dla: self.space.dla.name.clone(),
            seed: self.rng.seed(),
            rng_state: self.rng.state_words(),
            stall_rounds: self.state.stall_rounds,
            rounds_total: r.rounds_total,
            quarantine_evictions: r.quarantine_evictions,
            best_gflops: r.best_gflops,
            best_latency_s: r.best_latency_s,
            best_solution: r.best_solution.as_ref().map(|s| s.values().to_vec()),
            curve: r.curve.clone(),
            valid_trials: r.valid_trials,
            invalid_trials: r.invalid_trials,
            retried_trials: r.retried_trials,
            total_retries: r.total_retries,
            timeout_trials: r.timeout_trials,
            repaired_offspring: r.repaired_offspring,
            relaxed_constraints: r.relaxed_constraints,
            solver_deadline_hits: r.solver_deadline_hits,
            fallback_samples: r.fallback_samples,
            error_counts: r.error_counts.clone(),
            timing: r.timing,
            iterations: r.iterations.clone(),
            measured: self.state.measured.iter().copied().collect(),
            quarantined: self.state.quarantined.ordered(),
            samples: self.state.samples.clone(),
            survivors: self
                .state
                .survivors
                .iter()
                .map(|c| c.solution.values().to_vec())
                .collect(),
            insight: self.state.insight.clone(),
        }
    }

    /// Reconstructs a session from a checkpoint so that continuing it
    /// produces *exactly* what the uninterrupted run would have: the RNG
    /// resumes at its saved stream position, the cost model is refitted
    /// from the replayed samples with the same fork stream it was
    /// originally fitted with, and survivor fitness is re-derived from
    /// that model.
    ///
    /// # Errors
    /// [`CheckpointError::Mismatch`] when the checkpoint does not belong
    /// to this `(space, platform)` pair or its solutions have the wrong
    /// arity.
    pub fn resume(
        space: GeneratedSpace,
        measurer: Measurer,
        config: TuneConfig,
        plan: FaultPlan,
        ckpt: &TuneCheckpoint,
    ) -> Result<Tuner, CheckpointError> {
        if ckpt.workload != space.workload {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for workload `{}`, space is `{}`",
                ckpt.workload, space.workload
            )));
        }
        if ckpt.dla != space.dla.name {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for platform `{}`, space targets `{}`",
                ckpt.dla, space.dla.name
            )));
        }
        let num_vars = space.csp.num_vars();
        let arity_check = |values: &Vec<i64>, what: &str| -> Result<(), CheckpointError> {
            if values.len() == num_vars {
                Ok(())
            } else {
                Err(CheckpointError::Mismatch(format!(
                    "{} has {} variables, space has {}",
                    what,
                    values.len(),
                    num_vars
                )))
            }
        };

        let rng = HeronRng::restore(ckpt.seed, ckpt.rng_state);

        // Replay the sample log into a fresh model and refit it with the
        // same fork stream the interrupted session last used.
        let mut model = CostModel::new(&space.csp);
        for (values, score) in &ckpt.samples {
            arity_check(values, "a recorded sample")?;
            model.add_sample(&Solution::new(values.clone()), *score);
        }
        if let Some(last_iter) = ckpt.iterations.len().checked_sub(1) {
            let mut fit_rng = rng.fork(FIT_STREAM.wrapping_add(last_iter as u64));
            model.fit(&mut fit_rng);
        }

        let mut survivors = Vec::with_capacity(ckpt.survivors.len());
        for values in &ckpt.survivors {
            arity_check(values, "a survivor solution")?;
            let solution = Solution::new(values.clone());
            survivors.push(Chromosome {
                fitness: model.predict(&solution),
                solution,
            });
        }

        let best_solution = match &ckpt.best_solution {
            Some(values) => {
                arity_check(values, "the best solution")?;
                Some(Solution::new(values.clone()))
            }
            None => None,
        };
        let best_kernel = best_solution.as_ref().and_then(|sol| {
            lower(&space.template, sol.fingerprint(), &|name| {
                sol.value_by_name(&space.csp, name)
            })
            .ok()
        });

        let result = TuneResult {
            best_gflops: ckpt.best_gflops,
            best_latency_s: ckpt.best_latency_s,
            best_solution,
            best_kernel,
            curve: ckpt.curve.clone(),
            valid_trials: ckpt.valid_trials,
            invalid_trials: ckpt.invalid_trials,
            retried_trials: ckpt.retried_trials,
            total_retries: ckpt.total_retries,
            quarantined: ckpt.quarantined.len(),
            quarantine_evictions: ckpt.quarantine_evictions,
            rounds_total: ckpt.rounds_total,
            timeout_trials: ckpt.timeout_trials,
            repaired_offspring: ckpt.repaired_offspring,
            relaxed_constraints: ckpt.relaxed_constraints,
            solver_deadline_hits: ckpt.solver_deadline_hits,
            fallback_samples: ckpt.fallback_samples,
            error_counts: ckpt.error_counts.clone(),
            termination: Termination::Running,
            model_rank_accuracy: None,
            timing: ckpt.timing,
            iterations: ckpt.iterations.clone(),
        };

        let state = SessionState {
            model,
            samples: ckpt.samples.clone(),
            result,
            measured: ckpt.measured.iter().copied().collect(),
            quarantined: Quarantine::from_ordered(&ckpt.quarantined, ckpt.quarantine_evictions),
            survivors,
            stall_rounds: ckpt.stall_rounds,
            finished: false,
            insight: ckpt.insight.clone(),
        };
        let measurer =
            FaultyMeasurer::new(measurer.with_protocol(config.measure_repeats, 0.01), plan);
        let solver = SolveSession::new(&space.csp);
        Ok(Tuner {
            space,
            measurer,
            config,
            rng,
            state,
            tracer: Tracer::disabled(),
            control: TunerControl::new(),
            solver,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{SpaceGenerator, SpaceOptions};
    use heron_csp::rand_sat_with_budget;
    use heron_dla::{v100, vta};
    use heron_tensor::ops;

    fn gemm_space(n: i64, name: &str) -> GeneratedSpace {
        let dag = ops::gemm(n, n, n);
        SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::heron(), name)
            .expect("generates")
    }

    #[test]
    fn tuner_finds_valid_programs_and_improves() {
        let space = gemm_space(256, "gemm-256");
        let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(48), 7);
        let result = tuner.run();
        assert!(result.best_gflops > 0.0, "no valid program found");
        assert_eq!(
            result.invalid_trials, 0,
            "Heron never measures invalid programs"
        );
        assert_eq!(
            result.curve.len(),
            result.valid_trials + result.invalid_trials
        );
        // Curve is monotone.
        for w in result.curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Later exploration should beat the very first measurement.
        assert!(
            result.curve.last().expect("non-empty") >= result.curve.first().expect("non-empty")
        );
        assert!(result.best_kernel.is_some());
        assert!(result.timing.total_s() > 0.0);
        // A fault-free session retries and quarantines nothing.
        assert_eq!(result.retried_trials, 0);
        assert_eq!(result.quarantined, 0);
        assert_eq!(result.timeout_trials, 0);
        assert!(result.error_counts.is_empty());
        assert_eq!(result.termination, Termination::TrialsExhausted);
        let report = result.report();
        assert!(report.contains("termination: trials-exhausted"));
    }

    #[test]
    fn evaluate_reports_lowering_failures_instead_of_panicking() {
        let space = gemm_space(256, "gemm-el");
        // A solution with the right arity but evaluated against a measurer
        // still works; to exercise the lowering error we strip the CSP of
        // its variables by handing evaluate a foreign space whose template
        // references names the solution's CSP does not declare.
        let mut broken = space.clone();
        broken.csp = heron_csp::Csp::new(); // no variables declared at all
        let sol = Solution::new(Vec::new());
        let err = evaluate(&broken, &Measurer::new(v100()), &sol)
            .expect_err("lowering must fail, not panic");
        assert!(matches!(err, EvalError::Lower(_)));
        assert_eq!(err.tag(), "lower");
        assert!(!err.is_transient());
        assert!(err.to_string().contains("lowering failed"));
    }

    #[test]
    fn mismatched_platform_counts_invalid_trials_without_aborting() {
        // A space generated for V100 lowers kernels whose (16,16,16)
        // intrinsic VTA rejects deterministically: every trial is invalid,
        // the session completes anyway, and the penalty policy keeps
        // scores at 0 (no best to take a fraction of).
        let space = gemm_space(256, "gemm-mismatch");
        let mut tuner = Tuner::new(space, Measurer::new(vta()), TuneConfig::quick(16), 3);
        let result = tuner.run();
        assert_eq!(result.valid_trials, 0);
        assert!(result.invalid_trials > 0, "trials must be counted");
        assert_eq!(result.best_gflops, 0.0);
        assert!(result.best_solution.is_none());
        assert!(
            result.error_counts.contains_key("intrinsic")
                || result.error_counts.contains_key("missing-intrinsic"),
            "deterministic rejection must be classified: {:?}",
            result.error_counts
        );
        assert_eq!(result.quarantined, 0, "deterministic errors never retry");
        assert_eq!(result.retried_trials, 0);
    }

    #[test]
    fn transient_faults_are_retried_and_repeat_offenders_quarantined() {
        let space = gemm_space(256, "gemm-faulty");
        let seed = 11;
        let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(48), seed)
            .with_faults(FaultPlan::uniform(seed, 0.35));
        let result = tuner.run();
        assert_eq!(result.curve.len(), 48, "all trials must complete");
        assert!(result.best_gflops > 0.0, "faults must not kill the session");
        assert!(result.retried_trials > 0, "no retries at 35% fault rate");
        assert!(
            result.quarantined > 0,
            "persistent offenders must be quarantined: {}",
            result.report()
        );
        assert_eq!(result.invalid_trials + result.valid_trials, 48);
        assert!(result.total_retries >= result.retried_trials);
        // Fault costs and backoff are charged to the simulated clock:
        // strictly more expensive than the same session without faults.
        let space2 = gemm_space(256, "gemm-faulty");
        let mut reliable = Tuner::new(space2, Measurer::new(v100()), TuneConfig::quick(48), seed);
        let base = reliable.run();
        assert!(result.timing.hw_measure_s > base.timing.hw_measure_s);
    }

    #[test]
    fn stall_bailout_is_configurable_and_reported() {
        // Pin every tunable to one known-satisfying assignment: the space
        // now admits a single configuration. With a huge trial budget the
        // session must drain it immediately and report SpaceExhausted
        // instead of spinning on the remaining budget forever.
        let mut space = gemm_space(256, "gemm-stall");
        let mut pin_rng = HeronRng::from_seed(9);
        let sol = rand_sat_with_budget(&space.csp, &mut pin_rng, 1, 2_000)
            .one()
            .expect("satisfiable");
        for v in space.csp.tunables() {
            let value = sol.value(v);
            space.csp.post_in(v, [value]);
        }
        let mut config = TuneConfig::quick(10_000);
        config.max_stall_rounds = 2;
        let mut tuner = Tuner::new(space, Measurer::new(v100()), config, 5);
        let result = tuner.run();
        assert_eq!(result.termination, Termination::SpaceExhausted);
        assert!(result.curve.len() < 10_000);
        assert!(result.report().contains("space-exhausted"));
    }

    #[test]
    fn traced_session_matches_untraced_and_emits_balanced_trace() {
        let run = |tracer: Option<Tracer>| {
            let space = gemm_space(256, "gemm-traced");
            let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(24), 7)
                .with_faults(FaultPlan::uniform(7, 0.3));
            if let Some(t) = tracer {
                tuner = tuner.with_tracer(t);
            }
            tuner.run()
        };
        let tracer = Tracer::manual();
        let traced = run(Some(tracer.clone()));
        let plain = run(None);
        assert_eq!(traced.best_gflops, plain.best_gflops);
        assert_eq!(
            traced.curve, plain.curve,
            "tracing must not perturb the session"
        );
        assert_eq!(traced.total_retries, plain.total_retries);

        // The trace parses, balances, and covers every pipeline layer.
        let summary = heron_trace::check_trace(&tracer.to_jsonl()).expect("balanced trace");
        let names = summary.span_names();
        for want in [
            "tuner.step",
            "cga.populate",
            "csp.solve",
            "cga.evolve",
            "measure.batch",
            "measure.trial",
            "model.fit",
            "cost.fit",
        ] {
            assert!(names.contains(&want), "span {want} missing: {names:?}");
        }
        assert!(
            tracer.metrics_len() >= 12,
            "expected a rich instrument set:\n{}",
            tracer.metrics_tsv()
        );
        assert_eq!(
            tracer.counter("measure.trials"),
            Some(traced.curve.len() as u64)
        );
        assert_eq!(
            tracer.counter("measure.retries"),
            Some(traced.total_retries as u64)
        );
        assert_eq!(
            tracer.counter("measure.quarantined"),
            Some(traced.quarantined as u64)
        );
        // The manual clock advanced by exactly the simulated charges.
        let last_t = summary.spans.iter().map(|s| s.t_close_ns).max().unwrap();
        let hw_ns = (traced.timing.hw_measure_s * 1e9).round() as u64;
        assert!(
            last_t.abs_diff(hw_ns) < 1_000,
            "manual clock {last_t} vs charged {hw_ns}"
        );
        // The profile tree is exposed in the report and sums to total_s.
        assert!(traced.profile().starts_with("tune "));
        assert!(traced.report().contains("tune "));
        assert!(traced.report().contains("measure.hw"));
    }

    #[test]
    fn insight_log_observes_without_perturbing_the_session() {
        let run = |insight: bool| {
            let space = gemm_space(256, "gemm-insight");
            let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(32), 7);
            if insight {
                tuner = tuner.with_insight(5);
            }
            let result = tuner.run();
            let log = tuner.insight().cloned();
            (result, log)
        };
        let (plain, none) = run(false);
        let (logged, log) = run(true);
        assert!(none.is_none());
        let log = log.expect("insight enabled");

        // Observation only: the session is bit-identical either way.
        assert_eq!(plain.best_gflops, logged.best_gflops);
        assert_eq!(plain.curve, logged.curve);

        // The log is populated and internally consistent.
        assert_eq!(log.workload, "gemm-insight");
        assert_eq!(log.seed, 7);
        assert!(!log.rounds.is_empty());
        for (i, r) in log.rounds.iter().enumerate() {
            assert_eq!(r.round as usize, i, "rounds are sequential");
        }
        let last = log
            .rounds
            .iter()
            .rev()
            .find(|r| !r.stalled)
            .expect("measured rounds");
        assert_eq!(last.best_gflops, logged.best_gflops);
        assert_eq!(log.final_best(), logged.best_gflops);
        let trials: u32 = log.rounds.iter().map(|r| r.batch_size).sum();
        assert_eq!(trials as usize, logged.curve.len());
        let picks: u32 = log
            .rounds
            .iter()
            .map(|r| r.exploit_picks + r.explore_picks)
            .sum();
        assert_eq!(picks, trials, "every measured trial came from ε-greedy");
        // Population observables are recorded on measured rounds.
        assert!(log.rounds.iter().any(|r| r.entropy_bits > 0.0));
        assert!(log
            .rounds
            .iter()
            .filter(|r| !r.stalled)
            .all(|r| r.population > 0 && r.distinct_solutions > 0 && r.diversity > 0.0));
        // Solver work is visible.
        assert!(log.rounds.iter().any(|r| r.solver_attempts > 0));
        assert!(log.rounds.iter().any(|r| r.solver_propagations > 0));
        // 32 trials cross the 8-sample fit threshold: refits recorded
        // with quality and a non-empty importance snapshot.
        assert!(!log.refits.is_empty(), "model refits must be logged");
        let refit = log.refits.last().unwrap();
        assert!(refit.samples >= 8);
        assert!((0.0..=1.0).contains(&refit.train_rank_accuracy));
        assert!((-1.0..=1.0).contains(&refit.train_spearman));
        assert!(!refit.top_importance.is_empty());
        assert!(refit.top_importance.len() <= 5);
        // Once the model is fitted, later batches carry calibration.
        assert!(log
            .rounds
            .iter()
            .any(|r| r.batch_rank_accuracy.is_some() && r.batch_spearman.is_some()));
        // Coverage accumulated on the tunable variables.
        assert!(!log.vars.is_empty());
        assert!(log.vars.iter().any(|v| !v.seen.is_empty()));
        for v in &log.vars {
            assert!(v.seen.len() as u64 <= v.domain_size);
        }

        // The log survives the checkpoint roundtrip bit-exactly.
        let space = gemm_space(256, "gemm-insight");
        let mut tuner =
            Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(32), 7).with_insight(5);
        tuner.run_until(16);
        let ckpt = tuner.checkpoint();
        let reparsed = TuneCheckpoint::from_text(&ckpt.to_text()).expect("parses");
        assert_eq!(reparsed.insight, ckpt.insight);
        let space = gemm_space(256, "gemm-insight");
        let resumed = Tuner::resume(
            space,
            Measurer::new(v100()),
            TuneConfig::quick(32),
            FaultPlan::none(7),
            &reparsed,
        )
        .expect("resumes");
        assert_eq!(resumed.insight(), tuner.insight());
    }

    #[test]
    fn deadline_preempts_at_round_boundary_and_resume_completes_identically() {
        let seed = 7;
        let mut reference = Tuner::new(
            gemm_space(256, "gemm-ctl"),
            Measurer::new(v100()),
            TuneConfig::quick(24),
            seed,
        );
        let expected = reference.run();
        assert_eq!(expected.termination, Termination::TrialsExhausted);
        assert!(expected.rounds_total > 2, "budget must span several rounds");

        // A 2-round deadline preempts the session at the boundary.
        let mut tuner = Tuner::new(
            gemm_space(256, "gemm-ctl"),
            Measurer::new(v100()),
            TuneConfig::quick(24),
            seed,
        );
        tuner.control().set_deadline_rounds(2);
        let preempted = tuner.run();
        assert_eq!(preempted.termination, Termination::Preempted);
        assert_eq!(preempted.rounds_total, 2);
        assert!(preempted.report().contains("termination: preempted"));
        assert!(preempted.curve.len() < expected.curve.len());

        // The preempted checkpoint resumes (deadline lifted) to a result
        // byte-identical to the uninterrupted run — including the
        // determinism fingerprint heron-serve's chaos harness compares.
        let ckpt = TuneCheckpoint::from_text(&tuner.checkpoint().to_text()).expect("roundtrips");
        assert_eq!(ckpt.rounds_total, 2);
        let mut resumed = Tuner::resume(
            gemm_space(256, "gemm-ctl"),
            Measurer::new(v100()),
            TuneConfig::quick(24),
            FaultPlan::none(seed),
            &ckpt,
        )
        .expect("resumes");
        let finished = resumed.run();
        assert_eq!(finished.rounds_total, expected.rounds_total);
        assert_eq!(
            finished.deterministic_record(),
            expected.deterministic_record()
        );
        assert_eq!(
            finished.determinism_fingerprint(),
            expected.determinism_fingerprint()
        );

        // The lifetime counter survives resume: re-imposing the already-
        // spent deadline preempts immediately, before any new round.
        let mut stale = Tuner::resume(
            gemm_space(256, "gemm-ctl"),
            Measurer::new(v100()),
            TuneConfig::quick(24),
            FaultPlan::none(seed),
            &ckpt,
        )
        .expect("resumes");
        stale.control().set_deadline_rounds(2);
        assert!(!stale.step());
        assert_eq!(stale.result().termination, Termination::Preempted);
        assert_eq!(stale.result().rounds_total, 2);
    }

    #[test]
    fn cancellation_stops_the_session_without_consuming_a_round() {
        let mut tuner = Tuner::new(
            gemm_space(256, "gemm-cancel"),
            Measurer::new(v100()),
            TuneConfig::quick(24),
            3,
        );
        assert!(tuner.step(), "first round runs");
        assert_eq!(tuner.rounds_total(), 1);
        let control = tuner.control().clone();
        control.request_cancel();
        assert!(!tuner.step());
        let result = tuner.result();
        assert_eq!(result.termination, Termination::Cancelled);
        assert_eq!(result.rounds_total, 1, "cancel must not start a round");
        assert!(tuner.is_finished());
        assert_eq!(control.heartbeat(), 1, "one beat per executed round");
    }

    #[test]
    fn quarantine_eviction_is_bounded_deterministic_and_observation_only() {
        let seed = 11;
        let run = |max_quarantined: usize, tracer: Option<Tracer>| {
            let mut config = TuneConfig::quick(48);
            config.max_quarantined = max_quarantined;
            let space = gemm_space(256, "gemm-lru");
            let mut tuner = Tuner::new(space, Measurer::new(v100()), config, seed)
                .with_faults(FaultPlan::uniform(seed, 0.35));
            if let Some(t) = tracer {
                tuner = tuner.with_tracer(t);
            }
            tuner.run()
        };
        let unbounded = run(0, None);
        assert!(
            unbounded.quarantined >= 2,
            "need ≥2 quarantined candidates to exercise eviction: {}",
            unbounded.report()
        );
        assert_eq!(unbounded.quarantine_evictions, 0);

        let tracer = Tracer::manual();
        let bounded = run(1, Some(tracer.clone()));
        assert_eq!(bounded.quarantined, 1, "cap of 1 keeps exactly one entry");
        assert_eq!(
            bounded.quarantine_evictions,
            unbounded.quarantined - 1,
            "every older entry was evicted oldest-first"
        );
        assert_eq!(
            tracer.counter("tuner.quarantine_evictions"),
            Some(bounded.quarantine_evictions as u64)
        );
        assert!(bounded.report().contains("evicted by the max_quarantined"));
        // Eviction is bookkeeping only: the search stream is untouched.
        assert_eq!(bounded.curve, unbounded.curve);
        assert_eq!(bounded.best_gflops, unbounded.best_gflops);

        // Insertion order and the eviction counter survive the
        // checkpoint roundtrip, so a resumed session evicts identically.
        let mut config = TuneConfig::quick(48);
        config.max_quarantined = 1;
        let space = gemm_space(256, "gemm-lru");
        let mut half = Tuner::new(space, Measurer::new(v100()), config, seed)
            .with_faults(FaultPlan::uniform(seed, 0.35));
        half.run_until(24);
        let ckpt = TuneCheckpoint::from_text(&half.checkpoint().to_text()).expect("roundtrips");
        let resumed_result = {
            let space = gemm_space(256, "gemm-lru");
            let mut resumed = Tuner::resume(
                space,
                Measurer::new(v100()),
                config,
                FaultPlan::uniform(seed, 0.35),
                &ckpt,
            )
            .expect("resumes");
            resumed.run()
        };
        assert_eq!(
            resumed_result.deterministic_record(),
            bounded.deterministic_record()
        );
    }

    #[test]
    fn median_rejects_outliers_and_backoff_caps() {
        let mut xs = [1.0, 100.0, 1.2];
        assert_eq!(median(&mut xs), 1.2);
        let mut ys = [4.0, 1.0];
        assert_eq!(median(&mut ys), 2.5);
        let cfg = TuneConfig::quick(1);
        assert_eq!(backoff_s(&cfg, 1), cfg.backoff_base_s);
        assert_eq!(backoff_s(&cfg, 2), cfg.backoff_base_s * 2.0);
        assert_eq!(backoff_s(&cfg, 30), cfg.backoff_cap_s);
    }
}
