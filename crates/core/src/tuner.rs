//! The full Heron tuning session: Algorithm 2 with instrumentation.
//!
//! Couples the generated space, the CGA evolutionary loop, the ε-greedy
//! measurement selection, the DLA measurer, and the cost model. Records
//! the best program found, the best-so-far curve, and a compilation-time
//! breakdown (CGA / measurement / model-training) used to regenerate the
//! paper's Table 10 and Figure 14.

use std::time::Instant;

use heron_csp::{rand_sat_with_budget, Solution};
use heron_dla::{MeasureError, Measurement, Measurer};
use heron_rng::HeronRng;
use heron_rng::IndexedRandom;
use heron_sched::{lower, Kernel};

use crate::explore::cga::{offspring_csp, CgaConfig};
use crate::explore::{eps_greedy, roulette_wheel, Chromosome};
use crate::generate::GeneratedSpace;
use crate::model::CostModel;

/// Lowers and measures one solution.
///
/// # Errors
/// Propagates [`MeasureError`] for invalid programs; lowering failures are
/// generator bugs and panic.
pub fn evaluate(
    space: &GeneratedSpace,
    measurer: &Measurer,
    sol: &Solution,
) -> Result<(Kernel, Measurement), MeasureError> {
    let csp = &space.csp;
    let kernel = lower(&space.template, sol.fingerprint(), &|name| {
        sol.value_by_name(csp, name)
    })
    .expect("generated templates reference only declared variables");
    let m = measurer.measure(&kernel)?;
    Ok((kernel, m))
}

/// Tuning-session configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Total hardware-measurement trials (the paper uses 2,000).
    pub trials: usize,
    /// CGA hyper-parameters.
    pub cga: CgaConfig,
    /// Per-trial fixed overhead charged to the simulated wall clock
    /// (compilation + transfer on a real deployment), seconds.
    pub trial_overhead_s: f64,
    /// Repeats per hardware measurement.
    pub measure_repeats: u32,
}

impl TuneConfig {
    /// The paper's configuration: 2,000 trials.
    pub fn paper() -> Self {
        TuneConfig {
            trials: 2_000,
            cga: CgaConfig::default(),
            trial_overhead_s: 0.8,
            measure_repeats: 3,
        }
    }

    /// A reduced-budget configuration for tests and quick demos.
    pub fn quick(trials: usize) -> Self {
        TuneConfig {
            trials,
            cga: CgaConfig {
                population: 16,
                generations: 2,
                offspring: 10,
                key_vars: 6,
                eps: 0.15,
                measure_batch: 8,
                solver_budget: 300,
            },
            trial_overhead_s: 0.8,
            measure_repeats: 3,
        }
    }
}

/// Wall-clock breakdown of a tuning session (paper Figure 14).
#[derive(Debug, Clone, Copy, Default)]
pub struct TuneTiming {
    /// Real seconds spent in CGA evolution + CSP solving.
    pub cga_s: f64,
    /// Real seconds spent in the simulator.
    pub sim_s: f64,
    /// Real seconds spent fitting the cost model.
    pub model_s: f64,
    /// *Simulated deployment* measurement wall clock: per-trial overhead
    /// plus `latency × repeats` for every trial — what "hardware
    /// measurement" would cost on the physical DLA.
    pub hw_measure_s: f64,
}

impl TuneTiming {
    /// Total simulated compilation time: exploration + model + deployment
    /// measurements.
    pub fn total_s(&self) -> f64 {
        self.cga_s + self.model_s + self.hw_measure_s
    }
}

/// Per-iteration statistics of the Algorithm-2 loop (for session reports
/// and convergence debugging).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (one ε-greedy measurement round each).
    pub iteration: usize,
    /// Total trials measured so far.
    pub trials_done: usize,
    /// Best score so far, Gops.
    pub best_gflops: f64,
    /// Mean score of this iteration's measured batch.
    pub batch_mean_gflops: f64,
    /// Whether the cost model was fitted after this iteration.
    pub model_fitted: bool,
    /// Distinct chromosomes in the evolved population.
    pub population: usize,
}

/// Result of one tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best observed throughput in Gops.
    pub best_gflops: f64,
    /// Latency of the best program, seconds.
    pub best_latency_s: f64,
    /// The best assignment, if any valid program was found.
    pub best_solution: Option<Solution>,
    /// The best lowered kernel.
    pub best_kernel: Option<Kernel>,
    /// Best-so-far score after every trial.
    pub curve: Vec<f64>,
    /// Trials that produced a running program.
    pub valid_trials: usize,
    /// Trials rejected by the measurer (compile/run errors).
    pub invalid_trials: usize,
    /// Timing breakdown.
    pub timing: TuneTiming,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

impl TuneResult {
    /// Multi-line human-readable session report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tuning session: {} trials ({} valid, {} invalid), best {:.1} Gops @ {:.1} us",
            self.curve.len(),
            self.valid_trials,
            self.invalid_trials,
            self.best_gflops,
            self.best_latency_s * 1e6
        );
        let _ = writeln!(
            out,
            "time: cga {:.2}s, simulator {:.2}s, model {:.2}s, simulated hw measurement {:.1}s",
            self.timing.cga_s, self.timing.sim_s, self.timing.model_s, self.timing.hw_measure_s
        );
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "  iter {:>3}: {:>5} trials, best {:>9.1}, batch mean {:>9.1}, pop {:>3}{}",
                it.iteration,
                it.trials_done,
                it.best_gflops,
                it.batch_mean_gflops,
                it.population,
                if it.model_fitted {
                    ", model fitted"
                } else {
                    ""
                }
            );
        }
        out
    }
}

/// A tuning session for one generated space.
#[derive(Debug)]
pub struct Tuner {
    space: GeneratedSpace,
    measurer: Measurer,
    config: TuneConfig,
    rng: HeronRng,
}

impl Tuner {
    /// Creates a session.
    pub fn new(space: GeneratedSpace, measurer: Measurer, config: TuneConfig, seed: u64) -> Self {
        let measurer = measurer.with_protocol(config.measure_repeats, 0.01);
        Tuner {
            space,
            measurer,
            config,
            rng: HeronRng::from_seed(seed),
        }
    }

    /// The tuned space.
    pub fn space(&self) -> &GeneratedSpace {
        &self.space
    }

    /// Runs Algorithm 2 to completion.
    pub fn run(&mut self) -> TuneResult {
        let cfg = self.config;
        let mut model = CostModel::new(&self.space.csp);
        let mut result = TuneResult {
            best_gflops: 0.0,
            best_latency_s: f64::INFINITY,
            best_solution: None,
            best_kernel: None,
            curve: Vec::with_capacity(cfg.trials),
            valid_trials: 0,
            invalid_trials: 0,
            timing: TuneTiming::default(),
            iterations: Vec::new(),
        };
        let mut measured: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut survivors: Vec<Chromosome> = Vec::new();
        let mut stall_rounds = 0usize;

        while result.curve.len() < cfg.trials {
            // ---- Step 1: first generation --------------------------------
            let t = Instant::now();
            let need = cfg.cga.population.saturating_sub(survivors.len());
            let fresh =
                rand_sat_with_budget(&self.space.csp, &mut self.rng, need, cfg.cga.solver_budget);
            let mut pop: Vec<Chromosome> = survivors.clone();
            pop.extend(fresh.into_iter().map(|solution| Chromosome {
                fitness: model.predict(&solution),
                solution,
            }));
            if pop.is_empty() {
                break; // the space is infeasible
            }

            // ---- Step 2: evolve on CSPs -----------------------------------
            for _ in 0..cfg.cga.generations {
                let parents =
                    roulette_wheel(&pop, pop.len().min(cfg.cga.population), &mut self.rng);
                let key_vars = if model.is_fitted() {
                    model.key_variables(cfg.cga.key_vars)
                } else {
                    let tunables = self.space.csp.tunables();
                    let mut keys = Vec::new();
                    for _ in 0..cfg.cga.key_vars.min(tunables.len()) {
                        if let Some(&v) = tunables.as_slice().choose(&mut self.rng) {
                            keys.push(v);
                        }
                    }
                    keys.sort_unstable();
                    keys.dedup();
                    keys
                };
                let mut children = Vec::with_capacity(cfg.cga.offspring);
                for _ in 0..cfg.cga.offspring {
                    let &i1 = parents.as_slice().choose(&mut self.rng).expect("non-empty");
                    let &i2 = parents.as_slice().choose(&mut self.rng).expect("non-empty");
                    let csp = offspring_csp(
                        &self.space.csp,
                        &key_vars,
                        &pop[i1].solution,
                        &pop[i2].solution,
                        &mut self.rng,
                    );
                    if let Some(sol) =
                        rand_sat_with_budget(&csp, &mut self.rng, 1, cfg.cga.solver_budget).pop()
                    {
                        children.push(Chromosome {
                            fitness: model.predict(&sol),
                            solution: sol,
                        });
                    }
                }
                pop.extend(children);
                pop.sort_by(|a, b| {
                    b.fitness
                        .partial_cmp(&a.fitness)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                pop.truncate(cfg.cga.population * 2);
            }
            result.timing.cga_s += t.elapsed().as_secs_f64();

            // ---- Step 3: ε-greedy measurement -----------------------------
            let unmeasured: Vec<&Chromosome> = pop
                .iter()
                .filter(|c| !measured.contains(&c.solution.fingerprint()))
                .collect();
            if unmeasured.is_empty() {
                stall_rounds += 1;
                survivors.clear();
                if stall_rounds > 16 {
                    break; // space exhausted
                }
                continue;
            }
            stall_rounds = 0;
            let predicted: Vec<f64> = unmeasured.iter().map(|c| c.fitness).collect();
            let budget = cfg.cga.measure_batch.min(cfg.trials - result.curve.len());
            let picks = eps_greedy(&predicted, budget, cfg.cga.eps, &mut self.rng);
            let chosen: Vec<Solution> = picks
                .iter()
                .map(|&i| unmeasured[i].solution.clone())
                .collect();
            let mut batch_scores: Vec<f64> = Vec::with_capacity(chosen.len());
            let population = pop.len();
            for sol in chosen {
                measured.insert(sol.fingerprint());
                let t = Instant::now();
                let outcome = evaluate(&self.space, &self.measurer, &sol);
                result.timing.sim_s += t.elapsed().as_secs_f64();
                result.timing.hw_measure_s += cfg.trial_overhead_s;
                let score = match outcome {
                    Ok((kernel, m)) => {
                        result.valid_trials += 1;
                        result.timing.hw_measure_s += m.latency_s * f64::from(cfg.measure_repeats);
                        if m.gflops > result.best_gflops {
                            result.best_gflops = m.gflops;
                            result.best_latency_s = m.latency_s;
                            result.best_solution = Some(sol.clone());
                            result.best_kernel = Some(kernel);
                        }
                        m.gflops
                    }
                    Err(_) => {
                        result.invalid_trials += 1;
                        0.0
                    }
                };
                let prev = result.curve.last().copied().unwrap_or(0.0);
                result.curve.push(prev.max(score));
                batch_scores.push(score);
                model.add_sample(&sol, score);
            }

            // ---- Step 4: update the cost model -----------------------------
            let t = Instant::now();
            model.fit(&mut self.rng);
            result.timing.model_s += t.elapsed().as_secs_f64();
            result.iterations.push(IterationStats {
                iteration: result.iterations.len(),
                trials_done: result.curve.len(),
                best_gflops: result.best_gflops,
                batch_mean_gflops: batch_scores.iter().sum::<f64>()
                    / batch_scores.len().max(1) as f64,
                model_fitted: model.is_fitted(),
                population,
            });
            for c in &mut pop {
                c.fitness = model.predict(&c.solution);
            }
            pop.sort_by(|a, b| {
                b.fitness
                    .partial_cmp(&a.fitness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            survivors = pop.into_iter().take(cfg.cga.population / 2).collect();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{SpaceGenerator, SpaceOptions};
    use heron_dla::v100;
    use heron_tensor::ops;

    #[test]
    fn tuner_finds_valid_programs_and_improves() {
        let dag = ops::gemm(256, 256, 256);
        let space = SpaceGenerator::new(v100())
            .generate_named(&dag, &SpaceOptions::heron(), "gemm-256")
            .expect("generates");
        let mut tuner = Tuner::new(space, Measurer::new(v100()), TuneConfig::quick(48), 7);
        let result = tuner.run();
        assert!(result.best_gflops > 0.0, "no valid program found");
        assert_eq!(
            result.invalid_trials, 0,
            "Heron never measures invalid programs"
        );
        assert_eq!(
            result.curve.len(),
            result.valid_trials + result.invalid_trials
        );
        // Curve is monotone.
        for w in result.curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Later exploration should beat the very first measurement.
        assert!(
            result.curve.last().expect("non-empty") >= result.curve.first().expect("non-empty")
        );
        assert!(result.best_kernel.is_some());
        assert!(result.timing.total_s() > 0.0);
    }
}
