//! The post-run analyzer: turns a [`SearchLog`] into a deterministic
//! machine-readable `insight.json` and a human text report.

use heron_trace::Json;

use crate::log::SearchLog;

/// How close (relative) to the final best a round must get to count as
/// "converged".
pub const CONVERGENCE_TOLERANCE: f64 = 0.01;
/// Minimum run of non-improving rounds reported as a stagnation window.
pub const STAGNATION_WINDOW: u32 = 5;
/// Mean batch rank accuracy below this (with enough samples) triggers
/// the model-miscalibration warning — 0.5 is a coin flip.
pub const MISCALIBRATION_ACCURACY: f64 = 0.55;
/// Mean Jaccard distance between consecutive top-k importance sets
/// above this triggers the importance-churn warning.
pub const CHURN_JACCARD: f64 = 0.5;
/// Final entropy below this fraction of the initial entropy triggers
/// the diversity-collapse warning.
pub const DIVERSITY_COLLAPSE_RATIO: f64 = 0.25;

/// A deterministic analyzer warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Stable machine-readable code (`model-miscalibrated`,
    /// `importance-churn`, `diversity-collapse`, `stagnation`).
    pub code: String,
    /// Human-readable explanation with the numbers that tripped it.
    pub message: String,
}

/// Importance drift between two consecutive refits.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRecord {
    /// Round of the later refit.
    pub round: u32,
    /// Jaccard *distance* (1 − |∩|/|∪|) between the top-k feature sets.
    pub jaccard: f64,
    /// L1 distance between the importance vectors over the union.
    pub l1: f64,
}

/// The analyzer's computed summary.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightReport {
    /// Number of recorded rounds.
    pub rounds: usize,
    /// Measured trials at the end of the run.
    pub trials: u32,
    /// Final best score (GFLOPS).
    pub final_best: f64,
    /// First round whose best-so-far is within
    /// [`CONVERGENCE_TOLERANCE`] of the final best.
    pub convergence_round: Option<u32>,
    /// Per-round regret: `final_best − best_so_far(round)`.
    pub regret: Vec<f64>,
    /// Maximal `(start, len)` runs of ≥ [`STAGNATION_WINDOW`] rounds
    /// without best-so-far improvement.
    pub stagnation_windows: Vec<(u32, u32)>,
    /// Population entropy (bits): first / last / minimum round value.
    pub entropy_first: f64,
    /// See [`InsightReport::entropy_first`].
    pub entropy_last: f64,
    /// See [`InsightReport::entropy_first`].
    pub entropy_min: f64,
    /// Population diversity: first and last round value.
    pub diversity_first: f64,
    /// See [`InsightReport::diversity_first`].
    pub diversity_last: f64,
    /// Fraction of ε-greedy picks that explored (uniform random).
    pub explore_fraction: f64,
    /// Mean / min per-batch pairwise rank accuracy (rounds that had a
    /// fitted model).
    pub batch_accuracy_mean: Option<f64>,
    /// See [`InsightReport::batch_accuracy_mean`].
    pub batch_accuracy_min: Option<f64>,
    /// Mean / min per-batch Spearman ρ.
    pub batch_spearman_mean: Option<f64>,
    /// See [`InsightReport::batch_spearman_mean`].
    pub batch_spearman_min: Option<f64>,
    /// Drift between consecutive refit importance snapshots.
    pub importance_drift: Vec<DriftRecord>,
    /// Mean Jaccard distance across [`InsightReport::importance_drift`].
    pub importance_churn_mean: Option<f64>,
    /// Σ repaired offspring across rounds.
    pub repaired_offspring: u64,
    /// Σ relaxed constraints across rounds.
    pub relaxed_constraints: u64,
    /// Σ fallback samples across rounds.
    pub fallback_samples: u64,
    /// Σ solver deadline hits across rounds.
    pub deadline_hits: u64,
    /// Σ RandSAT attempts / propagations / wipeouts across rounds.
    pub solver_attempts: u64,
    /// See [`InsightReport::solver_attempts`].
    pub solver_propagations: u64,
    /// See [`InsightReport::solver_attempts`].
    pub solver_wipeouts: u64,
    /// Deepest solver trail (undo-stack) depth across rounds.
    pub solver_max_trail: u64,
    /// Σ incremental (pinned) offspring re-solves across rounds.
    pub solver_incremental: u64,
    /// Rounds that ended stalled.
    pub stalled_rounds: u32,
    /// Deterministic analyzer warnings.
    pub warnings: Vec<Warning>,
}

/// Analyzes a search log.
pub fn analyze(log: &SearchLog) -> InsightReport {
    let rounds = &log.rounds;
    let final_best = log.final_best();
    let trials = rounds.last().map_or(0, |r| r.trials_done);

    let convergence_round = rounds
        .iter()
        .find(|r| r.best_gflops >= final_best * (1.0 - CONVERGENCE_TOLERANCE))
        .map(|r| r.round);

    let regret: Vec<f64> = rounds.iter().map(|r| final_best - r.best_gflops).collect();

    // Stagnation: maximal runs of rounds whose best-so-far does not
    // improve on the previous round's.
    let mut stagnation_windows = Vec::new();
    let mut run_start: Option<u32> = None;
    let mut run_len = 0u32;
    for w in rounds.windows(2) {
        if w[1].best_gflops <= w[0].best_gflops {
            if run_start.is_none() {
                run_start = Some(w[1].round);
                run_len = 0;
            }
            run_len += 1;
        } else if let Some(start) = run_start.take() {
            if run_len >= STAGNATION_WINDOW {
                stagnation_windows.push((start, run_len));
            }
        }
    }
    if let Some(start) = run_start {
        if run_len >= STAGNATION_WINDOW {
            stagnation_windows.push((start, run_len));
        }
    }

    // Entropy / diversity trajectory over rounds that had a population.
    let populated: Vec<_> = rounds.iter().filter(|r| r.population > 0).collect();
    let entropy_first = populated.first().map_or(0.0, |r| r.entropy_bits);
    let entropy_last = populated.last().map_or(0.0, |r| r.entropy_bits);
    let entropy_min = populated
        .iter()
        .map(|r| r.entropy_bits)
        .fold(f64::INFINITY, f64::min);
    let entropy_min = if entropy_min.is_finite() {
        entropy_min
    } else {
        0.0
    };
    let diversity_first = populated.first().map_or(0.0, |r| r.diversity);
    let diversity_last = populated.last().map_or(0.0, |r| r.diversity);

    let explore: u64 = rounds.iter().map(|r| u64::from(r.explore_picks)).sum();
    let exploit: u64 = rounds.iter().map(|r| u64::from(r.exploit_picks)).sum();
    let explore_fraction = if explore + exploit == 0 {
        0.0
    } else {
        explore as f64 / (explore + exploit) as f64
    };

    let accs: Vec<f64> = rounds
        .iter()
        .filter_map(|r| r.batch_rank_accuracy)
        .collect();
    let rhos: Vec<f64> = rounds.iter().filter_map(|r| r.batch_spearman).collect();
    let mean = |v: &[f64]| -> Option<f64> {
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    };
    let min = |v: &[f64]| -> Option<f64> { v.iter().copied().reduce(f64::min) };

    // Importance drift between consecutive refits.
    let mut importance_drift = Vec::new();
    for pair in log.refits.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        importance_drift.push(DriftRecord {
            round: b.round,
            jaccard: jaccard_distance(&a.top_importance, &b.top_importance),
            l1: l1_distance(&a.top_importance, &b.top_importance),
        });
    }
    let importance_churn_mean = mean(
        &importance_drift
            .iter()
            .map(|d| d.jaccard)
            .collect::<Vec<_>>(),
    );

    let sum32 =
        |f: fn(&crate::RoundRecord) -> u32| -> u64 { rounds.iter().map(|r| u64::from(f(r))).sum() };
    let sum64 = |f: fn(&crate::RoundRecord) -> u64| -> u64 { rounds.iter().map(f).sum() };

    let mut report = InsightReport {
        rounds: rounds.len(),
        trials,
        final_best,
        convergence_round,
        regret,
        stagnation_windows,
        entropy_first,
        entropy_last,
        entropy_min,
        diversity_first,
        diversity_last,
        explore_fraction,
        batch_accuracy_mean: mean(&accs),
        batch_accuracy_min: min(&accs),
        batch_spearman_mean: mean(&rhos),
        batch_spearman_min: min(&rhos),
        importance_drift,
        importance_churn_mean,
        repaired_offspring: sum32(|r| r.repaired_offspring),
        relaxed_constraints: sum32(|r| r.relaxed_constraints),
        fallback_samples: sum32(|r| r.fallback_samples),
        deadline_hits: sum32(|r| r.deadline_hits),
        solver_attempts: sum64(|r| r.solver_attempts),
        solver_propagations: sum64(|r| r.solver_propagations),
        solver_wipeouts: sum64(|r| r.solver_wipeouts),
        solver_max_trail: rounds.iter().map(|r| r.solver_max_trail).max().unwrap_or(0),
        solver_incremental: sum64(|r| r.solver_incremental),
        stalled_rounds: rounds.iter().filter(|r| r.stalled).count() as u32,
        warnings: Vec::new(),
    };
    report.warnings = warnings_for(&report);
    report
}

fn warnings_for(r: &InsightReport) -> Vec<Warning> {
    let mut out = Vec::new();
    if let Some(acc) = r.batch_accuracy_mean {
        let samples = r.regret.len(); // upper bound; gate on measured batches
        if samples >= 3 && acc < MISCALIBRATION_ACCURACY {
            out.push(Warning {
                code: "model-miscalibrated".to_string(),
                message: format!(
                    "mean per-batch rank accuracy {acc:.3} is below {MISCALIBRATION_ACCURACY} — \
                     the cost model barely beats a coin flip on fresh measurements"
                ),
            });
        }
    }
    if let Some(churn) = r.importance_churn_mean {
        if r.importance_drift.len() >= 3 && churn > CHURN_JACCARD {
            out.push(Warning {
                code: "importance-churn".to_string(),
                message: format!(
                    "mean top-k importance Jaccard distance {churn:.3} exceeds {CHURN_JACCARD} — \
                     the model keeps changing its mind about which variables matter"
                ),
            });
        }
    }
    if r.entropy_first > 0.0 && r.entropy_last < r.entropy_first * DIVERSITY_COLLAPSE_RATIO {
        out.push(Warning {
            code: "diversity-collapse".to_string(),
            message: format!(
                "population entropy collapsed from {:.3} to {:.3} bits (ratio below {})",
                r.entropy_first, r.entropy_last, DIVERSITY_COLLAPSE_RATIO
            ),
        });
    }
    for &(start, len) in &r.stagnation_windows {
        out.push(Warning {
            code: "stagnation".to_string(),
            message: format!(
                "no best-so-far improvement for {len} rounds starting at round {start}"
            ),
        });
    }
    out
}

fn jaccard_distance(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    use std::collections::BTreeSet;
    let sa: BTreeSet<u32> = a.iter().map(|(i, _)| *i).collect();
    let sb: BTreeSet<u32> = b.iter().map(|(i, _)| *i).collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    1.0 - inter as f64 / union as f64
}

fn l1_distance(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    use std::collections::BTreeMap;
    let mut m: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    for (i, v) in a {
        m.entry(*i).or_insert((0.0, 0.0)).0 = *v;
    }
    for (i, v) in b {
        m.entry(*i).or_insert((0.0, 0.0)).1 = *v;
    }
    m.values().map(|(x, y)| (x - y).abs()).sum()
}

impl InsightReport {
    /// Builds the full deterministic `insight.json` document. `log` must
    /// be the same log this report was computed from.
    pub fn to_json(&self, log: &SearchLog) -> Json {
        let num = Json::Num;
        let opt = |x: Option<f64>| x.map_or(Json::Null, Json::Num);
        let meta = Json::Obj(vec![
            ("schema".into(), Json::Str("heron-insight-v1".into())),
            ("workload".into(), Json::Str(log.workload.clone())),
            ("dla".into(), Json::Str(log.dla.clone())),
            ("seed".into(), num(log.seed as f64)),
            ("rounds".into(), num(self.rounds as f64)),
            ("trials".into(), num(f64::from(self.trials))),
        ]);
        let convergence = Json::Obj(vec![
            ("final_best_gflops".into(), num(self.final_best)),
            (
                "convergence_round".into(),
                self.convergence_round
                    .map_or(Json::Null, |r| num(f64::from(r))),
            ),
            (
                "regret".into(),
                Json::Arr(self.regret.iter().map(|&r| num(r)).collect()),
            ),
            (
                "stagnation_windows".into(),
                Json::Arr(
                    self.stagnation_windows
                        .iter()
                        .map(|&(start, len)| {
                            Json::Obj(vec![
                                ("start".into(), num(f64::from(start))),
                                ("len".into(), num(f64::from(len))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("stalled_rounds".into(), num(f64::from(self.stalled_rounds))),
        ]);
        let coverage = Json::Arr(
            log.vars
                .iter()
                .map(|v| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(v.name.clone())),
                        ("domain_size".into(), num(v.domain_size as f64)),
                        ("seen".into(), num(v.seen.len() as f64)),
                        ("coverage".into(), num(v.coverage())),
                    ])
                })
                .collect(),
        );
        let search = Json::Obj(vec![
            ("entropy_first_bits".into(), num(self.entropy_first)),
            ("entropy_last_bits".into(), num(self.entropy_last)),
            ("entropy_min_bits".into(), num(self.entropy_min)),
            ("diversity_first".into(), num(self.diversity_first)),
            ("diversity_last".into(), num(self.diversity_last)),
            ("explore_fraction".into(), num(self.explore_fraction)),
            ("coverage".into(), coverage),
        ]);
        let refits = Json::Arr(
            log.refits
                .iter()
                .map(|f| {
                    Json::Obj(vec![
                        ("round".into(), num(f64::from(f.round))),
                        ("samples".into(), num(f64::from(f.samples))),
                        ("train_rank_accuracy".into(), num(f.train_rank_accuracy)),
                        ("train_spearman".into(), num(f.train_spearman)),
                        (
                            "top_importance".into(),
                            Json::Arr(
                                f.top_importance
                                    .iter()
                                    .map(|&(idx, imp)| {
                                        Json::Obj(vec![
                                            ("feature".into(), num(f64::from(idx))),
                                            ("importance".into(), num(imp)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let drift = Json::Arr(
            self.importance_drift
                .iter()
                .map(|d| {
                    Json::Obj(vec![
                        ("round".into(), num(f64::from(d.round))),
                        ("jaccard".into(), num(d.jaccard)),
                        ("l1".into(), num(d.l1)),
                    ])
                })
                .collect(),
        );
        let model = Json::Obj(vec![
            ("refits".into(), num(log.refits.len() as f64)),
            (
                "batch_rank_accuracy_mean".into(),
                opt(self.batch_accuracy_mean),
            ),
            (
                "batch_rank_accuracy_min".into(),
                opt(self.batch_accuracy_min),
            ),
            ("batch_spearman_mean".into(), opt(self.batch_spearman_mean)),
            ("batch_spearman_min".into(), opt(self.batch_spearman_min)),
            (
                "importance_churn_mean".into(),
                opt(self.importance_churn_mean),
            ),
            ("importance_drift".into(), drift),
            ("refit_history".into(), refits),
        ]);
        let constraints = Json::Obj(vec![
            (
                "repaired_offspring".into(),
                num(self.repaired_offspring as f64),
            ),
            (
                "relaxed_constraints".into(),
                num(self.relaxed_constraints as f64),
            ),
            ("fallback_samples".into(), num(self.fallback_samples as f64)),
            ("deadline_hits".into(), num(self.deadline_hits as f64)),
            ("solver_attempts".into(), num(self.solver_attempts as f64)),
            (
                "solver_propagations".into(),
                num(self.solver_propagations as f64),
            ),
            ("solver_wipeouts".into(), num(self.solver_wipeouts as f64)),
            ("solver_max_trail".into(), num(self.solver_max_trail as f64)),
            (
                "solver_incremental".into(),
                num(self.solver_incremental as f64),
            ),
        ]);
        let rounds = Json::Arr(log.rounds.iter().map(round_json).collect());
        let warnings = Json::Arr(
            self.warnings
                .iter()
                .map(|w| {
                    Json::Obj(vec![
                        ("code".into(), Json::Str(w.code.clone())),
                        ("message".into(), Json::Str(w.message.clone())),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("meta".into(), meta),
            ("convergence".into(), convergence),
            ("search".into(), search),
            ("model".into(), model),
            ("constraints".into(), constraints),
            ("rounds".into(), rounds),
            ("warnings".into(), warnings),
        ])
    }

    /// Renders the human-readable text report.
    pub fn render_text(&self, log: &SearchLog) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "search-health report — {} on {} (seed {})\n",
            log.workload, log.dla, log.seed
        ));
        s.push_str(&format!(
            "  rounds {} · trials {} · best {:.2} GFLOPS\n",
            self.rounds, self.trials, self.final_best
        ));
        match self.convergence_round {
            Some(r) => s.push_str(&format!(
                "  converged (within {:.0}% of final best) at round {r}\n",
                CONVERGENCE_TOLERANCE * 100.0
            )),
            None => s.push_str("  never converged within tolerance\n"),
        }
        s.push_str(&format!(
            "  entropy {:.3} → {:.3} bits (min {:.3}) · diversity {:.2} → {:.2}\n",
            self.entropy_first,
            self.entropy_last,
            self.entropy_min,
            self.diversity_first,
            self.diversity_last
        ));
        s.push_str(&format!(
            "  explore fraction {:.3} · stalled rounds {}\n",
            self.explore_fraction, self.stalled_rounds
        ));
        if let (Some(acc), Some(rho)) = (self.batch_accuracy_mean, self.batch_spearman_mean) {
            s.push_str(&format!(
                "  model: batch rank-accuracy mean {acc:.3} (min {:.3}) · Spearman ρ mean {rho:.3}\n",
                self.batch_accuracy_min.unwrap_or(f64::NAN)
            ));
        } else {
            s.push_str("  model: no fitted-model batches recorded\n");
        }
        if let Some(churn) = self.importance_churn_mean {
            s.push_str(&format!(
                "  importance churn (mean Jaccard distance) {churn:.3} over {} refit pairs\n",
                self.importance_drift.len()
            ));
        }
        s.push_str(&format!(
            "  constraint pressure: {} repaired offspring · {} relaxed constraints · {} fallback samples · {} deadline hits\n",
            self.repaired_offspring,
            self.relaxed_constraints,
            self.fallback_samples,
            self.deadline_hits
        ));
        s.push_str(&format!(
            "  solver: {} attempts · {} propagations · {} wipeouts · max trail {} · {} incremental re-solves\n",
            self.solver_attempts,
            self.solver_propagations,
            self.solver_wipeouts,
            self.solver_max_trail,
            self.solver_incremental
        ));
        let shallow = log
            .vars
            .iter()
            .filter(|v| v.domain_size > 1 && v.coverage() < 0.5)
            .count();
        s.push_str(&format!(
            "  coverage: {}/{} tunables under 50% of domain explored\n",
            shallow,
            log.vars.len()
        ));
        if self.warnings.is_empty() {
            s.push_str("  warnings: none\n");
        } else {
            s.push_str("  warnings:\n");
            for w in &self.warnings {
                s.push_str(&format!("    [{}] {}\n", w.code, w.message));
            }
        }
        s
    }
}

fn round_json(r: &crate::RoundRecord) -> Json {
    let num = Json::Num;
    let opt = |x: Option<f64>| x.map_or(Json::Null, Json::Num);
    Json::Obj(vec![
        ("round".into(), num(f64::from(r.round))),
        ("trials_done".into(), num(f64::from(r.trials_done))),
        ("best_gflops".into(), num(r.best_gflops)),
        ("batch_best_gflops".into(), num(r.batch_best_gflops)),
        ("batch_mean_gflops".into(), num(r.batch_mean_gflops)),
        ("batch_size".into(), num(f64::from(r.batch_size))),
        ("exploit_picks".into(), num(f64::from(r.exploit_picks))),
        ("explore_picks".into(), num(f64::from(r.explore_picks))),
        ("population".into(), num(f64::from(r.population))),
        (
            "distinct_solutions".into(),
            num(f64::from(r.distinct_solutions)),
        ),
        ("diversity".into(), num(r.diversity)),
        ("entropy_bits".into(), num(r.entropy_bits)),
        ("batch_rank_accuracy".into(), opt(r.batch_rank_accuracy)),
        ("batch_spearman".into(), opt(r.batch_spearman)),
        (
            "repaired_offspring".into(),
            num(f64::from(r.repaired_offspring)),
        ),
        (
            "relaxed_constraints".into(),
            num(f64::from(r.relaxed_constraints)),
        ),
        (
            "fallback_samples".into(),
            num(f64::from(r.fallback_samples)),
        ),
        ("deadline_hits".into(), num(f64::from(r.deadline_hits))),
        ("solver_attempts".into(), num(r.solver_attempts as f64)),
        (
            "solver_propagations".into(),
            num(r.solver_propagations as f64),
        ),
        ("solver_wipeouts".into(), num(r.solver_wipeouts as f64)),
        ("solver_max_trail".into(), num(r.solver_max_trail as f64)),
        (
            "solver_incremental".into(),
            num(r.solver_incremental as f64),
        ),
        ("stalled".into(), Json::Bool(r.stalled)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RefitRecord, RoundRecord};

    fn log_with_curve(curve: &[f64]) -> SearchLog {
        let mut log = SearchLog::new("w", "d", 1, 4);
        for (i, &b) in curve.iter().enumerate() {
            let mut r = RoundRecord::new(i as u32);
            r.best_gflops = b;
            r.trials_done = (i as u32 + 1) * 4;
            r.batch_size = 4;
            r.population = 8;
            r.distinct_solutions = 8;
            r.diversity = 1.0;
            r.entropy_bits = 2.0 - i as f64 * 0.1;
            log.push_round(r);
        }
        log
    }

    #[test]
    fn convergence_and_regret() {
        let log = log_with_curve(&[10.0, 50.0, 99.5, 100.0]);
        let rep = analyze(&log);
        assert_eq!(rep.convergence_round, Some(2)); // 99.5 ≥ 0.99·100
        assert_eq!(rep.regret, vec![90.0, 50.0, 0.5, 0.0]);
        assert_eq!(rep.final_best, 100.0);
        assert!(rep.stagnation_windows.is_empty());
    }

    #[test]
    fn stagnation_windows_detected() {
        let mut curve = vec![10.0, 20.0];
        curve.extend(std::iter::repeat_n(20.0, 6)); // 6 flat rounds
        curve.push(30.0);
        let rep = analyze(&log_with_curve(&curve));
        assert_eq!(rep.stagnation_windows, vec![(2, 6)]);
        assert!(rep
            .warnings
            .iter()
            .any(|w| w.code == "stagnation" && w.message.contains("6 rounds")));
    }

    #[test]
    fn miscalibration_and_churn_warnings() {
        let mut log = log_with_curve(&[10.0, 11.0, 12.0, 13.0]);
        for r in log.rounds.iter_mut() {
            r.batch_rank_accuracy = Some(0.5);
            r.batch_spearman = Some(0.0);
        }
        // Four refits with disjoint top-k sets => Jaccard distance 1.
        for (i, feats) in [[0u32, 1], [2, 3], [4, 5], [6, 7]].iter().enumerate() {
            log.push_refit(RefitRecord {
                round: i as u32,
                samples: 8,
                train_rank_accuracy: 0.6,
                train_spearman: 0.5,
                top_importance: feats.iter().map(|&f| (f, 0.5)).collect(),
            });
        }
        let rep = analyze(&log);
        assert!(rep.warnings.iter().any(|w| w.code == "model-miscalibrated"));
        assert!(rep.warnings.iter().any(|w| w.code == "importance-churn"));
        assert_eq!(rep.importance_churn_mean, Some(1.0));
        assert_eq!(rep.importance_drift.len(), 3);
        assert!((rep.importance_drift[0].l1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_collapse_warning() {
        let mut log = log_with_curve(&[1.0, 2.0, 3.0]);
        log.rounds[0].entropy_bits = 2.0;
        log.rounds[2].entropy_bits = 0.1;
        let rep = analyze(&log);
        assert!(rep.warnings.iter().any(|w| w.code == "diversity-collapse"));
    }

    #[test]
    fn json_is_deterministic_and_sectioned() {
        let log = log_with_curve(&[10.0, 20.0, 30.0]);
        let rep = analyze(&log);
        let a = rep.to_json(&log).render_pretty();
        let b = analyze(&log).to_json(&log).render_pretty();
        assert_eq!(a, b);
        for section in [
            "\"meta\"",
            "\"convergence\"",
            "\"search\"",
            "\"model\"",
            "\"constraints\"",
            "\"rounds\"",
            "\"warnings\"",
            "\"regret\"",
            "\"explore_fraction\"",
        ] {
            assert!(a.contains(section), "missing {section}");
        }
        let text = rep.render_text(&log);
        assert!(text.contains("search-health report"));
        assert!(text.contains("constraint pressure"));
    }
}
