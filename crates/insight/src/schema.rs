//! Structural schema validators for the two insight artifacts.
//!
//! These are what `scripts/verify.sh` and `bench_compare
//! --check-insight` run against freshly produced documents: they check
//! member presence and types, array element shapes, and cross-field
//! invariants (regret length = rounds, coverage in `[0,1]`, …) without
//! pulling in any external JSON-schema machinery.

use heron_trace::Json;

fn want_num(obj: &Json, key: &str, errs: &mut Vec<String>, ctx: &str) -> Option<f64> {
    match obj.get(key) {
        Some(Json::Num(n)) => Some(*n),
        Some(_) => {
            errs.push(format!("{ctx}: `{key}` is not a number"));
            None
        }
        None => {
            errs.push(format!("{ctx}: missing `{key}`"));
            None
        }
    }
}

fn want_num_or_null(obj: &Json, key: &str, errs: &mut Vec<String>, ctx: &str) {
    match obj.get(key) {
        Some(Json::Num(_)) | Some(Json::Null) => {}
        Some(_) => errs.push(format!("{ctx}: `{key}` is not a number or null")),
        None => errs.push(format!("{ctx}: missing `{key}`")),
    }
}

fn want_str(obj: &Json, key: &str, errs: &mut Vec<String>, ctx: &str) -> Option<String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => {
            errs.push(format!("{ctx}: `{key}` is not a string"));
            None
        }
        None => {
            errs.push(format!("{ctx}: missing `{key}`"));
            None
        }
    }
}

fn want_arr<'a>(obj: &'a Json, key: &str, errs: &mut Vec<String>, ctx: &str) -> &'a [Json] {
    match obj.get(key) {
        Some(Json::Arr(items)) => items,
        Some(_) => {
            errs.push(format!("{ctx}: `{key}` is not an array"));
            &[]
        }
        None => {
            errs.push(format!("{ctx}: missing `{key}`"));
            &[]
        }
    }
}

fn want_obj<'a>(doc: &'a Json, key: &str, errs: &mut Vec<String>) -> Option<&'a Json> {
    match doc.get(key) {
        Some(obj @ Json::Obj(_)) => Some(obj),
        Some(_) => {
            errs.push(format!("`{key}` is not an object"));
            None
        }
        None => {
            errs.push(format!("missing section `{key}`"));
            None
        }
    }
}

/// Validates an `insight.json` document against the
/// `heron-insight-v1` schema.
///
/// # Errors
/// Every structural problem found, one message each.
pub fn validate_insight(doc: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let mut rounds_declared = None;

    if let Some(meta) = want_obj(doc, "meta", &mut errs) {
        match want_str(meta, "schema", &mut errs, "meta") {
            Some(s) if s == "heron-insight-v1" => {}
            Some(s) => errs.push(format!(
                "meta: schema is `{s}`, expected `heron-insight-v1`"
            )),
            None => {}
        }
        want_str(meta, "workload", &mut errs, "meta");
        want_str(meta, "dla", &mut errs, "meta");
        want_num(meta, "seed", &mut errs, "meta");
        rounds_declared = want_num(meta, "rounds", &mut errs, "meta");
        want_num(meta, "trials", &mut errs, "meta");
    }

    if let Some(conv) = want_obj(doc, "convergence", &mut errs) {
        want_num(conv, "final_best_gflops", &mut errs, "convergence");
        want_num_or_null(conv, "convergence_round", &mut errs, "convergence");
        let regret = want_arr(conv, "regret", &mut errs, "convergence");
        if let Some(n) = rounds_declared {
            if regret.len() as f64 != n {
                errs.push(format!(
                    "convergence: regret has {} entries but meta.rounds is {n}",
                    regret.len()
                ));
            }
        }
        for (i, r) in regret.iter().enumerate() {
            match r.as_f64() {
                Some(v) if v >= -1e-9 => {}
                Some(v) => errs.push(format!("convergence: regret[{i}] = {v} is negative")),
                None => errs.push(format!("convergence: regret[{i}] is not a number")),
            }
        }
        for (i, w) in want_arr(conv, "stagnation_windows", &mut errs, "convergence")
            .iter()
            .enumerate()
        {
            let ctx = format!("stagnation_windows[{i}]");
            want_num(w, "start", &mut errs, &ctx);
            want_num(w, "len", &mut errs, &ctx);
        }
    }

    if let Some(search) = want_obj(doc, "search", &mut errs) {
        for key in [
            "entropy_first_bits",
            "entropy_last_bits",
            "entropy_min_bits",
            "diversity_first",
            "diversity_last",
            "explore_fraction",
        ] {
            want_num(search, key, &mut errs, "search");
        }
        for (i, v) in want_arr(search, "coverage", &mut errs, "search")
            .iter()
            .enumerate()
        {
            let ctx = format!("coverage[{i}]");
            want_str(v, "name", &mut errs, &ctx);
            want_num(v, "domain_size", &mut errs, &ctx);
            want_num(v, "seen", &mut errs, &ctx);
            if let Some(c) = want_num(v, "coverage", &mut errs, &ctx) {
                if !(0.0..=1.0).contains(&c) {
                    errs.push(format!("{ctx}: coverage {c} outside [0, 1]"));
                }
            }
        }
    }

    if let Some(model) = want_obj(doc, "model", &mut errs) {
        want_num(model, "refits", &mut errs, "model");
        for key in [
            "batch_rank_accuracy_mean",
            "batch_rank_accuracy_min",
            "batch_spearman_mean",
            "batch_spearman_min",
            "importance_churn_mean",
        ] {
            want_num_or_null(model, key, &mut errs, "model");
        }
        for (i, d) in want_arr(model, "importance_drift", &mut errs, "model")
            .iter()
            .enumerate()
        {
            let ctx = format!("importance_drift[{i}]");
            want_num(d, "round", &mut errs, &ctx);
            want_num(d, "jaccard", &mut errs, &ctx);
            want_num(d, "l1", &mut errs, &ctx);
        }
        for (i, f) in want_arr(model, "refit_history", &mut errs, "model")
            .iter()
            .enumerate()
        {
            let ctx = format!("refit_history[{i}]");
            want_num(f, "round", &mut errs, &ctx);
            want_num(f, "samples", &mut errs, &ctx);
            want_num(f, "train_rank_accuracy", &mut errs, &ctx);
            want_num(f, "train_spearman", &mut errs, &ctx);
            for (j, t) in want_arr(f, "top_importance", &mut errs, &ctx)
                .iter()
                .enumerate()
            {
                let tctx = format!("{ctx}.top_importance[{j}]");
                want_num(t, "feature", &mut errs, &tctx);
                want_num(t, "importance", &mut errs, &tctx);
            }
        }
    }

    if let Some(cons) = want_obj(doc, "constraints", &mut errs) {
        for key in [
            "repaired_offspring",
            "relaxed_constraints",
            "fallback_samples",
            "deadline_hits",
            "solver_attempts",
            "solver_propagations",
            "solver_wipeouts",
            "solver_max_trail",
            "solver_incremental",
        ] {
            want_num(cons, key, &mut errs, "constraints");
        }
    }

    let rounds = want_arr(doc, "rounds", &mut errs, "document");
    if let Some(n) = rounds_declared {
        if rounds.len() as f64 != n {
            errs.push(format!(
                "document: rounds has {} entries but meta.rounds is {n}",
                rounds.len()
            ));
        }
    }
    for (i, r) in rounds.iter().enumerate() {
        let ctx = format!("rounds[{i}]");
        for key in [
            "round",
            "trials_done",
            "best_gflops",
            "batch_best_gflops",
            "batch_mean_gflops",
            "batch_size",
            "exploit_picks",
            "explore_picks",
            "population",
            "distinct_solutions",
            "diversity",
            "entropy_bits",
            "repaired_offspring",
            "relaxed_constraints",
            "fallback_samples",
            "deadline_hits",
            "solver_attempts",
            "solver_propagations",
            "solver_wipeouts",
            "solver_max_trail",
            "solver_incremental",
        ] {
            want_num(r, key, &mut errs, &ctx);
        }
        want_num_or_null(r, "batch_rank_accuracy", &mut errs, &ctx);
        want_num_or_null(r, "batch_spearman", &mut errs, &ctx);
        match r.get("stalled") {
            Some(Json::Bool(_)) => {}
            _ => errs.push(format!("{ctx}: missing boolean `stalled`")),
        }
        if r.get("round").and_then(Json::as_u64) != Some(i as u64) {
            errs.push(format!("{ctx}: round index is not {i}"));
        }
    }

    for (i, w) in want_arr(doc, "warnings", &mut errs, "document")
        .iter()
        .enumerate()
    {
        let ctx = format!("warnings[{i}]");
        want_str(w, "code", &mut errs, &ctx);
        want_str(w, "message", &mut errs, &ctx);
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Validates a `BENCH_heron.json` document against the
/// `heron-bench-v1` schema.
///
/// # Errors
/// Every structural problem found, one message each.
pub fn validate_bench(doc: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    match want_str(doc, "schema", &mut errs, "document") {
        Some(s) if s == "heron-bench-v1" => {}
        Some(s) => errs.push(format!("schema is `{s}`, expected `heron-bench-v1`")),
        None => {}
    }
    want_num(doc, "seed", &mut errs, "document");
    want_num(doc, "trials", &mut errs, "document");
    want_num(doc, "geomean_gflops", &mut errs, "document");
    let workloads = want_arr(doc, "workloads", &mut errs, "document");
    if workloads.is_empty() && errs.is_empty() {
        errs.push("workloads array is empty".to_string());
    }
    let mut prev_name: Option<String> = None;
    for (i, w) in workloads.iter().enumerate() {
        let ctx = format!("workloads[{i}]");
        if let Some(name) = want_str(w, "name", &mut errs, &ctx) {
            if let Some(prev) = &prev_name {
                if *prev >= name {
                    errs.push(format!("{ctx}: workloads not sorted by name"));
                }
            }
            prev_name = Some(name);
        }
        for key in [
            "best_gflops",
            "best_latency_us",
            "trials",
            "valid_trials",
            "rounds",
            "hw_measure_s",
            "randsat_solutions",
            "randsat_propagations",
            "sol_per_kprop",
            "model_fits",
            "final_rank_accuracy",
        ] {
            if let Some(v) = want_num(w, key, &mut errs, &ctx) {
                if !v.is_finite() || v < 0.0 {
                    errs.push(format!("{ctx}: `{key}` = {v} is not a finite non-negative"));
                }
            }
        }
        // Added with the trail-based solver; absent from pre-trail
        // baselines, which must stay comparable (`BenchReport::from_json`
        // defaults them to 0). Present ⇒ must be well-formed.
        for key in ["randsat_max_trail", "incremental_hits"] {
            if let Some(v) = w.get(key) {
                match v.as_f64() {
                    Some(n) if n.is_finite() && n >= 0.0 => {}
                    _ => errs.push(format!("{ctx}: `{key}` is not a finite non-negative")),
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, bench::WorkloadBench, BenchReport, RoundRecord, SearchLog};

    #[test]
    fn produced_insight_json_validates() {
        let mut log = SearchLog::new("w", "d", 5, 4);
        log.set_vars(vec![("a".to_string(), 4)]);
        log.observe_assignment(&[1]);
        for i in 0..4u32 {
            let mut r = RoundRecord::new(i);
            r.best_gflops = 10.0 + f64::from(i);
            r.trials_done = (i + 1) * 2;
            r.batch_size = 2;
            r.population = 4;
            r.distinct_solutions = 3;
            r.diversity = 0.75;
            r.entropy_bits = 1.2;
            log.push_round(r);
        }
        let doc = analyze(&log).to_json(&log);
        validate_insight(&doc).expect("valid");
        // Reparsed text also validates (what verify.sh does).
        let reparsed = heron_trace::json::parse(&doc.render_pretty()).unwrap();
        validate_insight(&reparsed).expect("valid after roundtrip");
    }

    #[test]
    fn produced_bench_json_validates_and_mutations_fail() {
        let mut r = BenchReport::new(1, 8);
        r.push(WorkloadBench {
            name: "g".into(),
            best_gflops: 1.0,
            best_latency_us: 2.0,
            trials: 8,
            valid_trials: 8,
            rounds: 2,
            hw_measure_s: 0.1,
            randsat_solutions: 10,
            randsat_propagations: 100,
            sol_per_kprop: 100.0,
            randsat_max_trail: 6,
            incremental_hits: 3,
            model_fits: 1,
            final_rank_accuracy: 0.8,
        });
        let doc = r.to_json();
        validate_bench(&doc).expect("valid");

        let broken = heron_trace::json::parse(
            &doc.render()
                .replace("\"best_gflops\":1", "\"best_gflops\":\"x\""),
        )
        .unwrap();
        let errs = validate_bench(&broken).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("best_gflops")));

        let wrong = heron_trace::json::parse(r#"{"schema":"heron-bench-v1"}"#).unwrap();
        assert!(validate_bench(&wrong).is_err());
    }

    #[test]
    fn insight_mutations_fail() {
        let mut log = SearchLog::new("w", "d", 5, 4);
        let mut rec = RoundRecord::new(0);
        rec.batch_size = 1;
        log.push_round(rec);
        let doc = analyze(&log).to_json(&log);
        let text = doc.render();
        for (from, to) in [
            ("\"schema\":\"heron-insight-v1\"", "\"schema\":\"v0\""),
            ("\"regret\":[0]", "\"regret\":[]"),
            ("\"stalled\":false", "\"stalled\":0"),
        ] {
            let mutated = text.replace(from, to);
            assert_ne!(mutated, text, "mutation `{from}` did not apply");
            let parsed = heron_trace::json::parse(&mutated).unwrap();
            assert!(validate_insight(&parsed).is_err(), "accepted `{to}`");
        }
    }
}
