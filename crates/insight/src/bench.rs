//! The perf-trajectory layer: the canonical `BENCH_heron.json` snapshot
//! ([`BenchReport`]) and the [`compare`] regression gate.
//!
//! Everything stored in the snapshot is **deterministic** for a fixed
//! seed: scores come from the simulated measurer, solver throughput
//! from RandSAT's own counters, and wall-clock from the *simulated*
//! measurement clock (`hw_measure_s`). Host wall-clock times are
//! intentionally excluded — they would make the committed baseline
//! machine-dependent and the gate flaky (DESIGN.md §7).

use heron_trace::Json;

/// One workload's performance snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadBench {
    /// Workload (space) name.
    pub name: String,
    /// Best achieved score.
    pub best_gflops: f64,
    /// Latency of the best schedule in microseconds.
    pub best_latency_us: f64,
    /// Measured trials attempted / that produced a valid score.
    pub trials: u32,
    /// See [`WorkloadBench::trials`].
    pub valid_trials: u32,
    /// Tuning rounds executed.
    pub rounds: u32,
    /// Simulated hardware measurement seconds consumed.
    pub hw_measure_s: f64,
    /// RandSAT solutions produced across the run.
    pub randsat_solutions: u64,
    /// RandSAT constraint propagations across the run.
    pub randsat_propagations: u64,
    /// Solver throughput: solutions per 1000 propagations.
    pub sol_per_kprop: f64,
    /// Deepest trail (save-on-write undo log) any solve reached.
    pub randsat_max_trail: u64,
    /// Offspring solves answered from the session's cached root
    /// fixpoint instead of a from-scratch `run_all`.
    pub incremental_hits: u64,
    /// Cost model refits.
    pub model_fits: u32,
    /// Final model pairwise rank accuracy on its training set.
    pub final_rank_accuracy: f64,
}

/// The canonical `BENCH_heron.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Tuning seed the snapshot was taken with.
    pub seed: u64,
    /// Trials per workload the snapshot was taken with.
    pub trials: u32,
    /// Per-workload snapshots, name-ascending.
    pub workloads: Vec<WorkloadBench>,
}

impl BenchReport {
    /// A new empty report.
    pub fn new(seed: u64, trials: u32) -> Self {
        BenchReport {
            seed,
            trials,
            workloads: Vec::new(),
        }
    }

    /// Adds a workload snapshot, keeping the list name-sorted.
    pub fn push(&mut self, w: WorkloadBench) {
        self.workloads.push(w);
        self.workloads.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Geometric mean of per-workload best scores (0 when empty or any
    /// score is non-positive).
    pub fn geomean_gflops(&self) -> f64 {
        if self.workloads.is_empty() || self.workloads.iter().any(|w| w.best_gflops <= 0.0) {
            return 0.0;
        }
        let log_sum: f64 = self.workloads.iter().map(|w| w.best_gflops.ln()).sum();
        (log_sum / self.workloads.len() as f64).exp()
    }

    /// Serializes the report as the canonical JSON document.
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        Json::Obj(vec![
            ("schema".into(), Json::Str("heron-bench-v1".into())),
            ("seed".into(), num(self.seed as f64)),
            ("trials".into(), num(f64::from(self.trials))),
            ("geomean_gflops".into(), num(self.geomean_gflops())),
            (
                "workloads".into(),
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(w.name.clone())),
                                ("best_gflops".into(), num(w.best_gflops)),
                                ("best_latency_us".into(), num(w.best_latency_us)),
                                ("trials".into(), num(f64::from(w.trials))),
                                ("valid_trials".into(), num(f64::from(w.valid_trials))),
                                ("rounds".into(), num(f64::from(w.rounds))),
                                ("hw_measure_s".into(), num(w.hw_measure_s)),
                                ("randsat_solutions".into(), num(w.randsat_solutions as f64)),
                                (
                                    "randsat_propagations".into(),
                                    num(w.randsat_propagations as f64),
                                ),
                                ("sol_per_kprop".into(), num(w.sol_per_kprop)),
                                ("randsat_max_trail".into(), num(w.randsat_max_trail as f64)),
                                ("incremental_hits".into(), num(w.incremental_hits as f64)),
                                ("model_fits".into(), num(f64::from(w.model_fits))),
                                ("final_rank_accuracy".into(), num(w.final_rank_accuracy)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    /// A message naming the missing/invalid member *and* the workload
    /// (index and, when present, name) it was missing from — a gate
    /// that refuses a baseline must say exactly what is wrong with it.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        if doc.get("schema").and_then(Json::as_str) != Some("heron-bench-v1") {
            return Err("not a heron-bench-v1 document".to_string());
        }
        let f = |obj: &Json, key: &str, ctx: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{ctx}: missing numeric member `{key}`"))
        };
        let mut report = BenchReport::new(
            f(doc, "seed", "document")? as u64,
            f(doc, "trials", "document")? as u32,
        );
        let workloads = doc
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| "document: missing `workloads` array".to_string())?;
        for (i, w) in workloads.iter().enumerate() {
            let ctx = match w.get("name").and_then(Json::as_str) {
                Some(name) => format!("workloads[{i}] (`{name}`)"),
                None => format!("workloads[{i}]"),
            };
            report.push(WorkloadBench {
                name: w
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{ctx}: missing string member `name`"))?
                    .to_string(),
                best_gflops: f(w, "best_gflops", &ctx)?,
                best_latency_us: f(w, "best_latency_us", &ctx)?,
                trials: f(w, "trials", &ctx)? as u32,
                valid_trials: f(w, "valid_trials", &ctx)? as u32,
                rounds: f(w, "rounds", &ctx)? as u32,
                hw_measure_s: f(w, "hw_measure_s", &ctx)?,
                randsat_solutions: f(w, "randsat_solutions", &ctx)? as u64,
                randsat_propagations: f(w, "randsat_propagations", &ctx)? as u64,
                sol_per_kprop: f(w, "sol_per_kprop", &ctx)?,
                // Optional with a 0 default so pre-trail baselines
                // (no such members) still parse for comparison.
                randsat_max_trail: w
                    .get("randsat_max_trail")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                incremental_hits: w
                    .get("incremental_hits")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                model_fits: f(w, "model_fits", &ctx)? as u32,
                final_rank_accuracy: f(w, "final_rank_accuracy", &ctx)?,
            });
        }
        Ok(report)
    }
}

/// Deterministic regression-gate thresholds (fractions, not percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Max tolerated relative drop in per-workload `best_gflops` and in
    /// the geomean.
    pub max_perf_drop: f64,
    /// Max tolerated relative rise in per-workload `best_latency_us`.
    pub max_latency_rise: f64,
    /// Max tolerated relative drop in RandSAT `sol_per_kprop`.
    pub max_throughput_drop: f64,
    /// Max tolerated relative drop in `final_rank_accuracy`.
    pub max_accuracy_drop: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            max_perf_drop: 0.10,
            max_latency_rise: 0.10,
            max_throughput_drop: 0.25,
            max_accuracy_drop: 0.15,
        }
    }
}

fn rel_drop(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (base - new) / base
    }
}

/// Compares a new snapshot against a baseline. Returns the list of
/// regression messages — empty means the gate passes. Comparing a
/// report against itself always passes.
pub fn compare(base: &BenchReport, new: &BenchReport, cfg: &CompareConfig) -> Vec<String> {
    let mut regressions = Vec::new();
    for b in &base.workloads {
        let Some(n) = new.workloads.iter().find(|w| w.name == b.name) else {
            regressions.push(format!("workload `{}` missing from new snapshot", b.name));
            continue;
        };
        let perf_drop = rel_drop(b.best_gflops, n.best_gflops);
        if perf_drop > cfg.max_perf_drop {
            regressions.push(format!(
                "`{}` best_gflops dropped {:.1}% ({:.2} → {:.2}, limit {:.0}%)",
                b.name,
                perf_drop * 100.0,
                b.best_gflops,
                n.best_gflops,
                cfg.max_perf_drop * 100.0
            ));
        }
        let lat_rise = rel_drop(n.best_latency_us, b.best_latency_us);
        if lat_rise > cfg.max_latency_rise {
            regressions.push(format!(
                "`{}` best_latency_us rose {:.1}% ({:.2} → {:.2}, limit {:.0}%)",
                b.name,
                lat_rise * 100.0,
                b.best_latency_us,
                n.best_latency_us,
                cfg.max_latency_rise * 100.0
            ));
        }
        let thr_drop = rel_drop(b.sol_per_kprop, n.sol_per_kprop);
        if thr_drop > cfg.max_throughput_drop {
            regressions.push(format!(
                "`{}` RandSAT sol_per_kprop dropped {:.1}% ({:.3} → {:.3}, limit {:.0}%)",
                b.name,
                thr_drop * 100.0,
                b.sol_per_kprop,
                n.sol_per_kprop,
                cfg.max_throughput_drop * 100.0
            ));
        }
        let acc_drop = rel_drop(b.final_rank_accuracy, n.final_rank_accuracy);
        if acc_drop > cfg.max_accuracy_drop {
            regressions.push(format!(
                "`{}` final_rank_accuracy dropped {:.1}% ({:.3} → {:.3}, limit {:.0}%)",
                b.name,
                acc_drop * 100.0,
                b.final_rank_accuracy,
                n.final_rank_accuracy,
                cfg.max_accuracy_drop * 100.0
            ));
        }
    }
    let geo_drop = rel_drop(base.geomean_gflops(), new.geomean_gflops());
    if geo_drop > cfg.max_perf_drop {
        regressions.push(format!(
            "geomean_gflops dropped {:.1}% ({:.2} → {:.2}, limit {:.0}%)",
            geo_drop * 100.0,
            base.geomean_gflops(),
            new.geomean_gflops(),
            cfg.max_perf_drop * 100.0
        ));
    }
    regressions
}

/// The schema identifier stamped into every trajectory-history line.
pub const TRAJECTORY_SCHEMA: &str = "heron-bench-traj-v1";

/// Renders one `results/bench_trajectory.jsonl` history line for a
/// snapshot: compact single-line JSON with the run parameters, the
/// geomean, and the per-workload best scores. Deliberately a *summary*
/// — the full per-workload detail lives in `BENCH_heron.json`; the
/// history file answers "how did the trajectory move over time" with
/// one greppable line per committed snapshot.
pub fn trajectory_line(report: &BenchReport) -> String {
    let workloads = report
        .workloads
        .iter()
        .map(|w| {
            Json::Obj(vec![
                ("name".into(), Json::Str(w.name.clone())),
                ("best_gflops".into(), Json::Num(w.best_gflops)),
                ("sol_per_kprop".into(), Json::Num(w.sol_per_kprop)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(TRAJECTORY_SCHEMA.into())),
        ("seed".into(), Json::Num(report.seed as f64)),
        ("trials".into(), Json::Num(f64::from(report.trials))),
        ("geomean_gflops".into(), Json::Num(report.geomean_gflops())),
        ("workloads".into(), Json::Arr(workloads)),
    ])
    .render()
}

/// Validates a trajectory history file: every non-empty line must be a
/// [`TRAJECTORY_SCHEMA`] object with numeric `seed`/`trials`/
/// `geomean_gflops` and a `workloads` array of `{name, best_gflops,
/// sol_per_kprop}` entries. Returns the number of valid lines.
///
/// # Errors
/// A message naming the offending 1-based line and member.
pub fn validate_trajectory(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let no = i + 1;
        let doc = heron_trace::json::parse(line).map_err(|e| format!("line {no}: {e}"))?;
        if doc.get("schema").and_then(Json::as_str) != Some(TRAJECTORY_SCHEMA) {
            return Err(format!("line {no}: not a `{TRAJECTORY_SCHEMA}` object"));
        }
        for key in ["seed", "trials", "geomean_gflops"] {
            if doc.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("line {no}: missing numeric member `{key}`"));
            }
        }
        let workloads = doc
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("line {no}: missing array `workloads`"))?;
        for (k, w) in workloads.iter().enumerate() {
            if w.get("name").and_then(Json::as_str).is_none() {
                return Err(format!("line {no}: workloads[{k}]: missing string `name`"));
            }
            for key in ["best_gflops", "sol_per_kprop"] {
                if w.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!(
                        "line {no}: workloads[{k}]: missing numeric member `{key}`"
                    ));
                }
            }
        }
        lines += 1;
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new(2023, 64);
        r.push(WorkloadBench {
            name: "gemm-512".into(),
            best_gflops: 4000.0,
            best_latency_us: 67.1,
            trials: 64,
            valid_trials: 60,
            rounds: 8,
            hw_measure_s: 1.25,
            randsat_solutions: 900,
            randsat_propagations: 120_000,
            sol_per_kprop: 7.5,
            randsat_max_trail: 12,
            incremental_hits: 30,
            model_fits: 8,
            final_rank_accuracy: 0.91,
        });
        r.push(WorkloadBench {
            name: "conv-64".into(),
            best_gflops: 1000.0,
            best_latency_us: 10.0,
            trials: 64,
            valid_trials: 64,
            rounds: 8,
            hw_measure_s: 0.5,
            randsat_solutions: 500,
            randsat_propagations: 40_000,
            sol_per_kprop: 12.5,
            randsat_max_trail: 9,
            incremental_hits: 22,
            model_fits: 8,
            final_rank_accuracy: 0.88,
        });
        r
    }

    #[test]
    fn json_roundtrip_and_sorted_workloads() {
        let r = sample();
        assert_eq!(r.workloads[0].name, "conv-64");
        let parsed =
            BenchReport::from_json(&heron_trace::json::parse(&r.to_json().render()).unwrap())
                .unwrap();
        assert_eq!(parsed, r);
        assert!((r.geomean_gflops() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn pre_trail_baselines_parse_with_zero_defaults() {
        let r = sample();
        let legacy = r
            .to_json()
            .render()
            .replace(",\"randsat_max_trail\":12", "")
            .replace(",\"randsat_max_trail\":9", "")
            .replace(",\"incremental_hits\":30", "")
            .replace(",\"incremental_hits\":22", "");
        assert!(!legacy.contains("randsat_max_trail"), "strip failed");
        let parsed = BenchReport::from_json(&heron_trace::json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(parsed.workloads[0].randsat_max_trail, 0);
        assert_eq!(parsed.workloads[1].incremental_hits, 0);
        assert_eq!(parsed.workloads[0].sol_per_kprop, 12.5);
    }

    #[test]
    fn missing_required_keys_name_the_workload_and_key() {
        // A baseline so old it predates the solver-throughput counters:
        // the required `sol_per_kprop` is gone from the second workload
        // (name-sorted: `gemm-512`). The diagnostic must say which file
        // member is missing from which workload — not a generic parse
        // error (the file context is the caller's job; see
        // `bench_compare`).
        let legacy = sample().to_json().render().replace(
            ",\"sol_per_kprop\":7.5,\"randsat_max_trail\":12",
            ",\"randsat_max_trail\":12",
        );
        assert!(legacy.contains("sol_per_kprop"), "conv-64 keeps its copy");
        let err = BenchReport::from_json(&heron_trace::json::parse(&legacy).unwrap()).unwrap_err();
        assert_eq!(
            err, "workloads[1] (`gemm-512`): missing numeric member `sol_per_kprop`",
            "diagnostic names workload index, name, and key"
        );

        // A workload with no name still gets located by index.
        let nameless = sample()
            .to_json()
            .render()
            .replace("\"name\":\"conv-64\",", "");
        let err =
            BenchReport::from_json(&heron_trace::json::parse(&nameless).unwrap()).unwrap_err();
        assert_eq!(err, "workloads[0]: missing string member `name`");
    }

    #[test]
    fn self_comparison_passes() {
        let r = sample();
        assert!(compare(&r, &r, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn degradations_are_caught() {
        let base = sample();
        let mut degraded = sample();
        degraded.workloads[0].best_gflops *= 0.8; // conv-64: >10% drop
        degraded.workloads[1].best_latency_us *= 1.5;
        degraded.workloads[1].sol_per_kprop *= 0.5;
        let regs = compare(&base, &degraded, &CompareConfig::default());
        assert!(regs.iter().any(|r| r.contains("best_gflops dropped")));
        assert!(regs.iter().any(|r| r.contains("best_latency_us rose")));
        assert!(regs.iter().any(|r| r.contains("sol_per_kprop dropped")));
        assert!(regs.iter().any(|r| r.contains("geomean_gflops dropped")));

        let mut missing = sample();
        missing.workloads.remove(0);
        let regs = compare(&base, &missing, &CompareConfig::default());
        assert!(regs.iter().any(|r| r.contains("missing from new snapshot")));
    }

    #[test]
    fn improvements_pass() {
        let base = sample();
        let mut better = sample();
        for w in better.workloads.iter_mut() {
            w.best_gflops *= 1.5;
            w.best_latency_us *= 0.5;
            w.sol_per_kprop *= 2.0;
        }
        assert!(compare(&base, &better, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn rejects_wrong_schema() {
        let doc = heron_trace::json::parse(r#"{"schema":"other"}"#).unwrap();
        assert!(BenchReport::from_json(&doc).is_err());
    }

    #[test]
    fn trajectory_lines_roundtrip_and_accumulate() {
        let line = trajectory_line(&sample());
        assert!(line.starts_with(&format!("{{\"schema\":\"{TRAJECTORY_SCHEMA}\"")));
        assert!(!line.contains('\n'), "history lines are single-line JSON");
        let two = format!("{line}\n{line}\n");
        assert_eq!(validate_trajectory(&two), Ok(2));
        assert_eq!(validate_trajectory(""), Ok(0));
    }

    #[test]
    fn trajectory_validation_names_the_bad_line() {
        let good = trajectory_line(&sample());
        let bad = format!("{good}\nnot json\n");
        assert!(validate_trajectory(&bad).unwrap_err().contains("line 2"));
        let wrong = good.replace(TRAJECTORY_SCHEMA, "heron-bench-traj-v0");
        assert!(validate_trajectory(&wrong)
            .unwrap_err()
            .contains(TRAJECTORY_SCHEMA));
        let gutted = good.replace("\"geomean_gflops\"", "\"geomean\"");
        assert!(validate_trajectory(&gutted)
            .unwrap_err()
            .contains("geomean_gflops"));
    }
}
