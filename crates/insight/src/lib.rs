//! `heron-insight`: search-health analytics, cost-model explainability
//! and the perf-trajectory regression gate (DESIGN.md §7).
//!
//! The crate is layered on `heron-trace`'s zero-dependency JSON
//! reader/writer and stays free of any other dependency, so it can sit
//! *below* `heron-core`: the tuner owns a [`SearchLog`] and appends one
//! [`RoundRecord`] per tuning round plus one [`RefitRecord`] per cost
//! model refit. Everything here is deterministic — same-seed runs
//! produce byte-identical `insight.json` and `BENCH_heron.json`
//! documents, which is what lets the regression gate and the
//! determinism suite treat them as artifacts.
//!
//! Three pieces:
//!
//! * [`SearchLog`] — the per-round structured event stream (best-so-far,
//!   regret inputs, population diversity/entropy, ε-greedy split,
//!   per-refit model quality, importance snapshots, constraint
//!   pressure) with an exact text checkpoint encoding so resumed runs
//!   are insight-exact.
//! * [`analyze`] / [`InsightReport`] — the post-run analyzer:
//!   convergence round, stagnation windows, importance churn,
//!   miscalibration warnings, per-variable coverage; rendered as
//!   deterministic `insight.json` ([`InsightReport::to_json`]) and as a
//!   human text report ([`InsightReport::render_text`]).
//! * [`BenchReport`] — the canonical `BENCH_heron.json` snapshot plus
//!   the [`compare`] regression gate with deterministic thresholds.
//!
//! # Example
//!
//! ```
//! use heron_insight::{analyze, RoundRecord, SearchLog};
//!
//! let mut log = SearchLog::new("gemm-64", "v100", 7, 4);
//! for round in 0..3u32 {
//!     let mut rec = RoundRecord::new(round);
//!     rec.best_gflops = 100.0 + round as f64 * 10.0;
//!     rec.batch_size = 8;
//!     log.push_round(rec);
//! }
//! let report = analyze(&log);
//! assert_eq!(report.rounds, 3);
//! let json = report.to_json(&log).render();
//! assert!(json.contains("\"schema\":\"heron-insight-v1\""));
//! ```

pub mod analyze;
pub mod bench;
pub mod log;
pub mod schema;

pub use analyze::{analyze, InsightReport, Warning};
pub use bench::{
    compare, trajectory_line, validate_trajectory, BenchReport, CompareConfig, WorkloadBench,
    TRAJECTORY_SCHEMA,
};
pub use log::{population_entropy_bits, RefitRecord, RoundRecord, SearchLog, VarCoverage};
pub use schema::{validate_bench, validate_insight};

/// Serializes an `f64` as its exact 16-hex-digit bit pattern (the same
/// encoding `heron-checkpoint v2` uses), so checkpointed insight state
/// round-trips bit-exactly.
pub fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses an [`f64_hex`] bit pattern back.
///
/// # Errors
/// A message naming the bad token when it is not 16 hex digits.
pub fn parse_f64_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("bad f64 hex `{s}`: expected 16 hex digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 hex `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_hex_roundtrips_exactly() {
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-308, -3.25] {
            let back = parse_f64_hex(&f64_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert!(parse_f64_hex("zz").is_err());
        assert!(parse_f64_hex("00000000000000000").is_err());
    }
}
