//! The per-round structured search log.
//!
//! [`SearchLog`] is the event stream the tuner appends to while it
//! runs: one [`RoundRecord`] per tuning round, one [`RefitRecord`] per
//! cost-model refit, plus per-variable coverage sets. The log carries
//! *semantic* search-health signals (is the population diverse, is the
//! model ranking candidates well, which constraints push back) on top
//! of the mechanical spans/counters `heron-trace` already records.
//!
//! The log has an exact line-oriented checkpoint encoding
//! ([`SearchLog::checkpoint_lines`] / [`SearchLog::apply_checkpoint_line`])
//! using the same `f64`-bit-hex convention as `heron-checkpoint v2`, so
//! a killed-and-resumed tuning session produces a byte-identical
//! `insight.json` to the uninterrupted run.

use std::collections::{BTreeMap, BTreeSet};

use crate::{f64_hex, parse_f64_hex};

/// Search coverage for one tunable CSP variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarCoverage {
    /// The CSP variable name.
    pub name: String,
    /// Domain size at space-generation time.
    pub domain_size: u64,
    /// Distinct values this variable took across every *measured*
    /// candidate (ordered, so reports are deterministic).
    pub seen: BTreeSet<i64>,
}

impl VarCoverage {
    /// Fraction of the domain the search has touched, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.domain_size == 0 {
            0.0
        } else {
            self.seen.len() as f64 / self.domain_size as f64
        }
    }
}

/// One tuning round's search-health record.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u32,
    /// Total measured trials after this round.
    pub trials_done: u32,
    /// Best score (GFLOPS) seen so far, after this round's batch.
    pub best_gflops: f64,
    /// Best score inside this round's measured batch (0 when empty).
    pub batch_best_gflops: f64,
    /// Mean score of this round's measured batch (0 when empty).
    pub batch_mean_gflops: f64,
    /// Number of candidates measured this round.
    pub batch_size: u32,
    /// ε-greedy picks taken from the model-ranked head.
    pub exploit_picks: u32,
    /// ε-greedy picks taken uniformly at random.
    pub explore_picks: u32,
    /// Population size entering selection.
    pub population: u32,
    /// Distinct solutions (by fingerprint) in the population.
    pub distinct_solutions: u32,
    /// `distinct_solutions / population` in `[0, 1]` (0 when empty).
    pub diversity: f64,
    /// Mean per-variable Shannon entropy (bits) of population
    /// assignments over the tunable variables.
    pub entropy_bits: f64,
    /// Pairwise rank accuracy of pre-batch predictions vs. this batch's
    /// measurements (`None` before the first model fit).
    pub batch_rank_accuracy: Option<f64>,
    /// Spearman ρ of the same pairing (`None` before the first fit).
    pub batch_spearman: Option<f64>,
    /// Offspring repaired by constraint-dropping this round.
    pub repaired_offspring: u32,
    /// Crossover constraints relaxed during those repairs.
    pub relaxed_constraints: u32,
    /// Fresh `CSP_initial` fallback samples injected this round.
    pub fallback_samples: u32,
    /// Solver deadline hits this round.
    pub deadline_hits: u32,
    /// RandSAT assignment attempts this round.
    pub solver_attempts: u64,
    /// RandSAT constraint propagations this round.
    pub solver_propagations: u64,
    /// RandSAT domain wipeouts this round.
    pub solver_wipeouts: u64,
    /// True when the round ended in a stall (no unmeasured candidates
    /// or solver starvation) rather than a measured batch.
    pub stalled: bool,
    /// Deepest solver trail (undo-stack) depth observed this round.
    pub solver_max_trail: u64,
    /// Offspring solves served incrementally from the session's cached
    /// root fixpoint this round.
    pub solver_incremental: u64,
}

impl RoundRecord {
    /// A zeroed record for round `round`.
    pub fn new(round: u32) -> Self {
        RoundRecord {
            round,
            trials_done: 0,
            best_gflops: 0.0,
            batch_best_gflops: 0.0,
            batch_mean_gflops: 0.0,
            batch_size: 0,
            exploit_picks: 0,
            explore_picks: 0,
            population: 0,
            distinct_solutions: 0,
            diversity: 0.0,
            entropy_bits: 0.0,
            batch_rank_accuracy: None,
            batch_spearman: None,
            repaired_offspring: 0,
            relaxed_constraints: 0,
            fallback_samples: 0,
            deadline_hits: 0,
            solver_attempts: 0,
            solver_propagations: 0,
            solver_wipeouts: 0,
            stalled: false,
            solver_max_trail: 0,
            solver_incremental: 0,
        }
    }
}

/// One cost-model refit's quality + explainability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitRecord {
    /// Round index the refit happened in.
    pub round: u32,
    /// Training-set size at fit time.
    pub samples: u32,
    /// Pairwise rank accuracy of the refit model on its training set.
    pub train_rank_accuracy: f64,
    /// Spearman ρ of the refit model on its training set.
    pub train_spearman: f64,
    /// Top-k `(feature index, normalized gain importance)` pairs,
    /// importance-descending.
    pub top_importance: Vec<(u32, f64)>,
}

/// The tuner-side search-health event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchLog {
    /// Workload name (space name).
    pub workload: String,
    /// Target DLA name.
    pub dla: String,
    /// Tuning seed.
    pub seed: u64,
    /// How many importance entries each refit snapshot keeps.
    pub top_k: u32,
    /// Per-tunable coverage, index-aligned with the tunable list the
    /// tuner registered via [`SearchLog::set_vars`].
    pub vars: Vec<VarCoverage>,
    /// One record per tuning round, in order.
    pub rounds: Vec<RoundRecord>,
    /// One record per model refit, in order.
    pub refits: Vec<RefitRecord>,
}

impl SearchLog {
    /// An empty log for one tuning session.
    pub fn new(workload: &str, dla: &str, seed: u64, top_k: u32) -> Self {
        SearchLog {
            workload: workload.to_string(),
            dla: dla.to_string(),
            seed,
            top_k,
            vars: Vec::new(),
            rounds: Vec::new(),
            refits: Vec::new(),
        }
    }

    /// Registers the tunable variables (name, domain size), resetting
    /// coverage. Called once by the tuner before the first round.
    pub fn set_vars(&mut self, vars: impl IntoIterator<Item = (String, u64)>) {
        self.vars = vars
            .into_iter()
            .map(|(name, domain_size)| VarCoverage {
                name,
                domain_size,
                seen: BTreeSet::new(),
            })
            .collect();
    }

    /// Records one measured candidate's tunable assignment (values
    /// index-aligned with the registered vars).
    pub fn observe_assignment(&mut self, values: &[i64]) {
        for (var, &v) in self.vars.iter_mut().zip(values) {
            var.seen.insert(v);
        }
    }

    /// Index of the next round to be recorded.
    pub fn next_round(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Appends a round record.
    pub fn push_round(&mut self, rec: RoundRecord) {
        self.rounds.push(rec);
    }

    /// Appends a refit record, truncating importance to `top_k`.
    pub fn push_refit(&mut self, mut rec: RefitRecord) {
        rec.top_importance.truncate(self.top_k as usize);
        self.refits.push(rec);
    }

    /// Final best score, i.e. the last round's best-so-far.
    pub fn final_best(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.best_gflops)
    }

    // ------------------------------------------------------------------
    // Checkpoint encoding (heron-checkpoint v2 `insight.*` keys)
    // ------------------------------------------------------------------

    /// Serializes the log as `(key, value)` checkpoint lines. The
    /// encoding is exact: floats are bit-hex, optionals are `-`.
    pub fn checkpoint_lines(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        out.push((
            "insight.meta".to_string(),
            format!("{} {}", self.top_k, self.seed),
        ));
        out.push(("insight.workload".to_string(), self.workload.clone()));
        out.push(("insight.dla".to_string(), self.dla.clone()));
        for (i, var) in self.vars.iter().enumerate() {
            out.push((
                "insight.var".to_string(),
                format!("{} {} {}", i, var.domain_size, var.name),
            ));
            if !var.seen.is_empty() {
                let vals: Vec<String> = var.seen.iter().map(|v| v.to_string()).collect();
                out.push((
                    "insight.seen".to_string(),
                    format!("{} {}", i, vals.join(" ")),
                ));
            }
        }
        for r in &self.rounds {
            out.push(("insight.round".to_string(), encode_round(r)));
        }
        for f in &self.refits {
            out.push(("insight.refit".to_string(), encode_refit(f)));
        }
        out
    }

    /// Applies one checkpoint line previously produced by
    /// [`SearchLog::checkpoint_lines`].
    ///
    /// # Errors
    /// A message naming the malformed key/value.
    pub fn apply_checkpoint_line(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "insight.meta" => {
                let mut it = value.split_whitespace();
                self.top_k = next_u32(&mut it, key)?;
                self.seed = next_u64(&mut it, key)?;
                Ok(())
            }
            "insight.workload" => {
                self.workload = value.to_string();
                Ok(())
            }
            "insight.dla" => {
                self.dla = value.to_string();
                Ok(())
            }
            "insight.var" => {
                let mut it = value.splitn(3, ' ');
                let idx = it
                    .next()
                    .ok_or_else(|| format!("truncated `{key}`"))?
                    .parse::<usize>()
                    .map_err(|_| format!("bad index in `{key}`"))?;
                let domain_size = it
                    .next()
                    .ok_or_else(|| format!("truncated `{key}`"))?
                    .parse::<u64>()
                    .map_err(|_| format!("bad domain size in `{key}`"))?;
                let name = it.next().unwrap_or("").to_string();
                if idx != self.vars.len() {
                    return Err(format!("out-of-order `{key}` index {idx}"));
                }
                self.vars.push(VarCoverage {
                    name,
                    domain_size,
                    seen: BTreeSet::new(),
                });
                Ok(())
            }
            "insight.seen" => {
                let mut it = value.split_whitespace();
                let idx = next_u32(&mut it, key)? as usize;
                let var = self
                    .vars
                    .get_mut(idx)
                    .ok_or_else(|| format!("`{key}` references unknown var {idx}"))?;
                for tok in it {
                    let v = tok
                        .parse::<i64>()
                        .map_err(|_| format!("bad value `{tok}` in `{key}`"))?;
                    var.seen.insert(v);
                }
                Ok(())
            }
            "insight.round" => {
                let rec = decode_round(value)?;
                self.rounds.push(rec);
                Ok(())
            }
            "insight.refit" => {
                let rec = decode_refit(value)?;
                self.refits.push(rec);
                Ok(())
            }
            other => Err(format!("unknown insight checkpoint key `{other}`")),
        }
    }
}

fn next_u32<'a>(it: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<u32, String> {
    it.next()
        .ok_or_else(|| format!("truncated `{key}`"))?
        .parse::<u32>()
        .map_err(|_| format!("bad u32 in `{key}`"))
}

fn next_u64<'a>(it: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("truncated `{key}`"))?
        .parse::<u64>()
        .map_err(|_| format!("bad u64 in `{key}`"))
}

fn opt_hex(x: Option<f64>) -> String {
    match x {
        Some(v) => f64_hex(v),
        None => "-".to_string(),
    }
}

fn parse_opt_hex(tok: &str) -> Result<Option<f64>, String> {
    if tok == "-" {
        Ok(None)
    } else {
        parse_f64_hex(tok).map(Some)
    }
}

fn encode_round(r: &RoundRecord) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        r.round,
        r.trials_done,
        f64_hex(r.best_gflops),
        f64_hex(r.batch_best_gflops),
        f64_hex(r.batch_mean_gflops),
        r.batch_size,
        r.exploit_picks,
        r.explore_picks,
        r.population,
        r.distinct_solutions,
        f64_hex(r.diversity),
        f64_hex(r.entropy_bits),
        opt_hex(r.batch_rank_accuracy),
        opt_hex(r.batch_spearman),
        r.repaired_offspring,
        r.relaxed_constraints,
        r.fallback_samples,
        r.deadline_hits,
        r.solver_attempts,
        r.solver_propagations,
        r.solver_wipeouts,
        u8::from(r.stalled),
        r.solver_max_trail,
        r.solver_incremental,
    )
}

fn decode_round(value: &str) -> Result<RoundRecord, String> {
    let toks: Vec<&str> = value.split_whitespace().collect();
    // 22 tokens = the pre-trail-solver encoding (no trailing
    // `solver_max_trail solver_incremental`); accepted for checkpoint
    // backward compatibility, defaulting both counters to 0.
    if toks.len() != 22 && toks.len() != 24 {
        return Err(format!(
            "`insight.round` expects 22 or 24 tokens, got {}",
            toks.len()
        ));
    }
    let u32_at = |i: usize| -> Result<u32, String> {
        toks[i]
            .parse::<u32>()
            .map_err(|_| format!("bad u32 `{}` in `insight.round`", toks[i]))
    };
    let u64_at = |i: usize| -> Result<u64, String> {
        toks[i]
            .parse::<u64>()
            .map_err(|_| format!("bad u64 `{}` in `insight.round`", toks[i]))
    };
    Ok(RoundRecord {
        round: u32_at(0)?,
        trials_done: u32_at(1)?,
        best_gflops: parse_f64_hex(toks[2])?,
        batch_best_gflops: parse_f64_hex(toks[3])?,
        batch_mean_gflops: parse_f64_hex(toks[4])?,
        batch_size: u32_at(5)?,
        exploit_picks: u32_at(6)?,
        explore_picks: u32_at(7)?,
        population: u32_at(8)?,
        distinct_solutions: u32_at(9)?,
        diversity: parse_f64_hex(toks[10])?,
        entropy_bits: parse_f64_hex(toks[11])?,
        batch_rank_accuracy: parse_opt_hex(toks[12])?,
        batch_spearman: parse_opt_hex(toks[13])?,
        repaired_offspring: u32_at(14)?,
        relaxed_constraints: u32_at(15)?,
        fallback_samples: u32_at(16)?,
        deadline_hits: u32_at(17)?,
        solver_attempts: u64_at(18)?,
        solver_propagations: u64_at(19)?,
        solver_wipeouts: u64_at(20)?,
        stalled: match toks[21] {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad stalled flag `{other}` in `insight.round`")),
        },
        solver_max_trail: if toks.len() > 22 { u64_at(22)? } else { 0 },
        solver_incremental: if toks.len() > 23 { u64_at(23)? } else { 0 },
    })
}

fn encode_refit(f: &RefitRecord) -> String {
    let mut s = format!(
        "{} {} {} {}",
        f.round,
        f.samples,
        f64_hex(f.train_rank_accuracy),
        f64_hex(f.train_spearman),
    );
    for (idx, imp) in &f.top_importance {
        s.push_str(&format!(" {}:{}", idx, f64_hex(*imp)));
    }
    s
}

fn decode_refit(value: &str) -> Result<RefitRecord, String> {
    let mut it = value.split_whitespace();
    let round = next_u32(&mut it, "insight.refit")?;
    let samples = next_u32(&mut it, "insight.refit")?;
    let train_rank_accuracy = parse_f64_hex(
        it.next()
            .ok_or_else(|| "truncated `insight.refit`".to_string())?,
    )?;
    let train_spearman = parse_f64_hex(
        it.next()
            .ok_or_else(|| "truncated `insight.refit`".to_string())?,
    )?;
    let mut top_importance = Vec::new();
    for tok in it {
        let (idx, imp) = tok
            .split_once(':')
            .ok_or_else(|| format!("bad importance pair `{tok}` in `insight.refit`"))?;
        let idx = idx
            .parse::<u32>()
            .map_err(|_| format!("bad feature index `{idx}` in `insight.refit`"))?;
        top_importance.push((idx, parse_f64_hex(imp)?));
    }
    Ok(RefitRecord {
        round,
        samples,
        train_rank_accuracy,
        train_spearman,
        top_importance,
    })
}

// ----------------------------------------------------------------------
// Population statistics helpers (used by the tuner per round)
// ----------------------------------------------------------------------

/// Mean per-variable Shannon entropy (bits) of a population's tunable
/// assignments. `rows` are index-aligned assignment vectors, one per
/// population member. Empty populations (or zero-width rows) yield 0.
pub fn population_entropy_bits(rows: &[Vec<i64>]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let width = rows[0].len();
    if width == 0 {
        return 0.0;
    }
    let n = rows.len() as f64;
    let mut total = 0.0;
    for col in 0..width {
        let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
        for row in rows {
            *counts.entry(row[col]).or_insert(0) += 1;
        }
        let mut h = 0.0;
        for &c in counts.values() {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
        total += h;
    }
    total / width as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> SearchLog {
        let mut log = SearchLog::new("gemm-64", "v100", 42, 3);
        log.set_vars(vec![("tile_x".to_string(), 8), ("tile y".to_string(), 4)]);
        log.observe_assignment(&[2, 1]);
        log.observe_assignment(&[4, 1]);
        let mut r0 = RoundRecord::new(0);
        r0.trials_done = 8;
        r0.best_gflops = 123.456;
        r0.batch_size = 8;
        r0.exploit_picks = 6;
        r0.explore_picks = 2;
        r0.diversity = 0.75;
        r0.entropy_bits = 1.5;
        log.push_round(r0);
        let mut r1 = RoundRecord::new(1);
        r1.trials_done = 16;
        r1.best_gflops = 150.0;
        r1.batch_rank_accuracy = Some(0.8125);
        r1.batch_spearman = Some(0.9);
        r1.solver_attempts = 321;
        r1.stalled = false;
        r1.solver_max_trail = 17;
        r1.solver_incremental = 5;
        log.push_round(r1);
        log.push_refit(RefitRecord {
            round: 1,
            samples: 16,
            train_rank_accuracy: 0.9,
            train_spearman: 0.85,
            top_importance: vec![(3, 0.5), (0, 0.25), (7, 0.125), (9, 0.0625)],
        });
        log
    }

    #[test]
    fn checkpoint_lines_roundtrip_exactly() {
        let log = sample_log();
        let mut back = SearchLog::new("", "", 0, 0);
        for (k, v) in log.checkpoint_lines() {
            back.apply_checkpoint_line(&k, &v).unwrap();
        }
        assert_eq!(back, log);
        // Second serialization is byte-identical.
        assert_eq!(back.checkpoint_lines(), log.checkpoint_lines());
    }

    #[test]
    fn refit_importance_truncated_to_top_k() {
        let log = sample_log();
        assert_eq!(log.refits[0].top_importance.len(), 3);
    }

    #[test]
    fn malformed_checkpoint_lines_are_rejected() {
        let mut log = SearchLog::new("", "", 0, 0);
        assert!(log.apply_checkpoint_line("insight.round", "1 2 3").is_err());
        assert!(log.apply_checkpoint_line("insight.bogus", "x").is_err());
        assert!(log.apply_checkpoint_line("insight.seen", "0 1").is_err());
        assert!(log
            .apply_checkpoint_line("insight.refit", "0 4 nothex")
            .is_err());
    }

    #[test]
    fn legacy_22_token_round_lines_decode_with_zero_defaults() {
        let mut r = RoundRecord::new(3);
        r.solver_max_trail = 9;
        r.solver_incremental = 4;
        let line = encode_round(&r);
        assert_eq!(line.split_whitespace().count(), 24);
        // A pre-trail-solver checkpoint lacks the two trailing counters.
        let legacy = line
            .split_whitespace()
            .take(22)
            .collect::<Vec<_>>()
            .join(" ");
        let back = decode_round(&legacy).expect("legacy lines must decode");
        assert_eq!(back.solver_max_trail, 0);
        assert_eq!(back.solver_incremental, 0);
        assert_eq!(back.round, 3);
    }

    #[test]
    fn entropy_and_coverage() {
        // Uniform column over 4 values => 2 bits; constant column => 0.
        let rows: Vec<Vec<i64>> = (0..4).map(|i| vec![i, 7]).collect();
        let h = population_entropy_bits(&rows);
        assert!((h - 1.0).abs() < 1e-12, "mean of 2 and 0 bits, got {h}");
        assert_eq!(population_entropy_bits(&[]), 0.0);

        let log = sample_log();
        assert!((log.vars[0].coverage() - 0.25).abs() < 1e-12);
        assert!((log.vars[1].coverage() - 0.25).abs() < 1e-12);
    }
}
