//! Operator fusion: the graph-level optimisation Heron's pipeline runs
//! before kernel tuning (paper Section 2.1).
//!
//! Every MAC node greedily absorbs the chain of element-wise epilogues
//! hanging off it (bias, activation, residual add) — on a DLA these fuse
//! into the MAC kernel's store stage for free. Remaining non-MAC nodes
//! become standalone memory-bound passes.

use crate::ir::{Graph, LayerOp, NodeId};

/// One fused execution unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedLayer {
    /// The anchor node (a MAC op, or the standalone memory-bound op).
    pub anchor: NodeId,
    /// Element-wise nodes fused into the anchor, in execution order.
    pub epilogue: Vec<NodeId>,
}

/// The fusion result: fused layers in topological order.
#[derive(Debug, Clone, Default)]
pub struct FusedGraph {
    /// Fused layers in execution order.
    pub layers: Vec<FusedLayer>,
}

impl FusedGraph {
    /// Number of fused layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether no layers exist.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

/// Runs the fusion pass.
pub fn fuse(graph: &Graph) -> FusedGraph {
    let mut absorbed = vec![false; graph.len()];
    let mut layers = Vec::new();

    for (id, node) in graph.nodes().iter().enumerate() {
        if absorbed[id] || matches!(node.op, LayerOp::Input { .. }) {
            continue;
        }
        if node.op.is_epilogue() {
            // Not absorbed by any MAC producer: standalone memory pass.
            layers.push(FusedLayer {
                anchor: id,
                epilogue: vec![],
            });
            continue;
        }
        let mut layer = FusedLayer {
            anchor: id,
            epilogue: vec![],
        };
        if node.op.is_mac() {
            // Greedily absorb a chain of single-consumer epilogues.
            let mut tail = id;
            loop {
                let consumers = graph.consumers(tail);
                // The tail must have exactly one consumer and that consumer
                // must be element-wise with the tail as its *first* input
                // (residual adds absorb along the main branch).
                let [next] = consumers.as_slice() else { break };
                let cand = graph.node(*next);
                if !cand.op.is_epilogue() || cand.inputs[0] != tail {
                    break;
                }
                // A residual Add also needs its side input already computed
                // (always true in topological order) — absorb it.
                layer.epilogue.push(*next);
                absorbed[*next] = true;
                tail = *next;
            }
        }
        layers.push(layer);
    }
    FusedGraph { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_tensor::ops::Conv2dConfig;

    fn conv(g: &mut Graph, name: &str, input: NodeId, ci: i64, co: i64, hw: i64) -> NodeId {
        g.add(
            name,
            LayerOp::Conv2d(Conv2dConfig::new(1, hw, hw, ci, co, 3, 3, 1, 1)),
            vec![input],
        )
    }

    #[test]
    fn conv_bias_relu_fuses_into_one_layer() {
        let mut g = Graph::new();
        let x = g.input("x", vec![1, 8, 16, 16]);
        let c = conv(&mut g, "conv", x, 8, 8, 16);
        let b = g.add("bias", LayerOp::BiasAdd, vec![c]);
        let r = g.add("relu", LayerOp::Relu, vec![b]);
        let fused = fuse(&g);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused.layers[0].anchor, c);
        assert_eq!(fused.layers[0].epilogue, vec![b, r]);
    }

    #[test]
    fn residual_add_fuses_into_main_branch() {
        let mut g = Graph::new();
        let x = g.input("x", vec![1, 8, 16, 16]);
        let c1 = conv(&mut g, "conv1", x, 8, 8, 16);
        let r1 = g.add("relu1", LayerOp::Relu, vec![c1]);
        let c2 = conv(&mut g, "conv2", r1, 8, 8, 16);
        // Residual: main branch first input, shortcut second.
        let add = g.add("add", LayerOp::Add, vec![c2, r1]);
        let fused = fuse(&g);
        // conv1 absorbs relu1 (it is conv1's single consumer); relu1's own
        // output still materialises for its two readers (c2 and add), so
        // the chain stops there.
        let layer1 = &fused.layers[0];
        assert_eq!(layer1.anchor, c1);
        assert_eq!(layer1.epilogue, vec![r1], "single-consumer relu fuses");
        // conv2 absorbs the add.
        let layer3 = fused
            .layers
            .iter()
            .find(|l| l.anchor == c2)
            .expect("conv2 layer");
        assert_eq!(layer3.epilogue, vec![add]);
    }

    #[test]
    fn pooling_stays_standalone() {
        let mut g = Graph::new();
        let x = g.input("x", vec![1, 8, 16, 16]);
        let c = conv(&mut g, "conv", x, 8, 8, 16);
        let p = g.add("pool", LayerOp::MaxPool { k: 2, s: 2 }, vec![c]);
        let fused = fuse(&g);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.layers[1].anchor, p);
    }

    #[test]
    fn orphan_epilogues_become_memory_passes() {
        let mut g = Graph::new();
        let x = g.input("x", vec![1, 128]);
        let r = g.add("relu", LayerOp::Relu, vec![x]);
        let fused = fuse(&g);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused.layers[0].anchor, r);
    }
}
