//! Graph builders for the paper's evaluated networks.

use heron_tensor::ops::Conv2dConfig;

use crate::ir::{Graph, LayerOp, NodeId};

#[allow(clippy::too_many_arguments)]
fn conv(
    g: &mut Graph,
    name: &str,
    input: NodeId,
    hw: i64,
    ci: i64,
    co: i64,
    k: i64,
    pad: i64,
    stride: i64,
    batch: i64,
) -> NodeId {
    let c = g.add(
        format!("{name}.conv"),
        LayerOp::Conv2d(Conv2dConfig::new(batch, hw, hw, ci, co, k, k, pad, stride)),
        vec![input],
    );
    let b = g.add(format!("{name}.bias"), LayerOp::BiasAdd, vec![c]);
    g.add(format!("{name}.relu"), LayerOp::Relu, vec![b])
}

/// One ResNet bottleneck block: 1x1 reduce → 3x3 → 1x1 expand (+shortcut).
///
/// `hw` is the input spatial size, `cin` the input channels, `mid` the
/// bottleneck width; `downsample` halves the spatial size and doubles the
/// channel count via a strided shortcut.
pub fn resnet_bottleneck(batch: i64, hw: i64, cin: i64, mid: i64, downsample: bool) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, cin, hw, hw]);
    build_bottleneck(&mut g, "b", x, hw, cin, mid, downsample, batch);
    g
}

#[allow(clippy::too_many_arguments)]
fn build_bottleneck(
    g: &mut Graph,
    name: &str,
    input: NodeId,
    hw: i64,
    cin: i64,
    mid: i64,
    downsample: bool,
    batch: i64,
) -> (NodeId, i64, i64) {
    let stride = if downsample { 2 } else { 1 };
    let out_c = mid * 4;
    let out_hw = if downsample { hw / 2 } else { hw };

    let c1 = conv(
        g,
        &format!("{name}.1"),
        input,
        hw,
        cin,
        mid,
        1,
        0,
        stride,
        batch,
    );
    let c2 = conv(
        g,
        &format!("{name}.2"),
        c1,
        out_hw,
        mid,
        mid,
        3,
        1,
        1,
        batch,
    );
    // Final conv without activation; the residual add and relu follow.
    let c3 = g.add(
        format!("{name}.3.conv"),
        LayerOp::Conv2d(Conv2dConfig::new(
            batch, out_hw, out_hw, mid, out_c, 1, 1, 0, 1,
        )),
        vec![c2],
    );
    let shortcut = if downsample || cin != out_c {
        g.add(
            format!("{name}.sc.conv"),
            LayerOp::Conv2d(Conv2dConfig::new(
                batch, hw, hw, cin, out_c, 1, 1, 0, stride,
            )),
            vec![input],
        )
    } else {
        input
    };
    let add = g.add(format!("{name}.add"), LayerOp::Add, vec![c3, shortcut]);
    let relu = g.add(format!("{name}.relu"), LayerOp::Relu, vec![add]);
    (relu, out_hw, out_c)
}

/// Full ResNet-50 (stem + 3/4/6/3 bottleneck blocks + classifier).
pub fn resnet50(batch: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, 3, 224, 224]);
    let stem = conv(&mut g, "stem", x, 224, 3, 64, 7, 3, 2, batch);
    let pool = g.add("stem.pool", LayerOp::MaxPool { k: 2, s: 2 }, vec![stem]);

    let mut node = pool;
    let mut hw = 56;
    let mut cin = 64;
    let stages: [(i64, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (si, (mid, blocks)) in stages.into_iter().enumerate() {
        for bi in 0..blocks {
            let downsample = si > 0 && bi == 0;
            let (out, new_hw, new_c) = build_bottleneck(
                &mut g,
                &format!("s{si}.b{bi}"),
                node,
                hw,
                cin,
                mid,
                downsample,
                batch,
            );
            node = out;
            hw = new_hw;
            cin = new_c;
        }
    }
    let gap = g.add("gap", LayerOp::GlobalAvgPool, vec![node]);
    let fc = g.add(
        "fc",
        LayerOp::Gemm {
            m: batch,
            n: 1000,
            k: cin,
        },
        vec![gap],
    );
    let _ = fc;
    g
}

/// VGG-16 (13 convolutions + 3 dense layers).
pub fn vgg16(batch: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, 3, 224, 224]);
    let plan: [(i64, i64, usize); 5] = [
        (224, 64, 2),
        (112, 128, 2),
        (56, 256, 3),
        (28, 512, 3),
        (14, 512, 3),
    ];
    let mut node = x;
    let mut cin = 3;
    for (si, (hw, co, reps)) in plan.into_iter().enumerate() {
        for r in 0..reps {
            node = conv(
                &mut g,
                &format!("s{si}.c{r}"),
                node,
                hw,
                cin,
                co,
                3,
                1,
                1,
                batch,
            );
            cin = co;
        }
        node = g.add(
            format!("s{si}.pool"),
            LayerOp::MaxPool { k: 2, s: 2 },
            vec![node],
        );
    }
    let fc1 = g.add(
        "fc1",
        LayerOp::Gemm {
            m: batch,
            n: 4096,
            k: 512 * 7 * 7,
        },
        vec![node],
    );
    let r1 = g.add("fc1.relu", LayerOp::Relu, vec![fc1]);
    let fc2 = g.add(
        "fc2",
        LayerOp::Gemm {
            m: batch,
            n: 4096,
            k: 4096,
        },
        vec![r1],
    );
    let r2 = g.add("fc2.relu", LayerOp::Relu, vec![fc2]);
    let _fc3 = g.add(
        "fc3",
        LayerOp::Gemm {
            m: batch,
            n: 1000,
            k: 4096,
        },
        vec![r2],
    );
    g
}

/// An Inception-A style block: four parallel branches (1x1, 5x5, double
/// 3x3, pool-projection) whose outputs concatenate along channels. The
/// concatenation itself is free at this abstraction (pointer bookkeeping),
/// so the block ends at the four branch outputs.
pub fn inception_a_block(batch: i64, hw: i64, cin: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, cin, hw, hw]);
    // Branch 1: 1x1.
    conv(&mut g, "b1", x, hw, cin, 64, 1, 0, 1, batch);
    // Branch 2: 1x1 reduce then 5x5.
    let b2a = conv(&mut g, "b2a", x, hw, cin, 48, 1, 0, 1, batch);
    conv(&mut g, "b2b", b2a, hw, 48, 64, 5, 2, 1, batch);
    // Branch 3: 1x1 reduce then two 3x3.
    let b3a = conv(&mut g, "b3a", x, hw, cin, 64, 1, 0, 1, batch);
    let b3b = conv(&mut g, "b3b", b3a, hw, 64, 96, 3, 1, 1, batch);
    conv(&mut g, "b3c", b3b, hw, 96, 96, 3, 1, 1, batch);
    // Branch 4: pool then 1x1 projection.
    let b4a = g.add("b4.pool", LayerOp::MaxPool { k: 1, s: 1 }, vec![x]);
    conv(&mut g, "b4b", b4a, hw, cin, 32, 1, 0, 1, batch);
    g
}

/// One MobileNet-style depthwise-separable block: depthwise 3x3 followed
/// by a pointwise 1x1 expansion, each with bias + ReLU (an extension
/// beyond the paper's networks exercising the scalar tuning path).
pub fn mobilenet_block(batch: i64, hw: i64, cin: i64, cout: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, cin, hw, hw]);
    let dw = g.add(
        "dw.conv",
        LayerOp::DepthwiseConv2d(Conv2dConfig::new(batch, hw, hw, cin, cin, 3, 3, 1, 1)),
        vec![x],
    );
    let dwb = g.add("dw.bias", LayerOp::BiasAdd, vec![dw]);
    let dwr = g.add("dw.relu", LayerOp::Relu, vec![dwb]);
    let pw = g.add(
        "pw.conv",
        LayerOp::Conv2d(Conv2dConfig::new(batch, hw, hw, cin, cout, 1, 1, 0, 1)),
        vec![dwr],
    );
    let pwb = g.add("pw.bias", LayerOp::BiasAdd, vec![pw]);
    let _ = g.add("pw.relu", LayerOp::Relu, vec![pwb]);
    g
}

/// One BERT-base encoder layer (hidden 768, 12 heads, sequence `seq`).
pub fn bert_encoder(batch: i64, seq: i64) -> Graph {
    let mut g = Graph::new();
    let hidden = 768;
    let heads = 12;
    let dh = hidden / heads;
    let tokens = batch * seq;
    let x = g.input("x", vec![tokens, hidden]);

    let qkv = g.add(
        "qkv",
        LayerOp::Gemm {
            m: tokens,
            n: 3 * hidden,
            k: hidden,
        },
        vec![x],
    );
    let qk = g.add(
        "attn.qk",
        LayerOp::Bmm {
            b: batch * heads,
            m: seq,
            n: seq,
            k: dh,
        },
        vec![qkv],
    );
    let sm = g.add("attn.softmax", LayerOp::Softmax, vec![qk]);
    let av = g.add(
        "attn.v",
        LayerOp::Bmm {
            b: batch * heads,
            m: seq,
            n: dh,
            k: seq,
        },
        vec![sm],
    );
    let _ = av;
    // Projection reads the re-assembled heads (tokens x hidden).
    let proj_in = g.input("attn.concat", vec![tokens, hidden]);
    let proj = g.add(
        "proj",
        LayerOp::Gemm {
            m: tokens,
            n: hidden,
            k: hidden,
        },
        vec![proj_in],
    );
    let res1 = g.add("res1", LayerOp::Add, vec![proj, x]);
    let ln1 = g.add("ln1", LayerOp::LayerNorm, vec![res1]);
    let ffn1 = g.add(
        "ffn1",
        LayerOp::Gemm {
            m: tokens,
            n: 4 * hidden,
            k: hidden,
        },
        vec![ln1],
    );
    let gelu = g.add("ffn1.gelu", LayerOp::Gelu, vec![ffn1]);
    let ffn2 = g.add(
        "ffn2",
        LayerOp::Gemm {
            m: tokens,
            n: hidden,
            k: 4 * hidden,
        },
        vec![gelu],
    );
    let res2 = g.add("res2", LayerOp::Add, vec![ffn2, ln1]);
    let _ln2 = g.add("ln2", LayerOp::LayerNorm, vec![res2]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use crate::ir::LayerOp;

    #[test]
    fn resnet50_has_53_convs_and_a_classifier() {
        let g = resnet50(1);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, LayerOp::Conv2d(_)))
            .count();
        assert_eq!(convs, 53, "ResNet-50 has 53 convolutions");
        let gemms = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, LayerOp::Gemm { .. }))
            .count();
        assert_eq!(gemms, 1);
        // 3.86 GMACs = ~7.7 Gflops at batch 1 (mul + add counted).
        let gf = g.mac_flops() as f64 / 1e9;
        assert!((7.0..8.5).contains(&gf), "resnet50 flops {gf}");
    }

    #[test]
    fn vgg16_flops_match_the_well_known_number() {
        let g = vgg16(1);
        let gf = g.mac_flops() as f64 / 1e9;
        // ~30.9 Gflops at batch 1.
        assert!((28.0..34.0).contains(&gf), "vgg16 flops {gf}");
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, LayerOp::Conv2d(_)))
            .count();
        assert_eq!(convs, 13);
    }

    #[test]
    fn bert_encoder_fuses_gelu_into_ffn1() {
        let g = bert_encoder(8, 128);
        let fused = fuse(&g);
        let ffn1 = g
            .nodes()
            .iter()
            .position(|n| n.name == "ffn1")
            .expect("exists");
        let layer = fused
            .layers
            .iter()
            .find(|l| l.anchor == ffn1)
            .expect("ffn1 is an anchor");
        assert_eq!(layer.epilogue.len(), 1, "gelu fuses into ffn1");
    }

    #[test]
    fn inception_block_has_four_branches() {
        let g = inception_a_block(1, 35, 192);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, LayerOp::Conv2d(_)))
            .count();
        assert_eq!(convs, 7, "1 + 2 + 3 + 1 convolutions");
        // Branching: the input feeds four consumers.
        assert_eq!(g.consumers(0).len(), 4);
        let fused = fuse(&g);
        // Each conv fuses its bias+relu.
        assert!(
            fused
                .layers
                .iter()
                .filter(|l| l.epilogue.len() == 2)
                .count()
                >= 6
        );
    }

    #[test]
    fn mobilenet_block_compiles_through_both_paths() {
        use crate::compile::{compile, CompileOptions, CompiledKind};
        let g = mobilenet_block(1, 14, 32, 64);
        let fused = fuse(&g);
        let model = compile(
            &g,
            &fused,
            &heron_dla::v100(),
            &CompileOptions {
                trials: 12,
                seed: 3,
            },
        );
        // Both convolutions tuned (depthwise via the scalar path).
        let tuned = model
            .layers
            .iter()
            .filter(|l| matches!(l.kind, CompiledKind::Tuned { .. }))
            .count();
        assert_eq!(tuned, 2);
        assert!(model.latency_s().is_finite() && model.latency_s() > 0.0);
    }

    #[test]
    fn resnet_blocks_fuse_residuals() {
        let g = resnet_bottleneck(1, 56, 256, 64, false);
        let fused = fuse(&g);
        // The final 1x1 conv absorbs add+relu.
        assert!(fused.layers.iter().any(|l| l.epilogue.len() >= 2));
    }
}
