//! Graph-level network IR, operator fusion, and the compile/tuning cache.
//!
//! The paper's pipeline (Section 2.1) starts with graph-level
//! optimisations — operator fusion and layout transformation — before
//! Heron tunes each resulting kernel. This crate provides that front end:
//!
//! * [`ir`] — a small network graph (convolutions, GEMMs, element-wise
//!   epilogues, pooling) with structural validation;
//! * [`mod@fuse`] — the fusion pass that absorbs element-wise epilogues into
//!   their producing MAC layer and groups the rest into memory-bound
//!   passes;
//! * [`mod@compile`] — lowering of a fused graph onto a DLA: each distinct MAC
//!   workload is tuned once through Heron (a tuning cache keyed by the
//!   workload signature), memory-bound layers are costed analytically, and
//!   the compiled model reports end-to-end latency;
//! * [`models`] — builders for the paper's evaluated networks (ResNet-50,
//!   VGG-16, Inception-style blocks, BERT encoders).
//!
//! # Example
//!
//! ```
//! use heron_graph::{compile::CompileOptions, fuse, models};
//!
//! let g = models::vgg16(1);
//! let fused = fuse::fuse(&g);
//! assert!(fused.layers.iter().any(|l| !l.epilogue.is_empty()), "ReLUs fuse into convs");
//! ```

pub mod compile;
pub mod fuse;
pub mod ir;
pub mod models;

pub use compile::{compile, CompileOptions, CompiledModel};
pub use fuse::{fuse, FusedGraph, FusedLayer};
pub use ir::{Graph, LayerOp, Node, NodeId};
