//! Compiling a fused graph onto a DLA: per-workload tuning with a cache,
//! analytic costs for memory-bound passes, and end-to-end latency.

use std::collections::HashMap;
use std::fmt;

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::{TuneConfig, Tuner};
use heron_dla::{DlaSpec, Measurer};
use heron_tensor::DType;
use heron_workloads::{OpKind, Workload};

use crate::fuse::FusedGraph;
use crate::ir::{Graph, LayerOp};

/// Compilation options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Measured trials per distinct workload.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            trials: 200,
            seed: 2023,
        }
    }
}

/// How a compiled layer executes.
#[derive(Debug, Clone)]
pub enum CompiledKind {
    /// Heron-tuned MAC kernel.
    Tuned {
        /// Tuning-cache key (shared with identical layers).
        key: String,
        /// Achieved throughput, Gops.
        gflops: f64,
    },
    /// Memory-bound pass costed at streaming bandwidth.
    Memory {
        /// Bytes moved (read + write).
        bytes: u64,
    },
}

/// One compiled layer.
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    /// Layer name (anchor node name).
    pub name: String,
    /// Execution kind.
    pub kind: CompiledKind,
    /// Estimated latency, seconds.
    pub latency_s: f64,
    /// Epilogue ops fused into this layer.
    pub fused_epilogues: usize,
}

/// A compiled model.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// Target platform name.
    pub dla: String,
    /// Compiled layers in execution order.
    pub layers: Vec<CompiledLayer>,
    /// Distinct workloads tuned (cache misses).
    pub tuned_workloads: usize,
    /// Layers served from the tuning cache.
    pub cache_hits: usize,
}

impl CompiledModel {
    /// End-to-end latency (sum over layers), seconds.
    pub fn latency_s(&self) -> f64 {
        self.layers.iter().map(|l| l.latency_s).sum()
    }

    /// Fraction of latency in tuned MAC kernels.
    pub fn mac_fraction(&self) -> f64 {
        let mac: f64 = self
            .layers
            .iter()
            .filter(|l| matches!(l.kind, CompiledKind::Tuned { .. }))
            .map(|l| l.latency_s)
            .sum();
        mac / self.latency_s().max(1e-12)
    }
}

impl fmt::Display for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compiled model for {}: {} layers, {} tuned workloads, {} cache hits, {:.3} ms",
            self.dla,
            self.layers.len(),
            self.tuned_workloads,
            self.cache_hits,
            self.latency_s() * 1e3
        )?;
        for l in &self.layers {
            let kind = match &l.kind {
                CompiledKind::Tuned { gflops, .. } => format!("tuned {gflops:.0} Gops"),
                CompiledKind::Memory { bytes } => format!("memory {bytes} B"),
            };
            writeln!(
                f,
                "  {:<18} {:>10.1} us  {} (+{} fused)",
                l.name,
                l.latency_s * 1e6,
                kind,
                l.fused_epilogues
            )?;
        }
        Ok(())
    }
}

/// Maps a MAC layer op onto a tunable workload.
fn workload_of(op: &LayerOp) -> Option<(String, Workload)> {
    match op {
        LayerOp::Conv2d(c) => {
            let key = format!(
                "c2d-{}x{}x{}x{}x{}-k{}p{}s{}d{}",
                c.batch,
                c.in_channels,
                c.height,
                c.width,
                c.out_channels,
                c.kh,
                c.padding,
                c.stride,
                c.dilation
            );
            Some((key.clone(), Workload::new(key, OpKind::C2d(*c))))
        }
        LayerOp::DepthwiseConv2d(c) => {
            let key = format!(
                "dw-{}x{}x{}x{}-k{}p{}s{}",
                c.batch, c.in_channels, c.height, c.width, c.kh, c.padding, c.stride
            );
            Some((key.clone(), Workload::new(key, OpKind::Dw(*c))))
        }
        LayerOp::Gemm { m, n, k } => {
            let key = format!("gemm-{m}x{n}x{k}");
            Some((
                key.clone(),
                Workload::new(
                    key,
                    OpKind::Gemm {
                        m: *m,
                        n: *n,
                        k: *k,
                    },
                ),
            ))
        }
        LayerOp::Bmm { b, m, n, k } => {
            let key = format!("bmm-{b}x{m}x{n}x{k}");
            Some((
                key.clone(),
                Workload::new(
                    key,
                    OpKind::Bmm {
                        b: *b,
                        m: *m,
                        n: *n,
                        k: *k,
                    },
                ),
            ))
        }
        _ => None,
    }
}

/// Compiles a fused graph for `spec`, tuning each distinct MAC workload
/// once.
pub fn compile(
    graph: &Graph,
    fused: &FusedGraph,
    spec: &DlaSpec,
    opts: &CompileOptions,
) -> CompiledModel {
    let generator = SpaceGenerator::new(spec.clone());
    let bw = spec.global_bandwidth_bytes_per_sec();
    let dtype_bytes = spec.in_dtype.bytes();
    let mut cache: HashMap<String, (f64, f64)> = HashMap::new(); // key -> (latency, gflops)
    let mut model = CompiledModel {
        dla: spec.name.clone(),
        layers: Vec::new(),
        tuned_workloads: 0,
        cache_hits: 0,
    };

    for layer in &fused.layers {
        let node = graph.node(layer.anchor);
        if let Some((key, workload)) = workload_of(&node.op) {
            let (latency, gflops) = match cache.get(&key) {
                Some(&hit) => {
                    model.cache_hits += 1;
                    hit
                }
                None => {
                    let dag = workload.build(dtype_of(spec));
                    let entry = match generator.generate_named(&dag, &SpaceOptions::heron(), &key) {
                        Ok(space) => {
                            let mut tuner = Tuner::new(
                                space,
                                Measurer::new(spec.clone()),
                                TuneConfig::quick(opts.trials),
                                opts.seed,
                            );
                            let r = tuner.run();
                            (r.best_latency_s, r.best_gflops)
                        }
                        Err(_) => (f64::INFINITY, 0.0),
                    };
                    model.tuned_workloads += 1;
                    cache.insert(key.clone(), entry);
                    entry
                }
            };
            model.layers.push(CompiledLayer {
                name: node.name.clone(),
                kind: CompiledKind::Tuned { key, gflops },
                latency_s: latency,
                fused_epilogues: layer.epilogue.len(),
            });
        } else {
            // Memory-bound pass: read inputs + write output at stream BW.
            let out_elems = graph.output_elems(layer.anchor);
            let in_elems: i64 = node.inputs.iter().map(|&i| graph.output_elems(i)).sum();
            let bytes = (out_elems + in_elems) as u64 * dtype_bytes;
            let ops_factor = node.op.elementwise_ops_per_output() as f64;
            let latency = bytes as f64 / bw * ops_factor.max(1.0).sqrt();
            model.layers.push(CompiledLayer {
                name: node.name.clone(),
                kind: CompiledKind::Memory { bytes },
                latency_s: latency,
                fused_epilogues: 0,
            });
        }
    }
    model
}

fn dtype_of(spec: &DlaSpec) -> DType {
    spec.in_dtype
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use crate::models;

    #[test]
    fn compile_reuses_cache_for_repeated_layers() {
        // Two identical convolutions: one tuning run, one cache hit.
        let mut g = Graph::new();
        let x = g.input("x", vec![1, 16, 16, 16]);
        let cfg = heron_tensor::ops::Conv2dConfig::new(1, 16, 16, 16, 16, 3, 3, 1, 1);
        let c1 = g.add("c1", LayerOp::Conv2d(cfg), vec![x]);
        let r1 = g.add("r1", LayerOp::Relu, vec![c1]);
        let _c2 = g.add("c2", LayerOp::Conv2d(cfg), vec![r1]);
        let fused = fuse(&g);
        let model = compile(
            &g,
            &fused,
            &heron_dla::v100(),
            &CompileOptions {
                trials: 16,
                seed: 1,
            },
        );
        assert_eq!(model.tuned_workloads, 1);
        assert_eq!(model.cache_hits, 1);
        assert!(model.latency_s().is_finite());
        assert!(model.latency_s() > 0.0);
    }

    #[test]
    fn bottleneck_block_compiles_with_fused_epilogues() {
        let g = models::resnet_bottleneck(1, 56, 256, 64, false);
        let fused = fuse(&g);
        let model = compile(
            &g,
            &fused,
            &heron_dla::v100(),
            &CompileOptions {
                trials: 12,
                seed: 2,
            },
        );
        assert!(model.layers.iter().any(|l| l.fused_epilogues > 0));
        assert!(
            model.mac_fraction() > 0.5,
            "convs dominate a bottleneck block"
        );
        let text = model.to_string();
        assert!(text.contains("tuned"));
    }
}
