//! The network graph IR: a DAG of layers over implicit NCHW tensors.

use heron_tensor::ops::Conv2dConfig;
use std::fmt;

/// Index of a node within a [`Graph`].
pub type NodeId = usize;

/// A layer operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerOp {
    /// Network input with an explicit shape.
    Input {
        /// Tensor shape (NCHW or [batch, features]).
        shape: Vec<i64>,
    },
    /// 2-D convolution (the MAC anchor of CNNs).
    Conv2d(Conv2dConfig),
    /// Depthwise 2-D convolution (tunes through the scalar path: its
    /// channel axis appears in both operands, so matrix units don't apply).
    DepthwiseConv2d(Conv2dConfig),
    /// Dense layer / matrix multiply.
    Gemm {
        /// Rows (usually batch or batch × tokens).
        m: i64,
        /// Output features.
        n: i64,
        /// Input features.
        k: i64,
    },
    /// Batched matrix multiply (attention).
    Bmm {
        /// Batch (batch × heads).
        b: i64,
        /// Rows.
        m: i64,
        /// Columns.
        n: i64,
        /// Reduction.
        k: i64,
    },
    /// Per-channel bias addition (element-wise epilogue).
    BiasAdd,
    /// Rectified linear unit (element-wise epilogue).
    Relu,
    /// GELU activation (element-wise epilogue).
    Gelu,
    /// Residual addition of two tensors (element-wise epilogue).
    Add,
    /// Layer normalisation (memory-bound pass).
    LayerNorm,
    /// Softmax along the last axis (memory-bound pass).
    Softmax,
    /// Max pooling (memory-bound pass).
    MaxPool {
        /// Window size.
        k: i64,
        /// Stride.
        s: i64,
    },
    /// Global average pooling (memory-bound pass).
    GlobalAvgPool,
}

impl LayerOp {
    /// Whether this op is a MAC anchor Heron tunes (Rule-S1 target).
    pub fn is_mac(&self) -> bool {
        matches!(
            self,
            LayerOp::Conv2d(_)
                | LayerOp::DepthwiseConv2d(_)
                | LayerOp::Gemm { .. }
                | LayerOp::Bmm { .. }
        )
    }

    /// Whether this op is an element-wise epilogue that fuses into a
    /// preceding MAC layer.
    pub fn is_epilogue(&self) -> bool {
        matches!(
            self,
            LayerOp::BiasAdd | LayerOp::Relu | LayerOp::Gelu | LayerOp::Add
        )
    }

    /// Arithmetic work of the op given its output element count (used for
    /// the memory-bound cost model; MAC flops come from the tuner).
    pub fn elementwise_ops_per_output(&self) -> u64 {
        match self {
            LayerOp::Softmax => 4,
            LayerOp::LayerNorm => 6,
            LayerOp::Gelu => 8,
            _ => 1,
        }
    }
}

impl fmt::Display for LayerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerOp::Input { shape } => write!(f, "input{shape:?}"),
            LayerOp::Conv2d(c) => write!(
                f,
                "conv2d {}x{}x{}x{} k{} s{}",
                c.batch, c.in_channels, c.height, c.width, c.kh, c.stride
            ),
            LayerOp::DepthwiseConv2d(c) => write!(
                f,
                "dwconv {}x{}x{}x{} k{} s{}",
                c.batch, c.in_channels, c.height, c.width, c.kh, c.stride
            ),
            LayerOp::Gemm { m, n, k } => write!(f, "gemm {m}x{n}x{k}"),
            LayerOp::Bmm { b, m, n, k } => write!(f, "bmm {b}x{m}x{n}x{k}"),
            LayerOp::BiasAdd => write!(f, "bias_add"),
            LayerOp::Relu => write!(f, "relu"),
            LayerOp::Gelu => write!(f, "gelu"),
            LayerOp::Add => write!(f, "add"),
            LayerOp::LayerNorm => write!(f, "layer_norm"),
            LayerOp::Softmax => write!(f, "softmax"),
            LayerOp::MaxPool { k, s } => write!(f, "max_pool k{k} s{s}"),
            LayerOp::GlobalAvgPool => write!(f, "global_avg_pool"),
        }
    }
}

/// A node: an op applied to earlier nodes' outputs.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name.
    pub name: String,
    /// The operation.
    pub op: LayerOp,
    /// Producer nodes.
    pub inputs: Vec<NodeId>,
    /// Output tensor shape.
    pub shape: Vec<i64>,
}

/// A network graph in topological (insertion) order.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds an input node.
    pub fn input(&mut self, name: impl Into<String>, shape: Vec<i64>) -> NodeId {
        let shape_c = shape.clone();
        self.push(Node {
            name: name.into(),
            op: LayerOp::Input { shape },
            inputs: vec![],
            shape: shape_c,
        })
    }

    /// Adds an op node, inferring the output shape.
    ///
    /// # Panics
    /// Panics if an input id is out of range or shapes are inconsistent.
    pub fn add(&mut self, name: impl Into<String>, op: LayerOp, inputs: Vec<NodeId>) -> NodeId {
        for &i in &inputs {
            assert!(i < self.nodes.len(), "input {i} not yet defined");
        }
        let shape = self.infer_shape(&op, &inputs);
        self.push(Node {
            name: name.into(),
            op,
            inputs,
            shape,
        })
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn infer_shape(&self, op: &LayerOp, inputs: &[NodeId]) -> Vec<i64> {
        let input_shape = |i: usize| self.nodes[inputs[i]].shape.clone();
        match op {
            LayerOp::Input { shape } => shape.clone(),
            LayerOp::Conv2d(c) => vec![c.batch, c.out_channels, c.out_height(), c.out_width()],
            LayerOp::DepthwiseConv2d(c) => {
                vec![c.batch, c.in_channels, c.out_height(), c.out_width()]
            }
            LayerOp::Gemm { m, n, .. } => vec![*m, *n],
            LayerOp::Bmm { b, m, n, .. } => vec![*b, *m, *n],
            LayerOp::BiasAdd
            | LayerOp::Relu
            | LayerOp::Gelu
            | LayerOp::LayerNorm
            | LayerOp::Softmax => {
                assert!(!inputs.is_empty(), "element-wise op needs an input");
                input_shape(0)
            }
            LayerOp::Add => {
                assert_eq!(inputs.len(), 2, "add needs two inputs");
                let (a, b) = (input_shape(0), input_shape(1));
                assert_eq!(a, b, "add shape mismatch: {a:?} vs {b:?}");
                a
            }
            LayerOp::MaxPool { k, s } => {
                let mut sh = input_shape(0);
                assert_eq!(sh.len(), 4, "max_pool expects NCHW");
                sh[2] = (sh[2] - k) / s + 1;
                sh[3] = (sh[3] - k) / s + 1;
                sh
            }
            LayerOp::GlobalAvgPool => {
                let sh = input_shape(0);
                assert_eq!(sh.len(), 4, "global_avg_pool expects NCHW");
                vec![sh[0], sh[1]]
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Ids of nodes that read `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Output element count of a node.
    pub fn output_elems(&self, id: NodeId) -> i64 {
        self.nodes[id].shape.iter().product()
    }

    /// Total MAC flops of the graph (tuned work).
    pub fn mac_flops(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                LayerOp::Conv2d(c) => {
                    (2 * c.batch
                        * c.out_channels
                        * c.out_height()
                        * c.out_width()
                        * c.in_channels
                        * c.kh
                        * c.kw) as u64
                }
                LayerOp::DepthwiseConv2d(c) => {
                    (2 * c.batch * c.in_channels * c.out_height() * c.out_width() * c.kh * c.kw)
                        as u64
                }
                LayerOp::Gemm { m, n: nn, k } => (2 * m * nn * k) as u64,
                LayerOp::Bmm { b, m, n: nn, k } => (2 * b * m * nn * k) as u64,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_infer_shapes() {
        let mut g = Graph::new();
        let x = g.input("x", vec![1, 3, 32, 32]);
        let cfg = Conv2dConfig::new(1, 32, 32, 3, 16, 3, 3, 1, 1);
        let c = g.add("conv", LayerOp::Conv2d(cfg), vec![x]);
        let r = g.add("relu", LayerOp::Relu, vec![c]);
        let p = g.add("pool", LayerOp::MaxPool { k: 2, s: 2 }, vec![r]);
        assert_eq!(g.node(c).shape, vec![1, 16, 32, 32]);
        assert_eq!(g.node(p).shape, vec![1, 16, 16, 16]);
        assert_eq!(g.consumers(c), vec![r]);
        assert!(g.mac_flops() > 0);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_reference_rejected() {
        let mut g = Graph::new();
        g.add("bad", LayerOp::Relu, vec![3]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_requires_matching_shapes() {
        let mut g = Graph::new();
        let a = g.input("a", vec![1, 8]);
        let b = g.input("b", vec![1, 9]);
        g.add("sum", LayerOp::Add, vec![a, b]);
    }

    #[test]
    fn classification_helpers() {
        assert!(LayerOp::Gemm { m: 1, n: 1, k: 1 }.is_mac());
        assert!(LayerOp::Relu.is_epilogue());
        assert!(!LayerOp::Softmax.is_epilogue());
        assert!(LayerOp::Softmax.elementwise_ops_per_output() > 1);
    }
}
