//! Property tests of the fusion pass: on randomly generated layer chains,
//! every non-input node is assigned to exactly one fused layer, anchors
//! are never epilogues of other layers, and fusion preserves execution
//! order.

use heron_graph::{fuse, Graph, LayerOp};
use heron_tensor::ops::Conv2dConfig;
use proptest::prelude::*;

/// Random op choice appended to a chain.
#[derive(Debug, Clone, Copy)]
enum Step {
    Conv,
    Relu,
    Bias,
    Pool,
    Gelu,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Conv),
        Just(Step::Relu),
        Just(Step::Bias),
        Just(Step::Pool),
        Just(Step::Gelu),
    ]
}

fn build_chain(steps: &[Step]) -> Graph {
    let mut g = Graph::new();
    let mut node = g.input("x", vec![1, 8, 32, 32]);
    let mut hw = 32i64;
    for (i, s) in steps.iter().enumerate() {
        node = match s {
            Step::Conv => g.add(
                format!("conv{i}"),
                LayerOp::Conv2d(Conv2dConfig::new(1, hw, hw, 8, 8, 3, 3, 1, 1)),
                vec![node],
            ),
            Step::Relu => g.add(format!("relu{i}"), LayerOp::Relu, vec![node]),
            Step::Bias => g.add(format!("bias{i}"), LayerOp::BiasAdd, vec![node]),
            Step::Gelu => g.add(format!("gelu{i}"), LayerOp::Gelu, vec![node]),
            Step::Pool => {
                if hw >= 4 {
                    hw /= 2;
                    g.add(format!("pool{i}"), LayerOp::MaxPool { k: 2, s: 2 }, vec![node])
                } else {
                    g.add(format!("relu{i}"), LayerOp::Relu, vec![node])
                }
            }
        };
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fusion_partitions_the_graph(steps in proptest::collection::vec(step(), 1..16)) {
        let g = build_chain(&steps);
        let fused = fuse::fuse(&g);

        // Every non-input node appears exactly once (as anchor or epilogue).
        let mut seen = vec![0usize; g.len()];
        for layer in &fused.layers {
            seen[layer.anchor] += 1;
            for &e in &layer.epilogue {
                seen[e] += 1;
            }
        }
        for (id, node) in g.nodes().iter().enumerate() {
            let expected = usize::from(!matches!(node.op, LayerOp::Input { .. }));
            prop_assert_eq!(
                seen[id], expected,
                "node {} assigned {} times", node.name, seen[id]
            );
        }

        // Epilogues are element-wise; anchors are not absorbed elsewhere.
        for layer in &fused.layers {
            for &e in &layer.epilogue {
                prop_assert!(g.node(e).op.is_epilogue());
            }
        }

        // Anchors appear in topological order.
        let anchors: Vec<usize> = fused.layers.iter().map(|l| l.anchor).collect();
        let mut sorted = anchors.clone();
        sorted.sort_unstable();
        prop_assert_eq!(anchors, sorted, "fused layers out of order");
    }

    #[test]
    fn epilogues_follow_their_anchor_contiguously(steps in proptest::collection::vec(step(), 1..16)) {
        // In a pure chain, a MAC layer's epilogue is exactly the maximal run
        // of element-wise steps following it.
        let g = build_chain(&steps);
        let fused = fuse::fuse(&g);
        for layer in &fused.layers {
            if g.node(layer.anchor).op.is_mac() {
                let mut expect = layer.anchor;
                for &e in &layer.epilogue {
                    prop_assert_eq!(g.node(e).inputs[0], expect, "epilogue chain broken");
                    expect = e;
                }
            } else {
                prop_assert!(layer.epilogue.is_empty(), "non-MAC anchors absorb nothing");
            }
        }
    }
}
