//! Property tests of the fusion pass: on randomly generated layer chains,
//! every non-input node is assigned to exactly one fused layer, anchors
//! are never epilogues of other layers, and fusion preserves execution
//! order. (heron-testkit harness; see DESIGN.md, "Zero-dependency &
//! determinism policy".)

use heron_graph::{fuse, Graph, LayerOp};
use heron_tensor::ops::Conv2dConfig;
use heron_testkit::{property_cases, Gen};

/// Random op choice appended to a chain.
#[derive(Debug, Clone, Copy)]
enum Step {
    Conv,
    Relu,
    Bias,
    Pool,
    Gelu,
}

fn step(g: &mut Gen) -> Step {
    *g.pick(&[Step::Conv, Step::Relu, Step::Bias, Step::Pool, Step::Gelu])
}

fn build_chain(steps: &[Step]) -> Graph {
    let mut g = Graph::new();
    let mut node = g.input("x", vec![1, 8, 32, 32]);
    let mut hw = 32i64;
    for (i, s) in steps.iter().enumerate() {
        node = match s {
            Step::Conv => g.add(
                format!("conv{i}"),
                LayerOp::Conv2d(Conv2dConfig::new(1, hw, hw, 8, 8, 3, 3, 1, 1)),
                vec![node],
            ),
            Step::Relu => g.add(format!("relu{i}"), LayerOp::Relu, vec![node]),
            Step::Bias => g.add(format!("bias{i}"), LayerOp::BiasAdd, vec![node]),
            Step::Gelu => g.add(format!("gelu{i}"), LayerOp::Gelu, vec![node]),
            Step::Pool => {
                if hw >= 4 {
                    hw /= 2;
                    g.add(
                        format!("pool{i}"),
                        LayerOp::MaxPool { k: 2, s: 2 },
                        vec![node],
                    )
                } else {
                    g.add(format!("relu{i}"), LayerOp::Relu, vec![node])
                }
            }
        };
    }
    g
}

#[test]
fn fusion_partitions_the_graph() {
    property_cases("fusion_partitions_the_graph", 256, |gen| {
        let steps = gen.vec(1, 15, step);
        let g = build_chain(&steps);
        let fused = fuse::fuse(&g);

        // Every non-input node appears exactly once (as anchor or epilogue).
        let mut seen = vec![0usize; g.len()];
        for layer in &fused.layers {
            seen[layer.anchor] += 1;
            for &e in &layer.epilogue {
                seen[e] += 1;
            }
        }
        for (id, node) in g.nodes().iter().enumerate() {
            let expected = usize::from(!matches!(node.op, LayerOp::Input { .. }));
            assert_eq!(
                seen[id], expected,
                "node {} assigned {} times",
                node.name, seen[id]
            );
        }

        // Epilogues are element-wise; anchors are not absorbed elsewhere.
        for layer in &fused.layers {
            for &e in &layer.epilogue {
                assert!(g.node(e).op.is_epilogue());
            }
        }

        // Anchors appear in topological order.
        let anchors: Vec<usize> = fused.layers.iter().map(|l| l.anchor).collect();
        let mut sorted = anchors.clone();
        sorted.sort_unstable();
        assert_eq!(anchors, sorted, "fused layers out of order");
    });
}

#[test]
fn epilogues_follow_their_anchor_contiguously() {
    property_cases("epilogues_follow_their_anchor_contiguously", 256, |gen| {
        // In a pure chain, a MAC layer's epilogue is exactly the maximal run
        // of element-wise steps following it.
        let steps = gen.vec(1, 15, step);
        let g = build_chain(&steps);
        let fused = fuse::fuse(&g);
        for layer in &fused.layers {
            if g.node(layer.anchor).op.is_mac() {
                let mut expect = layer.anchor;
                for &e in &layer.epilogue {
                    assert_eq!(g.node(e).inputs[0], expect, "epilogue chain broken");
                    expect = e;
                }
            } else {
                assert!(layer.epilogue.is_empty(), "non-MAC anchors absorb nothing");
            }
        }
    });
}
