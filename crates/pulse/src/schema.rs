//! Structural validator for `heron-pulse-v1` documents.
//!
//! `heron_status` runs every input file through [`validate_pulse`]
//! before rendering, so a truncated or hand-edited `pulse.json` fails
//! with a named path instead of a blank dashboard.

use heron_trace::Json;

use crate::sli::PULSE_SCHEMA;

fn want<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{path}: missing member `{key}`"))
}

fn want_num(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    want(doc, path, key)?
        .as_f64()
        .ok_or_else(|| format!("{path}.{key}: expected a number"))
}

fn want_str<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a str, String> {
    want(doc, path, key)?
        .as_str()
        .ok_or_else(|| format!("{path}.{key}: expected a string"))
}

fn want_arr<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a [Json], String> {
    want(doc, path, key)?
        .as_arr()
        .ok_or_else(|| format!("{path}.{key}: expected an array"))
}

fn want_num_or_null(doc: &Json, path: &str, key: &str) -> Result<(), String> {
    match want(doc, path, key)? {
        Json::Num(_) | Json::Null => Ok(()),
        _ => Err(format!("{path}.{key}: expected a number or null")),
    }
}

/// The per-job SLI names every document carries (and the names an SLO
/// spec may reference per-job).
pub const SLI_KEYS: [&str; 6] = [
    "queue_wait_s",
    "recovery_max_s",
    "makespan_s",
    "ttfc_s",
    "sol_per_kprop",
    "rank_accuracy_final",
];

/// Validates the structure of a `pulse.json` document.
///
/// # Errors
/// A message naming the offending JSON path.
pub fn validate_pulse(doc: &Json) -> Result<(), String> {
    let schema = want_str(doc, "$", "schema")?;
    if schema != PULSE_SCHEMA {
        return Err(format!(
            "$.schema: expected `{PULSE_SCHEMA}`, found `{schema}`"
        ));
    }
    let service = want(doc, "$", "service")?;
    for key in [
        "jobs",
        "completed",
        "preempted",
        "quarantined",
        "queued",
        "rejected",
        "reject_rate",
        "warnings",
        "workers",
    ] {
        want_num(service, "$.service", key)?;
    }
    let jobs = want_arr(doc, "$", "jobs")?;
    for (i, job) in jobs.iter().enumerate() {
        let path = format!("$.jobs[{i}]");
        want_str(job, &path, "id")?;
        want_str(job, &path, "state")?;
        for key in [
            "attempts",
            "recoveries",
            "postmortems",
            "rounds",
            "trials",
            "wall_s",
        ] {
            want_num(job, &path, key)?;
        }
        match want(job, &path, "termination")? {
            Json::Str(_) | Json::Null => {}
            _ => return Err(format!("{path}.termination: expected a string or null")),
        }
        let warnings = want_arr(job, &path, "warnings")?;
        if warnings.iter().any(|w| w.as_str().is_none()) {
            return Err(format!("{path}.warnings: expected strings"));
        }
        let slis = want(job, &path, "slis")?;
        for key in SLI_KEYS {
            want_num_or_null(slis, &format!("{path}.slis"), key)?;
        }
        let traj = want(job, &path, "trajectories")?;
        let acc = want_arr(traj, &format!("{path}.trajectories"), "batch_rank_accuracy")?;
        let props = want_arr(traj, &format!("{path}.trajectories"), "solver_propagations")?;
        if acc.len() != props.len() {
            return Err(format!(
                "{path}.trajectories: series lengths differ ({} vs {})",
                acc.len(),
                props.len()
            ));
        }
        let hot = want_arr(job, &path, "hot_spans")?;
        for (j, span) in hot.iter().enumerate() {
            let span_path = format!("{path}.hot_spans[{j}]");
            want_str(span, &span_path, "name")?;
            want_num(span, &span_path, "count")?;
            want_num(span, &span_path, "total_s")?;
        }
    }
    let slo = want(doc, "$", "slo")?;
    for key in ["pass", "warn", "breach"] {
        want_num(slo, "$.slo", key)?;
    }
    let rules = want_arr(slo, "$.slo", "rules")?;
    for (i, rule) in rules.iter().enumerate() {
        let path = format!("$.slo.rules[{i}]");
        want_str(rule, &path, "metric")?;
        let op = want_str(rule, &path, "op")?;
        if op != "<=" && op != ">=" {
            return Err(format!("{path}.op: expected `<=` or `>=`, found `{op}`"));
        }
        want_num(rule, &path, "threshold")?;
        want_num_or_null(rule, &path, "warn")?;
        want_num_or_null(rule, &path, "value")?;
        match want(rule, &path, "job")? {
            Json::Str(_) | Json::Null => {}
            _ => return Err(format!("{path}.job: expected a string or null")),
        }
        let verdict = want_str(rule, &path, "verdict")?;
        if !matches!(verdict, "pass" | "warn" | "breach") {
            return Err(format!("{path}.verdict: unknown verdict `{verdict}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{JobInput, PulseConfig, ServiceInput};
    use crate::sli::build_pulse;
    use crate::slo::SloSpec;
    use heron_trace::json::parse;

    fn sample() -> Json {
        let input = ServiceInput {
            config: PulseConfig {
                backoff_base_s: 1.0,
                checkpoint_every: 2,
                workers: 1,
            },
            jobs: vec![JobInput {
                id: "a".to_string(),
                state: "completed".to_string(),
                attempts: 1,
                recoveries: 0,
                rounds: 3,
                trials: 12,
                termination: Some("trials-exhausted".to_string()),
                warnings: vec!["pulse.warn.heartbeat_stall attempt=1".to_string()],
                insight_json: String::new(),
                metrics_tsv: String::new(),
                wall_ns: 1_500_000_000,
                trace_jsonl: String::new(),
                postmortems: 1,
            }],
            rejected: Vec::new(),
        };
        let spec = SloSpec::parse("reject_rate <= 0.5\nmakespan_s <= 60 warn 30\n").unwrap();
        build_pulse(&input, &spec)
    }

    #[test]
    fn accepts_generated_documents_and_roundtrips() {
        let doc = sample();
        validate_pulse(&doc).expect("valid");
        let reparsed = parse(&doc.render_pretty()).expect("parses");
        validate_pulse(&reparsed).expect("still valid");
    }

    #[test]
    fn rejects_structural_damage_with_named_paths() {
        let base = sample().render();
        for (damage, want_msg) in [
            ("heron-pulse-v1", "heron-pulse-v0", "$.schema"),
            (
                "\"reject_rate\":0",
                "\"reject_rate\":\"0\"",
                "$.service.reject_rate",
            ),
            (
                "\"queue_wait_s\":0",
                "\"queue_wait_s\":true",
                "$.jobs[0].slis.queue_wait_s",
            ),
            ("\"verdict\":\"pass\"", "\"verdict\":\"ok\"", "verdict"),
        ]
        .map(|(from, to, want)| (base.replace(from, to), want))
        {
            let doc = parse(&damage).expect("still JSON");
            let err = validate_pulse(&doc).unwrap_err();
            assert!(err.contains(want_msg), "want `{want_msg}` in `{err}`");
        }
    }
}
