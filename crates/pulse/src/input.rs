//! The deterministic projection of a finished service run that the
//! pulse engine folds into `pulse.json`.
//!
//! Everything here is a deterministic function of (job script, seeds,
//! chaos plan): manifest-grade job rows, per-job artifacts (insight
//! document, metrics snapshot, sliced session trace) and the simulated
//! wall-clock. Scheduling-dependent data (event interleavings, worker
//! ids, host wall-clock) is deliberately *absent*, which is what makes
//! `pulse.json` byte-identical across reruns of the same script.

/// Service configuration the SLI definitions depend on.
#[derive(Debug, Clone)]
pub struct PulseConfig {
    /// Recovery backoff base in simulated seconds (doubles per retry).
    pub backoff_base_s: f64,
    /// Periodic checkpoint cadence in rounds (0 = only on preempt).
    pub checkpoint_every: u64,
    /// Worker pool size.
    pub workers: usize,
}

/// One admitted job's deterministic outcome.
#[derive(Debug, Clone)]
pub struct JobInput {
    /// Job id.
    pub id: String,
    /// Final lifecycle state, rendered (`completed`, `quarantined`, …).
    pub state: String,
    /// Attempts started.
    pub attempts: u32,
    /// Recoveries performed.
    pub recoveries: u32,
    /// Lifetime rounds (0 when never reported).
    pub rounds: u64,
    /// Trials completed.
    pub trials: u64,
    /// Final termination for completed jobs.
    pub termination: Option<String>,
    /// Anomaly warnings recorded by the supervisor (`pulse.warn.*`).
    pub warnings: Vec<String>,
    /// Per-job `insight.json` (empty when unavailable).
    pub insight_json: String,
    /// Final attempt's metrics snapshot TSV (empty when unavailable).
    pub metrics_tsv: String,
    /// Final attempt's simulated wall-clock, nanoseconds.
    pub wall_ns: u64,
    /// Final attempt's session trace (ctx-stripped slice; empty when
    /// unavailable).
    pub trace_jsonl: String,
    /// Postmortem bundles emitted for this job (crash/hang/quarantine
    /// deaths; deterministic under a fixed chaos plan).
    pub postmortems: u64,
}

/// The whole service run, ready for [`crate::build_pulse`].
#[derive(Debug, Clone)]
pub struct ServiceInput {
    /// Service configuration.
    pub config: PulseConfig,
    /// Every admitted job in id order.
    pub jobs: Vec<JobInput>,
    /// Rejected submissions as `(id, reason)` in submission order.
    pub rejected: Vec<(String, String)>,
}
