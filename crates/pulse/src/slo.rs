//! The declarative SLO spec: one threshold rule per line, evaluated
//! against the SLIs in a `pulse.json` document.
//!
//! ```text
//! # comments and blank lines are skipped
//! reject_rate    <= 0.2
//! recovery_max_s <= 40
//! sol_per_kprop  >= 1.0 warn 2.0
//! ```
//!
//! A rule names a metric (a service-level SLI or a per-job SLI — the
//! evaluator looks the name up in both places), a direction, a breach
//! threshold, and an optional tighter `warn` threshold. All thresholds
//! are in *simulated* time/units: the service clock advances only by
//! charged simulated seconds, so an SLO like `recovery_max_s <= 40`
//! means 40 simulated seconds regardless of host speed.

/// Rule direction: the SLI must stay below (`<=`) or above (`>=`) the
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Value must be `<=` the threshold.
    Le,
    /// Value must be `>=` the threshold.
    Ge,
}

impl SloOp {
    /// The spelling used in specs and reports.
    pub fn symbol(self) -> &'static str {
        match self {
            SloOp::Le => "<=",
            SloOp::Ge => ">=",
        }
    }

    /// Whether `value` violates a bound of this direction.
    pub fn violates(self, value: f64, bound: f64) -> bool {
        match self {
            SloOp::Le => value > bound,
            SloOp::Ge => value < bound,
        }
    }
}

/// One SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// SLI name (`reject_rate`, `recovery_max_s`, …).
    pub metric: String,
    /// Direction.
    pub op: SloOp,
    /// Breach threshold.
    pub threshold: f64,
    /// Optional tighter warn threshold.
    pub warn: Option<f64>,
}

/// A parsed SLO spec: the rules in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloSpec {
    /// The rules, in spec order.
    pub rules: Vec<SloRule>,
}

impl SloSpec {
    /// A spec with no rules (everything passes).
    pub fn empty() -> Self {
        SloSpec::default()
    }

    /// Parses a spec document.
    ///
    /// # Errors
    /// A message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 3 && toks.len() != 5 {
                return Err(format!(
                    "line {}: expected `metric <=|>= value [warn value]`, got `{line}`",
                    idx + 1
                ));
            }
            let op = match toks[1] {
                "<=" => SloOp::Le,
                ">=" => SloOp::Ge,
                other => {
                    return Err(format!("line {}: unknown operator `{other}`", idx + 1));
                }
            };
            let num = |s: &str| {
                s.parse::<f64>()
                    .map_err(|_| format!("line {}: `{s}` is not a number", idx + 1))
            };
            let threshold = num(toks[2])?;
            let warn = if toks.len() == 5 {
                if toks[3] != "warn" {
                    return Err(format!(
                        "line {}: expected `warn <value>`, got `{} {}`",
                        idx + 1,
                        toks[3],
                        toks[4]
                    ));
                }
                Some(num(toks[4])?)
            } else {
                None
            };
            rules.push(SloRule {
                metric: toks[0].to_string(),
                op,
                threshold,
                warn,
            });
        }
        Ok(SloSpec { rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_comments_and_warn_bounds() {
        let spec = SloSpec::parse(
            "\
# service health
reject_rate <= 0.2

recovery_max_s <= 40 warn 10
sol_per_kprop >= 1.5
",
        )
        .expect("parses");
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(spec.rules[0].metric, "reject_rate");
        assert_eq!(spec.rules[0].op, SloOp::Le);
        assert_eq!(spec.rules[1].warn, Some(10.0));
        assert_eq!(spec.rules[2].op, SloOp::Ge);
        assert!(SloOp::Le.violates(0.3, 0.2));
        assert!(!SloOp::Le.violates(0.2, 0.2));
        assert!(SloOp::Ge.violates(1.0, 1.5));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (bad, want) in [
            ("metric", "line 1"),
            ("m < 1", "unknown operator"),
            ("m <= x", "not a number"),
            ("m <= 1 alert 2", "expected `warn"),
        ] {
            let err = SloSpec::parse(bad).unwrap_err();
            assert!(err.contains(want), "{bad} → {err}");
        }
    }
}
