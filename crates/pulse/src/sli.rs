//! SLI computation and `pulse.json` assembly (`heron-pulse-v1`).
//!
//! Every SLI is defined in **simulated time** over the deterministic
//! projection in [`crate::ServiceInput`] (DESIGN.md §10):
//!
//! * `queue_wait_s` — total simulated time the job spent waiting to be
//!   (re)assigned: the sum of its recovery backoffs,
//!   `Σ_{k=1..recoveries} base·2^(k-1)`. Initial assignment consumes
//!   no simulated time.
//! * `recovery_max_s` — the largest single crash-detect→resumed
//!   latency, `base·2^(recoveries-1)` (0 with no recoveries).
//! * `makespan_s` — final attempt's simulated wall-clock plus the
//!   queue wait.
//! * `ttfc_s` — time to first checkpoint within the final attempt: the
//!   close timestamp of its `checkpoint_every`-th top-level
//!   `tuner.step` span (the attempt's wall-clock when it ran fewer
//!   rounds than a checkpoint period).
//! * `sol_per_kprop` — solver throughput, `1000·csp.solutions /
//!   csp.propagations` from the attempt's metrics snapshot.
//! * `rank_accuracy_final` — the last recorded per-round
//!   `batch_rank_accuracy` from the job's insight document.
//!
//! The document also carries per-round trajectories
//! (`batch_rank_accuracy`, `solver_propagations`), the top hottest
//! spans per job (via the trace slicer), and the SLO verdicts
//! ([`attach_slo`]).

use heron_trace::json::{self, Json};
use heron_trace::{check_trace, Json as J};

use crate::input::{JobInput, ServiceInput};
use crate::slo::{SloOp, SloSpec};

/// The schema identifier stamped into every document.
pub const PULSE_SCHEMA: &str = "heron-pulse-v1";

/// How many hottest spans each job records in `pulse.json`.
pub const HOT_SPANS: usize = 5;

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

/// Solver throughput from a metrics TSV snapshot:
/// `1000 · csp.solutions / csp.propagations`, or `None` when either
/// counter is missing or no propagation happened.
pub fn sol_per_kprop_from_tsv(tsv: &str) -> Option<f64> {
    let mut solutions: Option<f64> = None;
    let mut propagations: Option<f64> = None;
    for line in tsv.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 3 {
            continue;
        }
        match cols[0] {
            "csp.solutions" => solutions = cols[2].parse().ok(),
            "csp.propagations" => propagations = cols[2].parse().ok(),
            _ => {}
        }
    }
    match (solutions, propagations) {
        (Some(sol), Some(prop)) if prop > 0.0 => Some(1000.0 * sol / prop),
        _ => None,
    }
}

/// Total simulated backoff wait across `recoveries` recoveries
/// (`Σ base·2^(k-1)` = `base·(2^recoveries − 1)`).
pub fn backoff_wait_s(base_s: f64, recoveries: u32) -> f64 {
    base_s * (f64::powi(2.0, recoveries as i32) - 1.0)
}

/// The largest single backoff: `base·2^(recoveries−1)`, 0 when the job
/// never recovered.
pub fn backoff_last_s(base_s: f64, recoveries: u32) -> f64 {
    if recoveries == 0 {
        0.0
    } else {
        base_s * f64::powi(2.0, recoveries as i32 - 1)
    }
}

/// Per-round trajectories pulled from a job's insight document.
fn trajectories(insight_json: &str) -> (Json, Option<f64>) {
    let mut rank = Vec::new();
    let mut props = Vec::new();
    let mut rank_final = None;
    if let Ok(doc) = json::parse(insight_json) {
        if let Some(J::Arr(rounds)) = doc.get("rounds") {
            for round in rounds {
                let acc = round.get("batch_rank_accuracy").and_then(J::as_f64);
                if let Some(a) = acc {
                    rank_final = Some(a);
                }
                rank.push(opt_num(acc));
                props.push(opt_num(
                    round.get("solver_propagations").and_then(J::as_f64),
                ));
            }
        }
    }
    let traj = Json::Obj(vec![
        ("batch_rank_accuracy".to_string(), Json::Arr(rank)),
        ("solver_propagations".to_string(), Json::Arr(props)),
    ]);
    (traj, rank_final)
}

/// The job's hottest spans (name, count, total seconds) and its
/// time-to-first-checkpoint, both from the sliced session trace.
fn slice_stats(job: &JobInput, checkpoint_every: u64) -> (Json, Option<f64>) {
    let Ok(summary) = check_trace(&job.trace_jsonl) else {
        return (Json::Arr(Vec::new()), None);
    };
    if summary.spans.is_empty() {
        return (Json::Arr(Vec::new()), None);
    }
    // Hottest spans: aggregate by name, total-time descending,
    // name-ascending on ties.
    let mut by_name: Vec<(String, u64, u64)> = Vec::new();
    for span in &summary.spans {
        match by_name.iter_mut().find(|(n, _, _)| *n == span.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += span.dur_ns();
            }
            None => by_name.push((span.name.clone(), 1, span.dur_ns())),
        }
    }
    by_name.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    let hot: Vec<Json> = by_name
        .iter()
        .take(HOT_SPANS)
        .map(|(name, count, total_ns)| {
            Json::Obj(vec![
                ("name".to_string(), s(name)),
                ("count".to_string(), num(*count as f64)),
                ("total_s".to_string(), num(*total_ns as f64 / 1e9)),
            ])
        })
        .collect();
    // Time to first checkpoint: close of the checkpoint_every-th
    // top-level tuner.step, else the attempt's whole wall-clock.
    let steps: Vec<u64> = summary
        .spans
        .iter()
        .filter(|sp| sp.parent == 0 && sp.name == "tuner.step")
        .map(|sp| sp.t_close_ns)
        .collect();
    let k = checkpoint_every.max(1) as usize;
    let ttfc_ns = if steps.is_empty() {
        job.wall_ns
    } else {
        steps.get(k - 1).copied().unwrap_or(job.wall_ns)
    };
    (Json::Arr(hot), Some(ttfc_ns as f64 / 1e9))
}

fn job_json(job: &JobInput, input: &ServiceInput) -> Json {
    let base = input.config.backoff_base_s;
    let queue_wait_s = backoff_wait_s(base, job.recoveries);
    let recovery_max_s = backoff_last_s(base, job.recoveries);
    let completed = job.state == "completed";
    let wall_s = job.wall_ns as f64 / 1e9;
    let (hot_spans, ttfc_s) = slice_stats(job, input.config.checkpoint_every);
    let (traj, rank_final) = trajectories(&job.insight_json);
    let slis = Json::Obj(vec![
        ("queue_wait_s".to_string(), num(queue_wait_s)),
        ("recovery_max_s".to_string(), num(recovery_max_s)),
        (
            "makespan_s".to_string(),
            if completed {
                num(wall_s + queue_wait_s)
            } else {
                Json::Null
            },
        ),
        ("ttfc_s".to_string(), opt_num(ttfc_s)),
        (
            "sol_per_kprop".to_string(),
            opt_num(sol_per_kprop_from_tsv(&job.metrics_tsv)),
        ),
        ("rank_accuracy_final".to_string(), opt_num(rank_final)),
    ]);
    Json::Obj(vec![
        ("id".to_string(), s(&job.id)),
        ("state".to_string(), s(&job.state)),
        ("attempts".to_string(), num(f64::from(job.attempts))),
        ("recoveries".to_string(), num(f64::from(job.recoveries))),
        ("postmortems".to_string(), num(job.postmortems as f64)),
        ("rounds".to_string(), num(job.rounds as f64)),
        ("trials".to_string(), num(job.trials as f64)),
        (
            "termination".to_string(),
            job.termination.as_deref().map_or(Json::Null, s),
        ),
        ("wall_s".to_string(), num(wall_s)),
        (
            "warnings".to_string(),
            Json::Arr(job.warnings.iter().map(|w| s(w)).collect()),
        ),
        ("slis".to_string(), slis),
        ("trajectories".to_string(), traj),
        ("hot_spans".to_string(), hot_spans),
    ])
}

/// Assembles the `pulse.json` document for a finished service run and
/// evaluates the SLO spec into its `slo` section.
pub fn build_pulse(input: &ServiceInput, spec: &SloSpec) -> Json {
    let count = |state: &str| input.jobs.iter().filter(|j| j.state == state).count() as f64;
    let admitted = input.jobs.len() as f64;
    let rejected = input.rejected.len() as f64;
    let reject_rate = if admitted + rejected > 0.0 {
        rejected / (admitted + rejected)
    } else {
        0.0
    };
    let warnings: usize = input.jobs.iter().map(|j| j.warnings.len()).sum();
    let service = Json::Obj(vec![
        ("jobs".to_string(), num(admitted)),
        ("completed".to_string(), num(count("completed"))),
        ("preempted".to_string(), num(count("preempted"))),
        ("quarantined".to_string(), num(count("quarantined"))),
        ("queued".to_string(), num(count("queued"))),
        ("rejected".to_string(), num(rejected)),
        ("reject_rate".to_string(), num(reject_rate)),
        ("warnings".to_string(), num(warnings as f64)),
        ("workers".to_string(), num(input.config.workers as f64)),
    ]);
    let jobs = Json::Arr(input.jobs.iter().map(|j| job_json(j, input)).collect());
    let doc = Json::Obj(vec![
        ("schema".to_string(), s(PULSE_SCHEMA)),
        ("service".to_string(), service),
        ("jobs".to_string(), jobs),
    ]);
    attach_slo(doc, spec)
}

/// The `(job, value)` samples a metric name resolves to: the service
/// SLI of that name if one exists, else the non-null per-job SLI from
/// every job. Unknown names resolve to no samples (the rule passes and
/// its report row says so).
fn metric_samples(doc: &Json, metric: &str) -> Vec<(Option<String>, f64)> {
    if let Some(v) = doc.get("service").and_then(|svc| svc.get(metric)) {
        if let Some(n) = v.as_f64() {
            return vec![(None, n)];
        }
    }
    let mut samples = Vec::new();
    if let Some(J::Arr(jobs)) = doc.get("jobs") {
        for job in jobs {
            let id = job.get("id").and_then(J::as_str).unwrap_or("?").to_string();
            if let Some(v) = job
                .get("slis")
                .and_then(|slis| slis.get(metric))
                .and_then(J::as_f64)
            {
                samples.push((Some(id), v));
            }
        }
    }
    samples
}

/// Evaluates `spec` against the SLIs already in `doc` and replaces (or
/// adds) the document's `slo` section. `heron_status --slo` uses this
/// to re-judge an existing `pulse.json` under a different spec.
pub fn attach_slo(doc: Json, spec: &SloSpec) -> Json {
    let mut rules = Vec::new();
    let (mut pass, mut warn, mut breach) = (0u32, 0u32, 0u32);
    for rule in &spec.rules {
        let samples = metric_samples(&doc, &rule.metric);
        // Worst sample: the one closest to (or furthest past) the bound.
        let worst = samples.iter().reduce(|a, b| match rule.op {
            SloOp::Le => {
                if b.1 > a.1 {
                    b
                } else {
                    a
                }
            }
            SloOp::Ge => {
                if b.1 < a.1 {
                    b
                } else {
                    a
                }
            }
        });
        let verdict = match worst {
            None => "pass",
            Some((_, v)) if rule.op.violates(*v, rule.threshold) => "breach",
            Some((_, v)) if rule.warn.is_some_and(|w| rule.op.violates(*v, w)) => "warn",
            Some(_) => "pass",
        };
        match verdict {
            "breach" => breach += 1,
            "warn" => warn += 1,
            _ => pass += 1,
        }
        rules.push(Json::Obj(vec![
            ("metric".to_string(), s(&rule.metric)),
            ("op".to_string(), s(rule.op.symbol())),
            ("threshold".to_string(), num(rule.threshold)),
            ("warn".to_string(), opt_num(rule.warn)),
            ("value".to_string(), opt_num(worst.map(|(_, v)| *v))),
            (
                "job".to_string(),
                worst
                    .and_then(|(job, _)| job.as_deref())
                    .map_or(Json::Null, s),
            ),
            ("verdict".to_string(), s(verdict)),
        ]));
    }
    let slo = Json::Obj(vec![
        ("rules".to_string(), Json::Arr(rules)),
        ("pass".to_string(), num(f64::from(pass))),
        ("warn".to_string(), num(f64::from(warn))),
        ("breach".to_string(), num(f64::from(breach))),
    ]);
    match doc {
        Json::Obj(mut members) => {
            members.retain(|(k, _)| k != "slo");
            members.push(("slo".to_string(), slo));
            Json::Obj(members)
        }
        other => other,
    }
}

/// The number of breached rules in a pulse document (0 when absent).
pub fn breach_count(doc: &Json) -> u64 {
    doc.get("slo")
        .and_then(|slo| slo.get("breach"))
        .and_then(J::as_u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PulseConfig;
    use heron_trace::Tracer;

    fn session_trace(steps: usize, per_step_s: f64) -> (String, u64) {
        let t = Tracer::manual();
        for _ in 0..steps {
            let _s = t.span("tuner.step");
            {
                let _m = t.span("measure.batch");
                t.advance_s(per_step_s / 2.0);
            }
            t.advance_s(per_step_s / 2.0);
        }
        (t.to_jsonl(), t.now_ns())
    }

    fn job(id: &str, recoveries: u32) -> JobInput {
        let (trace_jsonl, wall_ns) = session_trace(4, 2.0);
        JobInput {
            id: id.to_string(),
            state: "completed".to_string(),
            attempts: recoveries + 1,
            recoveries,
            rounds: 4,
            trials: 16,
            termination: Some("trials-exhausted".to_string()),
            warnings: Vec::new(),
            insight_json: String::new(),
            metrics_tsv: "metric\ttype\tvalue\ncsp.solutions\tcounter\t50\ncsp.propagations\tcounter\t20000\n".to_string(),
            wall_ns,
            trace_jsonl,
            postmortems: 0,
        }
    }

    fn input(jobs: Vec<JobInput>) -> ServiceInput {
        ServiceInput {
            config: PulseConfig {
                backoff_base_s: 0.5,
                checkpoint_every: 2,
                workers: 2,
            },
            jobs,
            rejected: vec![("r1".to_string(), "queue full".to_string())],
        }
    }

    #[test]
    fn slis_are_exact_in_simulated_time() {
        let doc = build_pulse(&input(vec![job("a", 2)]), &SloSpec::empty());
        let jobs = doc.get("jobs").and_then(Json::as_arr).unwrap();
        let slis = jobs[0].get("slis").unwrap();
        let get = |k: &str| slis.get(k).and_then(Json::as_f64).unwrap();
        // backoffs 0.5 + 1.0; last backoff 1.0; wall 8s; ttfc = close of
        // 2nd step = 4s; 1000·50/20000 = 2.5.
        assert_eq!(get("queue_wait_s"), 1.5);
        assert_eq!(get("recovery_max_s"), 1.0);
        assert_eq!(get("makespan_s"), 9.5);
        assert_eq!(get("ttfc_s"), 4.0);
        assert_eq!(get("sol_per_kprop"), 2.5);
        assert_eq!(slis.get("rank_accuracy_final"), Some(&Json::Null));
        // reject_rate = 1 rejected / (1 admitted + 1 rejected).
        assert_eq!(
            doc.get("service").unwrap().get("reject_rate"),
            Some(&Json::Num(0.5))
        );
        let hot = jobs[0].get("hot_spans").and_then(Json::as_arr).unwrap();
        assert_eq!(
            hot[0].get("name").and_then(Json::as_str),
            Some("tuner.step")
        );
        assert_eq!(hot[0].get("total_s").and_then(Json::as_f64), Some(8.0));
    }

    #[test]
    fn slo_verdicts_pass_warn_breach_and_name_the_worst_job() {
        let spec = SloSpec::parse(
            "\
reject_rate <= 0.6
queue_wait_s <= 1.0
sol_per_kprop >= 1.0 warn 3.0
",
        )
        .unwrap();
        let doc = build_pulse(&input(vec![job("a", 0), job("b", 2)]), &spec);
        let slo = doc.get("slo").unwrap();
        assert_eq!(slo.get("pass").and_then(Json::as_u64), Some(1));
        assert_eq!(slo.get("warn").and_then(Json::as_u64), Some(1));
        assert_eq!(slo.get("breach").and_then(Json::as_u64), Some(1));
        assert_eq!(breach_count(&doc), 1);
        let rules = slo.get("rules").and_then(Json::as_arr).unwrap();
        // queue_wait_s breaches via job b (1.5 > 1.0).
        assert_eq!(
            rules[1].get("verdict").and_then(Json::as_str),
            Some("breach")
        );
        assert_eq!(rules[1].get("job").and_then(Json::as_str), Some("b"));
        assert_eq!(rules[1].get("value").and_then(Json::as_f64), Some(1.5));
        // sol_per_kprop 2.5 ≥ 1.0 but < warn 3.0.
        assert_eq!(rules[2].get("verdict").and_then(Json::as_str), Some("warn"));
        // Re-judging under a looser spec flips the breach to pass.
        let loose = SloSpec::parse("queue_wait_s <= 10\n").unwrap();
        let rejudged = attach_slo(doc, &loose);
        assert_eq!(breach_count(&rejudged), 0);
    }

    #[test]
    fn document_is_byte_stable() {
        let spec = SloSpec::parse("reject_rate <= 1\n").unwrap();
        let a = build_pulse(&input(vec![job("a", 1)]), &spec).render_pretty();
        let b = build_pulse(&input(vec![job("a", 1)]), &spec).render_pretty();
        assert_eq!(a, b);
        assert!(a.contains("heron-pulse-v1"));
    }
}
