//! `heron-pulse`: the service telemetry plane for `heron-serve`
//! (DESIGN.md §10).
//!
//! The crate folds a finished service run's deterministic projection —
//! manifest-grade job rows, per-job artifacts, and the sliced session
//! traces — into a schema-versioned `pulse.json` document
//! (`heron-pulse-v1`) of per-job SLIs, evaluates a declarative SLO
//! spec over it, and renders two human views: a pass/warn/breach SLO
//! report and the `heron_status` ops dashboard.
//!
//! Determinism contract: every SLI is defined in *simulated* time over
//! scheduling-independent inputs, so `pulse.json`, the SLO report and
//! the dashboard are byte-identical across reruns of the same service
//! script (pinned by `tests/serve_pulse.rs` and the verify.sh pulse
//! stage).
//!
//! # Example
//!
//! ```
//! use heron_pulse::{build_pulse, PulseConfig, ServiceInput, SloSpec};
//!
//! let input = ServiceInput {
//!     config: PulseConfig { backoff_base_s: 1.0, checkpoint_every: 2, workers: 2 },
//!     jobs: Vec::new(),
//!     rejected: Vec::new(),
//! };
//! let spec = SloSpec::parse("reject_rate <= 0.25\n").unwrap();
//! let doc = build_pulse(&input, &spec);
//! assert_eq!(heron_pulse::breach_count(&doc), 0);
//! heron_pulse::validate_pulse(&doc).unwrap();
//! ```

pub mod input;
pub mod report;
pub mod schema;
pub mod sli;
pub mod slo;

pub use input::{JobInput, PulseConfig, ServiceInput};
pub use report::{render_dashboard, render_slo_report};
pub use schema::{validate_pulse, SLI_KEYS};
pub use sli::{
    attach_slo, backoff_last_s, backoff_wait_s, breach_count, build_pulse, sol_per_kprop_from_tsv,
    HOT_SPANS, PULSE_SCHEMA,
};
pub use slo::{SloOp, SloRule, SloSpec};
