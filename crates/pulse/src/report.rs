//! Human-readable renderings of a pulse document: the SLO report and
//! the `heron_status` ops dashboard. Both are pure functions of the
//! document, so they are byte-stable whenever `pulse.json` is.

use heron_trace::Json;

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn int(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn text<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or("-")
}

/// `{:.3}` for numbers, `-` for null/absent.
fn cell(v: Option<&Json>) -> String {
    match v.and_then(Json::as_f64) {
        Some(n) => format!("{n:.3}"),
        None => "-".to_string(),
    }
}

fn rule_line(rule: &Json) -> String {
    let mut line = format!(
        "{} {} {}",
        text(rule, "metric"),
        text(rule, "op"),
        num(rule, "threshold")
    );
    if let Some(w) = rule.get("warn").and_then(Json::as_f64) {
        line.push_str(&format!(" warn {w}"));
    }
    match rule.get("value").and_then(Json::as_f64) {
        Some(v) => {
            line.push_str(&format!(" (worst {v:.3}"));
            if let Some(job) = rule.get("job").and_then(Json::as_str) {
                line.push_str(&format!(" on {job}"));
            }
            line.push(')');
        }
        None => line.push_str(" (no samples)"),
    }
    line
}

/// Renders the pass/warn/breach SLO report for a pulse document.
pub fn render_slo_report(doc: &Json) -> String {
    let slo = doc.get("slo").cloned().unwrap_or(Json::Obj(Vec::new()));
    let rules = slo.get("rules").and_then(Json::as_arr).unwrap_or(&[]);
    let (pass, warn, breach) = (int(&slo, "pass"), int(&slo, "warn"), int(&slo, "breach"));
    let mut out = String::from("# heron-pulse SLO report\n");
    out.push_str(&format!(
        "rules={} pass={pass} warn={warn} breach={breach}\n",
        rules.len()
    ));
    for rule in rules {
        let verdict = match text(rule, "verdict") {
            "breach" => "BREACH",
            "warn" => "WARN  ",
            _ => "PASS  ",
        };
        out.push_str(&format!("{verdict} {}\n", rule_line(rule)));
    }
    let verdict = if breach > 0 {
        "BREACH"
    } else if warn > 0 {
        "WARN"
    } else {
        "PASS"
    };
    out.push_str(&format!("verdict: {verdict}\n"));
    out
}

/// Jobs named as the worst sample of a breached rule.
fn breached_jobs(doc: &Json) -> Vec<&str> {
    let mut jobs = Vec::new();
    if let Some(rules) = doc
        .get("slo")
        .and_then(|s| s.get("rules"))
        .and_then(Json::as_arr)
    {
        for rule in rules {
            if rule.get("verdict").and_then(Json::as_str) == Some("breach") {
                if let Some(job) = rule.get("job").and_then(Json::as_str) {
                    if !jobs.contains(&job) {
                        jobs.push(job);
                    }
                }
            }
        }
    }
    jobs
}

/// Renders the deterministic ops dashboard for a pulse document,
/// listing up to `top` hottest spans per job.
pub fn render_dashboard(doc: &Json, top: usize) -> String {
    let empty = Vec::new();
    let service = doc.get("service").cloned().unwrap_or(Json::Obj(Vec::new()));
    let jobs = doc.get("jobs").and_then(Json::as_arr).unwrap_or(&empty);
    let breached = breached_jobs(doc);

    let mut out = String::from("# heron-serve status — heron-pulse-v1\n");
    out.push_str(&format!(
        "service: jobs={} completed={} preempted={} quarantined={} queued={} rejected={} \
         reject_rate={:.3} workers={} warnings={}\n",
        int(&service, "jobs"),
        int(&service, "completed"),
        int(&service, "preempted"),
        int(&service, "quarantined"),
        int(&service, "queued"),
        int(&service, "rejected"),
        num(&service, "reject_rate"),
        int(&service, "workers"),
        int(&service, "warnings"),
    ));
    if let Some(slo) = doc.get("slo") {
        out.push_str(&format!(
            "slo: pass={} warn={} breach={}\n",
            int(slo, "pass"),
            int(slo, "warn"),
            int(slo, "breach")
        ));
    }
    out.push('\n');

    // Per-job table. Column widths are fixed except the id column.
    let id_w = jobs
        .iter()
        .map(|j| text(j, "id").len())
        .chain(std::iter::once(2))
        .max()
        .unwrap_or(2);
    out.push_str(&format!(
        "{:<id_w$}  {:<12} {:>3} {:>3} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}  flags\n",
        "id",
        "state",
        "att",
        "rec",
        "rounds",
        "trials",
        "wait_s",
        "recov_s",
        "make_s",
        "ttfc_s",
        "sol/kp",
        "rank",
    ));
    for job in jobs {
        let id = text(job, "id");
        let slis = job.get("slis");
        let warnings = job.get("warnings").and_then(Json::as_arr).unwrap_or(&[]);
        let mut flags = String::new();
        if !warnings.is_empty() {
            flags.push('W');
        }
        if breached.contains(&id) {
            flags.push('!');
        }
        if flags.is_empty() {
            flags.push('-');
        }
        out.push_str(&format!(
            "{:<id_w$}  {:<12} {:>3} {:>3} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}  {}\n",
            id,
            text(job, "state"),
            int(job, "attempts"),
            int(job, "recoveries"),
            int(job, "rounds"),
            int(job, "trials"),
            cell(slis.and_then(|s| s.get("queue_wait_s"))),
            cell(slis.and_then(|s| s.get("recovery_max_s"))),
            cell(slis.and_then(|s| s.get("makespan_s"))),
            cell(slis.and_then(|s| s.get("ttfc_s"))),
            cell(slis.and_then(|s| s.get("sol_per_kprop"))),
            cell(slis.and_then(|s| s.get("rank_accuracy_final"))),
            flags,
        ));
    }

    out.push_str(&format!("\nhot spans (top {top} per job)\n"));
    for job in jobs {
        let hot = job.get("hot_spans").and_then(Json::as_arr).unwrap_or(&[]);
        if hot.is_empty() {
            continue;
        }
        let rendered: Vec<String> = hot
            .iter()
            .take(top)
            .map(|s| {
                format!(
                    "{} {}x {:.3}s",
                    text(s, "name"),
                    int(s, "count"),
                    num(s, "total_s")
                )
            })
            .collect();
        out.push_str(&format!("  {}: {}\n", text(job, "id"), rendered.join("; ")));
    }

    let warn_lines: Vec<String> = jobs
        .iter()
        .flat_map(|job| {
            job.get("warnings")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(Json::as_str)
                .map(|w| format!("  {}: {w}\n", text(job, "id")))
                .collect::<Vec<_>>()
        })
        .collect();
    if !warn_lines.is_empty() {
        out.push_str("\nwarnings\n");
        for line in warn_lines {
            out.push_str(&line);
        }
    }

    if let Some(rules) = doc
        .get("slo")
        .and_then(|s| s.get("rules"))
        .and_then(Json::as_arr)
    {
        let breaches: Vec<&Json> = rules
            .iter()
            .filter(|r| r.get("verdict").and_then(Json::as_str) == Some("breach"))
            .collect();
        if !breaches.is_empty() {
            out.push_str("\nbreaches\n");
            for rule in breaches {
                out.push_str(&format!("  {}\n", rule_line(rule)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{JobInput, PulseConfig, ServiceInput};
    use crate::sli::build_pulse;
    use crate::slo::SloSpec;

    fn doc() -> Json {
        let job = |id: &str, recoveries: u32, warnings: Vec<String>| JobInput {
            id: id.to_string(),
            state: "completed".to_string(),
            attempts: recoveries + 1,
            recoveries,
            rounds: 5,
            trials: 20,
            termination: Some("trials-exhausted".to_string()),
            warnings,
            insight_json: String::new(),
            metrics_tsv: String::new(),
            wall_ns: 2_000_000_000,
            trace_jsonl: String::new(),
            postmortems: 0,
        };
        let input = ServiceInput {
            config: PulseConfig {
                backoff_base_s: 1.0,
                checkpoint_every: 2,
                workers: 2,
            },
            jobs: vec![
                job("g1", 0, Vec::new()),
                job(
                    "g2",
                    2,
                    vec!["pulse.warn.heartbeat_stall attempt=1".to_string()],
                ),
            ],
            rejected: Vec::new(),
        };
        let spec = SloSpec::parse("queue_wait_s <= 1\nreject_rate <= 0.5\n").unwrap();
        build_pulse(&input, &spec)
    }

    #[test]
    fn slo_report_names_verdicts_and_worst_jobs() {
        let report = render_slo_report(&doc());
        assert!(report.starts_with("# heron-pulse SLO report\n"));
        assert!(report.contains("rules=2 pass=1 warn=0 breach=1\n"));
        assert!(report.contains("BREACH queue_wait_s <= 1 (worst 3.000 on g2)\n"));
        assert!(report.contains("PASS   reject_rate <= 0.5 (worst 0.000)\n"));
        assert!(report.ends_with("verdict: BREACH\n"));
    }

    #[test]
    fn dashboard_flags_warned_and_breached_jobs() {
        let dash = render_dashboard(&doc(), 3);
        assert!(dash.starts_with("# heron-serve status — heron-pulse-v1\n"));
        assert!(dash.contains("slo: pass=1 warn=0 breach=1\n"));
        let g1 = dash.lines().find(|l| l.starts_with("g1")).unwrap();
        let g2 = dash.lines().find(|l| l.starts_with("g2")).unwrap();
        assert!(g1.ends_with("  -"), "{g1}");
        assert!(g2.ends_with("  W!"), "{g2}");
        assert!(dash.contains("\nwarnings\n  g2: pulse.warn.heartbeat_stall attempt=1\n"));
        assert!(dash.contains("\nbreaches\n  queue_wait_s <= 1 (worst 3.000 on g2)\n"));
        // Byte-stable across renders.
        assert_eq!(dash, render_dashboard(&doc(), 3));
    }
}
