//! Property tests of the tensor language: index-expression ranges bound
//! every reachable value, and operator builders produce well-formed DAGs
//! for arbitrary valid shapes.

use heron_tensor::expr::IndexExpr;
use heron_tensor::{ops, DType, IterVar, VarId};
use proptest::prelude::*;

/// A random affine-ish index expression over two variables.
fn index_expr() -> impl Strategy<Value = IndexExpr> {
    let leaf = prop_oneof![
        (0i64..8).prop_map(IndexExpr::Const),
        Just(IndexExpr::Var(VarId(0))),
        Just(IndexExpr::Var(VarId(1))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), 1i64..5).prop_map(|(a, c)| a * IndexExpr::Const(c)),
            (inner.clone(), 1i64..5).prop_map(|(a, c)| IndexExpr::Div(Box::new(a), c)),
            (inner, 1i64..5).prop_map(|(a, c)| IndexExpr::Mod(Box::new(a), c)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `range()` is a sound enclosure of `eval()` over the whole domain.
    #[test]
    fn range_encloses_eval(e in index_expr(), e0 in 1i64..6, e1 in 1i64..6) {
        let ext = |v: VarId| if v.0 == 0 { e0 } else { e1 };
        let (lo, hi) = e.range(&ext);
        for v0 in 0..e0 {
            for v1 in 0..e1 {
                let env = |v: VarId| Some(if v.0 == 0 { v0 } else { v1 });
                let val = e.eval(&env).expect("closed expression");
                prop_assert!(val >= lo && val <= hi,
                    "value {val} outside range [{lo}, {hi}] for {e:?}");
            }
        }
    }

    /// Conv2d builders produce consistent DAGs for arbitrary valid configs.
    #[test]
    fn conv2d_builds_consistently(
        batch in 1i64..4,
        hw in 4i64..24,
        ci in 1i64..32,
        co in 1i64..32,
        kk in 1i64..4,
        pad in 0i64..2,
        stride in 1i64..3,
    ) {
        prop_assume!(hw + 2 * pad >= kk);
        let cfg = ops::Conv2dConfig::new(batch, hw, hw, ci, co, kk, kk, pad, stride);
        prop_assume!(cfg.out_height() >= 1 && cfg.out_width() >= 1);
        let dag = ops::conv2d(cfg);
        // Output shape matches the config arithmetic.
        let out = dag.stage(dag.output());
        prop_assert_eq!(
            out.tensor().shape.clone(),
            vec![batch, co, cfg.out_height(), cfg.out_width()]
        );
        // Flops match the closed form: 2 * N * Co * OH * OW * Ci * Kh * Kw.
        let conv_flops = 2 * batch * co * cfg.out_height() * cfg.out_width() * ci * kk * kk;
        let pad_stage_present = pad > 0;
        let total = dag.total_flops() as i64;
        if pad_stage_present {
            prop_assert!(total >= conv_flops, "{total} < {conv_flops}");
        } else {
            prop_assert_eq!(total, conv_flops);
        }
        // Topological validity: producers precede consumers.
        let order = dag.post_order_traverse();
        prop_assert_eq!(order.len(), dag.len());
    }

    /// GEMM flops and naive program agree for any shape.
    #[test]
    fn gemm_naive_program_consistent(m in 1i64..64, n in 1i64..64, k in 1i64..64) {
        let dag = ops::gemm(m, n, k);
        prop_assert_eq!(dag.total_flops(), (2 * m * n * k) as u64);
        let p = heron_tensor::program::naive_program(&dag);
        prop_assert_eq!(p.stages.len(), 1);
        let loops = &p.stages[0].loops;
        prop_assert_eq!(loops.iter().map(|l| l.extent).product::<i64>(), m * n * k);
        let code = p.to_pseudo_code();
        prop_assert_eq!(code.matches('{').count(), code.matches('}').count());
    }

    /// Simplification preserves semantics and never grows the AST.
    #[test]
    fn simplify_preserves_semantics(e in index_expr(), e0 in 1i64..5, e1 in 1i64..5) {
        use heron_tensor::simplify::{simplify, size};
        let s = simplify(&e);
        prop_assert!(size(&s) <= size(&e));
        // Simplification is idempotent.
        prop_assert_eq!(simplify(&s).clone(), s.clone());
        for v0 in 0..e0 {
            for v1 in 0..e1 {
                let env = |v: VarId| Some(if v.0 == 0 { v0 } else { v1 });
                prop_assert_eq!(e.eval(&env), s.eval(&env), "simplify changed {:?}", e);
            }
        }
    }

    /// Accumulator dtypes widen for every input dtype.
    #[test]
    fn gemm_dtype_widening(sel in 0usize..3) {
        let dt = [DType::F16, DType::BF16, DType::I8][sel];
        let dag = ops::gemm_dtyped(8, 8, 8, dt);
        let out = dag.stage(dag.output()).tensor().dtype;
        prop_assert_eq!(out, dt.accumulator());
        prop_assert!(out.bytes() >= dt.bytes());
    }
}

/// Extra deterministic check: IterVar extents must be positive.
#[test]
#[should_panic(expected = "extent")]
fn zero_extent_rejected() {
    IterVar::spatial(0, "i", 0);
}
