//! Property tests of the tensor language: index-expression ranges bound
//! every reachable value, and operator builders produce well-formed DAGs
//! for arbitrary valid shapes. (heron-testkit harness; see DESIGN.md,
//! "Zero-dependency & determinism policy".)

use heron_tensor::expr::IndexExpr;
use heron_tensor::{ops, DType, IterVar, VarId};
use heron_testkit::{property_cases, Gen};

/// A random affine-ish index expression over two variables, depth ≤ 3.
fn index_expr(g: &mut Gen, depth: usize) -> IndexExpr {
    // Shrinks toward small constants (kind 0 with value 0).
    let kind = if depth == 0 { g.int(0, 3) } else { g.int(0, 8) };
    match kind {
        0 => IndexExpr::Const(g.int(0, 8)),
        1 => IndexExpr::Var(VarId(0)),
        2 => IndexExpr::Var(VarId(1)),
        3 => index_expr(g, depth - 1) + index_expr(g, depth - 1),
        4 => index_expr(g, depth - 1) - index_expr(g, depth - 1),
        5 => index_expr(g, depth - 1) * IndexExpr::Const(g.int(1, 5)),
        6 => IndexExpr::Div(Box::new(index_expr(g, depth - 1)), g.int(1, 5)),
        _ => IndexExpr::Mod(Box::new(index_expr(g, depth - 1)), g.int(1, 5)),
    }
}

/// `range()` is a sound enclosure of `eval()` over the whole domain.
#[test]
fn range_encloses_eval() {
    property_cases("range_encloses_eval", 128, |g| {
        let e = index_expr(g, 3);
        let e0 = g.int(1, 6);
        let e1 = g.int(1, 6);
        let ext = |v: VarId| if v.0 == 0 { e0 } else { e1 };
        let (lo, hi) = e.range(&ext);
        for v0 in 0..e0 {
            for v1 in 0..e1 {
                let env = |v: VarId| Some(if v.0 == 0 { v0 } else { v1 });
                let val = e.eval(&env).expect("closed expression");
                assert!(
                    val >= lo && val <= hi,
                    "value {val} outside range [{lo}, {hi}] for {e:?}"
                );
            }
        }
    });
}

/// Conv2d builders produce consistent DAGs for arbitrary valid configs.
#[test]
fn conv2d_builds_consistently() {
    property_cases("conv2d_builds_consistently", 128, |g| {
        let batch = g.int(1, 4);
        let hw = g.int(4, 24);
        let ci = g.int(1, 32);
        let co = g.int(1, 32);
        let kk = g.int(1, 4);
        let pad = g.int(0, 2);
        let stride = g.int(1, 3);
        if hw + 2 * pad < kk {
            return; // assume
        }
        let cfg = ops::Conv2dConfig::new(batch, hw, hw, ci, co, kk, kk, pad, stride);
        if cfg.out_height() < 1 || cfg.out_width() < 1 {
            return; // assume
        }
        let dag = ops::conv2d(cfg);
        // Output shape matches the config arithmetic.
        let out = dag.stage(dag.output());
        assert_eq!(
            out.tensor().shape,
            vec![batch, co, cfg.out_height(), cfg.out_width()]
        );
        // Flops match the closed form: 2 * N * Co * OH * OW * Ci * Kh * Kw.
        let conv_flops = 2 * batch * co * cfg.out_height() * cfg.out_width() * ci * kk * kk;
        let pad_stage_present = pad > 0;
        let total = dag.total_flops() as i64;
        if pad_stage_present {
            assert!(total >= conv_flops, "{total} < {conv_flops}");
        } else {
            assert_eq!(total, conv_flops);
        }
        // Topological validity: producers precede consumers.
        let order = dag.post_order_traverse();
        assert_eq!(order.len(), dag.len());
    });
}

/// GEMM flops and naive program agree for any shape.
#[test]
fn gemm_naive_program_consistent() {
    property_cases("gemm_naive_program_consistent", 128, |g| {
        let m = g.int(1, 64);
        let n = g.int(1, 64);
        let k = g.int(1, 64);
        let dag = ops::gemm(m, n, k);
        assert_eq!(dag.total_flops(), (2 * m * n * k) as u64);
        let p = heron_tensor::program::naive_program(&dag);
        assert_eq!(p.stages.len(), 1);
        let loops = &p.stages[0].loops;
        assert_eq!(loops.iter().map(|l| l.extent).product::<i64>(), m * n * k);
        let code = p.to_pseudo_code();
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    });
}

/// Simplification preserves semantics and never grows the AST.
#[test]
fn simplify_preserves_semantics() {
    property_cases("simplify_preserves_semantics", 128, |g| {
        use heron_tensor::simplify::{simplify, size};
        let e = index_expr(g, 3);
        let e0 = g.int(1, 5);
        let e1 = g.int(1, 5);
        let s = simplify(&e);
        assert!(size(&s) <= size(&e));
        // Simplification is idempotent.
        assert_eq!(simplify(&s), s);
        for v0 in 0..e0 {
            for v1 in 0..e1 {
                let env = |v: VarId| Some(if v.0 == 0 { v0 } else { v1 });
                assert_eq!(e.eval(&env), s.eval(&env), "simplify changed {e:?}");
            }
        }
    });
}

/// Accumulator dtypes widen for every input dtype.
#[test]
fn gemm_dtype_widening() {
    property_cases("gemm_dtype_widening", 128, |g| {
        let dt = *g.pick(&[DType::F16, DType::BF16, DType::I8]);
        let dag = ops::gemm_dtyped(8, 8, 8, dt);
        let out = dag.stage(dag.output()).tensor().dtype;
        assert_eq!(out, dt.accumulator());
        assert!(out.bytes() >= dt.bytes());
    });
}

/// Extra deterministic check: IterVar extents must be positive.
#[test]
#[should_panic(expected = "extent")]
fn zero_extent_rejected() {
    IterVar::spatial(0, "i", 0);
}
