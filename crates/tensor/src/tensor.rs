//! Tensor metadata: name, shape, and element type.

use std::fmt;

use crate::dtype::DType;

/// A dense, row-major tensor descriptor.
///
/// The tensor language is shape-checked but carries no data: the Heron
/// pipeline reasons about programs statically and the DLA measurer is an
/// analytic simulator, so only metadata is needed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tensor {
    /// Unique name within a DAG (`A`, `B`, `C`, `pad`, …).
    pub name: String,
    /// Dimension extents, outermost first.
    pub shape: Vec<i64>,
    /// Element type.
    pub dtype: DType,
}

impl Tensor {
    /// Creates a tensor descriptor.
    ///
    /// # Panics
    /// Panics if any dimension is < 1 or the shape is empty.
    pub fn new(name: impl Into<String>, shape: Vec<i64>, dtype: DType) -> Self {
        assert!(!shape.is_empty(), "tensor must have at least one dimension");
        assert!(
            shape.iter().all(|&d| d >= 1),
            "tensor dimensions must be >= 1"
        );
        Tensor {
            name: name.into(),
            shape,
            dtype,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> i64 {
        self.shape.iter().product()
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.num_elements() as u64 * self.dtype.bytes()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}[", self.name, self.dtype)?;
        for (i, d) in self.shape.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let t = Tensor::new("A", vec![16, 32], DType::F16);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.num_elements(), 512);
        assert_eq!(t.bytes(), 1024);
    }

    #[test]
    fn display_includes_shape() {
        let t = Tensor::new("W", vec![64, 3, 3], DType::I8);
        assert_eq!(t.to_string(), "W: i8[64, 3, 3]");
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dim_rejected() {
        Tensor::new("Z", vec![4, 0], DType::F32);
    }
}
