//! Compute stages: the nodes of a tensor-computation DAG.

use std::fmt;

use crate::dtype::DType;
use crate::expr::{IterKind, IterVar, ScalarExpr, VarId};
use crate::tensor::Tensor;

/// How a compute stage combines values along its reduction axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// No reduction: the stage is purely element-wise / data-movement.
    None,
    /// Sum-accumulation (`C[...] += body`), the MAC pattern DLAs accelerate.
    Sum,
    /// Max-accumulation (pooling-style stages).
    Max,
}

/// A single compute operation producing one output tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeOp {
    /// Output tensor written by this stage.
    pub output: Tensor,
    /// Spatial axes, one per output dimension, in output order.
    pub axes: Vec<IterVar>,
    /// Reduction axes (possibly empty).
    pub reduce_axes: Vec<IterVar>,
    /// Scalar body evaluated at each (spatial × reduce) point.
    pub body: ScalarExpr,
    /// Reduction combinator.
    pub reduce: ReduceKind,
}

impl ComputeOp {
    /// Creates a compute op, validating that spatial axes match the output
    /// shape and that axis kinds are consistent.
    ///
    /// # Panics
    /// Panics on rank mismatch, extent mismatch, or mis-kinded axes.
    pub fn new(
        output: Tensor,
        axes: Vec<IterVar>,
        reduce_axes: Vec<IterVar>,
        body: ScalarExpr,
        reduce: ReduceKind,
    ) -> Self {
        assert_eq!(
            axes.len(),
            output.rank(),
            "stage `{}`: {} spatial axes for rank-{} output",
            output.name,
            axes.len(),
            output.rank()
        );
        for (axis, &dim) in axes.iter().zip(&output.shape) {
            assert_eq!(
                axis.extent, dim,
                "stage `{}`: axis `{}` extent {} != output dim {}",
                output.name, axis.name, axis.extent, dim
            );
            assert_eq!(axis.kind, IterKind::Spatial, "spatial axis expected");
        }
        for axis in &reduce_axes {
            assert_eq!(axis.kind, IterKind::Reduce, "reduce axis expected");
        }
        if reduce == ReduceKind::None {
            assert!(reduce_axes.is_empty(), "reduce axes without a reduction");
        }
        ComputeOp {
            output,
            axes,
            reduce_axes,
            body,
            reduce,
        }
    }

    /// All axes, spatial first then reduce — the naive loop order.
    pub fn all_axes(&self) -> impl Iterator<Item = &IterVar> {
        self.axes.iter().chain(self.reduce_axes.iter())
    }

    /// Looks up an axis by id.
    pub fn axis(&self, id: VarId) -> Option<&IterVar> {
        self.all_axes().find(|a| a.id == id)
    }

    /// Names of the input tensors this stage reads.
    pub fn input_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .body
            .accesses()
            .iter()
            .map(|a| a.tensor.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Total iteration-space volume (product of all axis extents).
    pub fn iteration_volume(&self) -> i64 {
        self.all_axes().map(|a| a.extent).product()
    }

    /// Arithmetic operations performed by a full evaluation of the stage.
    ///
    /// A sum/max reduction contributes one combine op per reduction point in
    /// addition to the ops inside the body.
    pub fn flops(&self) -> u64 {
        let per_point = self.body.op_count()
            + match self.reduce {
                ReduceKind::None => 0,
                ReduceKind::Sum | ReduceKind::Max => 1,
            };
        per_point * self.iteration_volume() as u64
    }

    /// Whether any input tensor element is read by more than one iteration
    /// point — the `HasDataReuse` condition of the Ansor-style rules.
    ///
    /// Detected statically: an access reuses data iff some stage axis does
    /// not appear in its index expressions (that axis re-reads the same
    /// element), which is exactly the case for GEMM (`A[i,r]` lacks `j`) and
    /// all convolutions.
    pub fn has_data_reuse(&self) -> bool {
        let axis_count = self.axes.len() + self.reduce_axes.len();
        self.body
            .accesses()
            .iter()
            .any(|acc| acc.vars().len() < axis_count)
    }

    /// Whether the stage is a pure element-wise transform of a single input
    /// (no reduction, every axis used directly) — the `IsStrictInlinable`
    /// condition of the Always-Inline rule.
    pub fn is_strict_inlinable(&self) -> bool {
        if self.reduce != ReduceKind::None {
            return false;
        }
        let accesses = self.body.accesses();
        // Element-wise chains over one or two inputs inline cleanly.
        !accesses.is_empty()
            && accesses
                .iter()
                .all(|acc| acc.indices.iter().all(|ix| ix.vars().len() <= 1))
    }

    /// Element type produced by the stage.
    pub fn out_dtype(&self) -> DType {
        self.output.dtype
    }
}

impl fmt::Display for ComputeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.output.name)?;
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.name)?;
        }
        write!(f, "]")?;
        match self.reduce {
            ReduceKind::None => write!(f, " = ..."),
            ReduceKind::Sum => write!(f, " += ..."),
            ReduceKind::Max => write!(f, " max= ..."),
        }
    }
}

/// What a DAG stage is.
#[derive(Debug, Clone, PartialEq)]
pub enum StageKind {
    /// An input placeholder: data that exists before the kernel runs.
    Placeholder(Tensor),
    /// A compute operation.
    Compute(ComputeOp),
}

/// A node in the computation DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name — equal to the name of the tensor it defines.
    pub name: String,
    /// Placeholder or compute.
    pub kind: StageKind,
}

impl Stage {
    /// The tensor this stage defines.
    pub fn tensor(&self) -> &Tensor {
        match &self.kind {
            StageKind::Placeholder(t) => t,
            StageKind::Compute(op) => &op.output,
        }
    }

    /// The compute op, if this is a compute stage.
    pub fn compute(&self) -> Option<&ComputeOp> {
        match &self.kind {
            StageKind::Compute(op) => Some(op),
            StageKind::Placeholder(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IndexExpr;

    fn gemm_op(m: i64, n: i64, k: i64) -> ComputeOp {
        let a = Tensor::new("A", vec![m, k], DType::F16);
        let b = Tensor::new("B", vec![k, n], DType::F16);
        let c = Tensor::new("C", vec![m, n], DType::F32);
        let i = IterVar::spatial(0, "i", m);
        let j = IterVar::spatial(1, "j", n);
        let r = IterVar::reduce(2, "r", k);
        let body = ScalarExpr::Mul(
            Box::new(ScalarExpr::load(
                a,
                vec![IndexExpr::var(&i), IndexExpr::var(&r)],
            )),
            Box::new(ScalarExpr::load(
                b,
                vec![IndexExpr::var(&r), IndexExpr::var(&j)],
            )),
        );
        ComputeOp::new(c, vec![i, j], vec![r], body, ReduceKind::Sum)
    }

    #[test]
    fn gemm_flops() {
        let op = gemm_op(8, 8, 8);
        // one mul + one add per point
        assert_eq!(op.flops(), 2 * 8 * 8 * 8);
        assert_eq!(op.iteration_volume(), 512);
    }

    #[test]
    fn gemm_has_data_reuse() {
        assert!(gemm_op(8, 8, 8).has_data_reuse());
    }

    #[test]
    fn gemm_inputs() {
        assert_eq!(gemm_op(4, 4, 4).input_names(), vec!["A", "B"]);
    }

    #[test]
    fn gemm_not_inlinable() {
        assert!(!gemm_op(4, 4, 4).is_strict_inlinable());
    }

    #[test]
    #[should_panic(expected = "spatial axes")]
    fn rank_mismatch_panics() {
        let c = Tensor::new("C", vec![4, 4], DType::F32);
        let i = IterVar::spatial(0, "i", 4);
        ComputeOp::new(c, vec![i], vec![], ScalarExpr::Imm(0.0), ReduceKind::None);
    }

    #[test]
    fn display_shows_accumulate() {
        assert!(gemm_op(4, 4, 4).to_string().contains("+="));
    }
}
