//! Element data types supported by the tensor language.

use std::fmt;

/// Element type of a tensor.
///
/// The set mirrors what the paper's three DLAs consume: TensorCore operates
/// on `F16` inputs with `F32` accumulation, DL Boost (VNNI) on `I8` inputs
/// with `I32` accumulation, and VTA on `I8`/`I32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 16-bit IEEE floating point.
    F16,
    /// 16-bit bfloat.
    BF16,
    /// 32-bit IEEE floating point.
    F32,
    /// 8-bit signed integer.
    I8,
    /// 32-bit signed integer.
    I32,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// use heron_tensor::DType;
    /// assert_eq!(DType::F16.bytes(), 2);
    /// assert_eq!(DType::I32.bytes(), 4);
    /// ```
    pub fn bytes(self) -> u64 {
        match self {
            DType::F16 | DType::BF16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::I8 => 1,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F16 | DType::BF16 | DType::F32)
    }

    /// The natural accumulator type for multiply-accumulate chains on DLAs.
    pub fn accumulator(self) -> DType {
        match self {
            DType::F16 | DType::BF16 | DType::F32 => DType::F32,
            DType::I8 | DType::I32 => DType::I32,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::F32 => "f32",
            DType::I8 => "i8",
            DType::I32 => "i32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_match_width() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::BF16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::I8.bytes(), 1);
        assert_eq!(DType::I32.bytes(), 4);
    }

    #[test]
    fn accumulators_widen() {
        assert_eq!(DType::F16.accumulator(), DType::F32);
        assert_eq!(DType::I8.accumulator(), DType::I32);
        assert_eq!(DType::F32.accumulator(), DType::F32);
    }

    #[test]
    fn float_classification() {
        assert!(DType::F16.is_float());
        assert!(DType::BF16.is_float());
        assert!(!DType::I8.is_float());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::I32.to_string(), "i32");
    }
}
