//! Builders for the nine operators the paper evaluates: GEMM, BMM, GEMV,
//! C1D, C2D, C3D, T2D (transposed conv), DIL (dilated conv), and SCAN.
//!
//! Every builder returns a [`Dag`] in topological order. Convolutions with
//! non-zero padding insert an explicit `pad` compute stage (exercising the
//! Always-Inline generation rule), matching how TVM's `te` graph looks.

use crate::compute::{ComputeOp, ReduceKind};
use crate::dag::Dag;
use crate::dtype::DType;
use crate::expr::{IndexExpr, IterVar, ScalarExpr};
use crate::tensor::Tensor;

/// Matrix multiply `C[i, j] += A[i, r] * B[r, j]` in half precision.
///
/// ```
/// let dag = heron_tensor::ops::gemm(1024, 1024, 1024);
/// assert_eq!(dag.stage(dag.output()).name, "C");
/// ```
pub fn gemm(m: i64, n: i64, k: i64) -> Dag {
    gemm_dtyped(m, n, k, DType::F16)
}

/// Matrix multiply with an explicit input element type.
pub fn gemm_dtyped(m: i64, n: i64, k: i64, dtype: DType) -> Dag {
    let mut dag = Dag::new();
    let a = Tensor::new("A", vec![m, k], dtype);
    let b = Tensor::new("B", vec![k, n], dtype);
    dag.placeholder(a.clone());
    dag.placeholder(b.clone());
    let c = Tensor::new("C", vec![m, n], dtype.accumulator());
    let i = IterVar::spatial(0, "i", m);
    let j = IterVar::spatial(1, "j", n);
    let r = IterVar::reduce(2, "r", k);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            a,
            vec![IndexExpr::var(&i), IndexExpr::var(&r)],
        )),
        Box::new(ScalarExpr::load(
            b,
            vec![IndexExpr::var(&r), IndexExpr::var(&j)],
        )),
    );
    dag.compute(ComputeOp::new(
        c,
        vec![i, j],
        vec![r],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Batched matrix multiply `C[b, i, j] += A[b, i, r] * B[b, r, j]`.
pub fn bmm(batch: i64, m: i64, n: i64, k: i64) -> Dag {
    bmm_dtyped(batch, m, n, k, DType::F16)
}

/// Batched matrix multiply with an explicit input element type.
pub fn bmm_dtyped(batch: i64, m: i64, n: i64, k: i64, dtype: DType) -> Dag {
    let mut dag = Dag::new();
    let a = Tensor::new("A", vec![batch, m, k], dtype);
    let b = Tensor::new("B", vec![batch, k, n], dtype);
    dag.placeholder(a.clone());
    dag.placeholder(b.clone());
    let c = Tensor::new("C", vec![batch, m, n], dtype.accumulator());
    let bv = IterVar::spatial(0, "b", batch);
    let i = IterVar::spatial(1, "i", m);
    let j = IterVar::spatial(2, "j", n);
    let r = IterVar::reduce(3, "r", k);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            a,
            vec![IndexExpr::var(&bv), IndexExpr::var(&i), IndexExpr::var(&r)],
        )),
        Box::new(ScalarExpr::load(
            b,
            vec![IndexExpr::var(&bv), IndexExpr::var(&r), IndexExpr::var(&j)],
        )),
    );
    dag.compute(ComputeOp::new(
        c,
        vec![bv, i, j],
        vec![r],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Matrix-vector product `y[i] += A[i, r] * x[r]`, modelled as a degenerate
/// GEMM with `n == batch` output columns so it flows through the same rules.
pub fn gemv(m: i64, k: i64, batch: i64) -> Dag {
    let mut dag = Dag::new();
    let a = Tensor::new("A", vec![m, k], DType::F16);
    let x = Tensor::new("B", vec![k, batch], DType::F16);
    dag.placeholder(a.clone());
    dag.placeholder(x.clone());
    let y = Tensor::new("C", vec![m, batch], DType::F32);
    let i = IterVar::spatial(0, "i", m);
    let j = IterVar::spatial(1, "j", batch);
    let r = IterVar::reduce(2, "r", k);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            a,
            vec![IndexExpr::var(&i), IndexExpr::var(&r)],
        )),
        Box::new(ScalarExpr::load(
            x,
            vec![IndexExpr::var(&r), IndexExpr::var(&j)],
        )),
    );
    dag.compute(ComputeOp::new(
        y,
        vec![i, j],
        vec![r],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Configuration of a 2-D convolution (NCHW layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dConfig {
    /// Batch size.
    pub batch: i64,
    /// Input height.
    pub height: i64,
    /// Input width.
    pub width: i64,
    /// Input channels.
    pub in_channels: i64,
    /// Output channels.
    pub out_channels: i64,
    /// Kernel height.
    pub kh: i64,
    /// Kernel width.
    pub kw: i64,
    /// Symmetric zero padding.
    pub padding: i64,
    /// Stride (same in both dimensions).
    pub stride: i64,
    /// Dilation (same in both dimensions); 1 for ordinary convolution.
    pub dilation: i64,
    /// Input element type.
    pub dtype: DType,
}

impl Conv2dConfig {
    /// Ordinary f16 convolution with dilation 1.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: i64,
        height: i64,
        width: i64,
        in_channels: i64,
        out_channels: i64,
        kh: i64,
        kw: i64,
        padding: i64,
        stride: i64,
    ) -> Self {
        Conv2dConfig {
            batch,
            height,
            width,
            in_channels,
            out_channels,
            kh,
            kw,
            padding,
            stride,
            dilation: 1,
            dtype: DType::F16,
        }
    }

    /// Same configuration with a different element type.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Same configuration with a dilation factor.
    pub fn with_dilation(mut self, dilation: i64) -> Self {
        self.dilation = dilation;
        self
    }

    /// Output height after padding/stride/dilation.
    pub fn out_height(&self) -> i64 {
        (self.height + 2 * self.padding - self.dilation * (self.kh - 1) - 1) / self.stride + 1
    }

    /// Output width after padding/stride/dilation.
    pub fn out_width(&self) -> i64 {
        (self.width + 2 * self.padding - self.dilation * (self.kw - 1) - 1) / self.stride + 1
    }
}

/// 2-D convolution, NCHW:
/// `O[n,co,oh,ow] += I[n,ci,oh*s+rh*d-p,ow*s+rw*d-p] * W[co,ci,rh,rw]`
/// (all on one line so rustdoc does not parse the brackets as links).
/// Inserts a `pad` stage when `padding > 0`.
pub fn conv2d(cfg: Conv2dConfig) -> Dag {
    let mut dag = Dag::new();
    let input = Tensor::new(
        "I",
        vec![cfg.batch, cfg.in_channels, cfg.height, cfg.width],
        cfg.dtype,
    );
    let weight = Tensor::new(
        "W",
        vec![cfg.out_channels, cfg.in_channels, cfg.kh, cfg.kw],
        cfg.dtype,
    );
    dag.placeholder(input.clone());
    dag.placeholder(weight.clone());

    let data = if cfg.padding > 0 {
        let ph = cfg.height + 2 * cfg.padding;
        let pw = cfg.width + 2 * cfg.padding;
        let padded = Tensor::new("pad", vec![cfg.batch, cfg.in_channels, ph, pw], cfg.dtype);
        let n = IterVar::spatial(0, "n", cfg.batch);
        let c = IterVar::spatial(1, "c", cfg.in_channels);
        let h = IterVar::spatial(2, "h", ph);
        let w = IterVar::spatial(3, "w", pw);
        let hh = IndexExpr::var(&h) - IndexExpr::constant(cfg.padding);
        let ww = IndexExpr::var(&w) - IndexExpr::constant(cfg.padding);
        let body = ScalarExpr::Guarded {
            index: hh.clone(),
            lo: 0,
            hi: cfg.height - 1,
            value: Box::new(ScalarExpr::Guarded {
                index: ww.clone(),
                lo: 0,
                hi: cfg.width - 1,
                value: Box::new(ScalarExpr::load(
                    input,
                    vec![IndexExpr::var(&n), IndexExpr::var(&c), hh, ww],
                )),
            }),
        };
        dag.compute(ComputeOp::new(
            padded.clone(),
            vec![n, c, h, w],
            vec![],
            body,
            ReduceKind::None,
        ));
        padded
    } else {
        input
    };

    let oh = cfg.out_height();
    let ow = cfg.out_width();
    assert!(oh >= 1 && ow >= 1, "convolution output is empty");
    let out = Tensor::new(
        "O",
        vec![cfg.batch, cfg.out_channels, oh, ow],
        cfg.dtype.accumulator(),
    );
    let n = IterVar::spatial(0, "n", cfg.batch);
    let co = IterVar::spatial(1, "co", cfg.out_channels);
    let h = IterVar::spatial(2, "oh", oh);
    let w = IterVar::spatial(3, "ow", ow);
    let rc = IterVar::reduce(4, "rc", cfg.in_channels);
    let rh = IterVar::reduce(5, "rh", cfg.kh);
    let rw = IterVar::reduce(6, "rw", cfg.kw);
    let ih = IndexExpr::var(&h) * IndexExpr::constant(cfg.stride)
        + IndexExpr::var(&rh) * IndexExpr::constant(cfg.dilation);
    let iw = IndexExpr::var(&w) * IndexExpr::constant(cfg.stride)
        + IndexExpr::var(&rw) * IndexExpr::constant(cfg.dilation);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            data,
            vec![IndexExpr::var(&n), IndexExpr::var(&rc), ih, iw],
        )),
        Box::new(ScalarExpr::load(
            weight,
            vec![
                IndexExpr::var(&co),
                IndexExpr::var(&rc),
                IndexExpr::var(&rh),
                IndexExpr::var(&rw),
            ],
        )),
    );
    dag.compute(ComputeOp::new(
        out,
        vec![n, co, h, w],
        vec![rc, rh, rw],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Dilated 2-D convolution (the paper's DIL operator).
pub fn dil(cfg: Conv2dConfig, dilation: i64) -> Dag {
    conv2d(cfg.with_dilation(dilation))
}

/// 1-D convolution, NCW layout.
pub fn conv1d(
    batch: i64,
    length: i64,
    in_channels: i64,
    out_channels: i64,
    kernel: i64,
    padding: i64,
    stride: i64,
) -> Dag {
    let mut dag = Dag::new();
    let dtype = DType::F16;
    let input = Tensor::new("I", vec![batch, in_channels, length], dtype);
    let weight = Tensor::new("W", vec![out_channels, in_channels, kernel], dtype);
    dag.placeholder(input.clone());
    dag.placeholder(weight.clone());
    let data = if padding > 0 {
        let pl = length + 2 * padding;
        let padded = Tensor::new("pad", vec![batch, in_channels, pl], dtype);
        let n = IterVar::spatial(0, "n", batch);
        let c = IterVar::spatial(1, "c", in_channels);
        let l = IterVar::spatial(2, "l", pl);
        let ll = IndexExpr::var(&l) - IndexExpr::constant(padding);
        let body = ScalarExpr::Guarded {
            index: ll.clone(),
            lo: 0,
            hi: length - 1,
            value: Box::new(ScalarExpr::load(
                input,
                vec![IndexExpr::var(&n), IndexExpr::var(&c), ll],
            )),
        };
        dag.compute(ComputeOp::new(
            padded.clone(),
            vec![n, c, l],
            vec![],
            body,
            ReduceKind::None,
        ));
        padded
    } else {
        input
    };
    let ol = (length + 2 * padding - kernel) / stride + 1;
    assert!(ol >= 1, "conv1d output is empty");
    let out = Tensor::new("O", vec![batch, out_channels, ol], dtype.accumulator());
    let n = IterVar::spatial(0, "n", batch);
    let co = IterVar::spatial(1, "co", out_channels);
    let l = IterVar::spatial(2, "ol", ol);
    let rc = IterVar::reduce(3, "rc", in_channels);
    let rk = IterVar::reduce(4, "rk", kernel);
    let il = IndexExpr::var(&l) * IndexExpr::constant(stride) + IndexExpr::var(&rk);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            data,
            vec![IndexExpr::var(&n), IndexExpr::var(&rc), il],
        )),
        Box::new(ScalarExpr::load(
            weight,
            vec![
                IndexExpr::var(&co),
                IndexExpr::var(&rc),
                IndexExpr::var(&rk),
            ],
        )),
    );
    dag.compute(ComputeOp::new(
        out,
        vec![n, co, l],
        vec![rc, rk],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// 3-D convolution, NCDHW layout with cubic kernels.
#[allow(clippy::too_many_arguments)]
pub fn conv3d(
    batch: i64,
    depth: i64,
    height: i64,
    width: i64,
    in_channels: i64,
    out_channels: i64,
    kernel: i64,
    padding: i64,
    stride: i64,
) -> Dag {
    let mut dag = Dag::new();
    let dtype = DType::F16;
    let input = Tensor::new("I", vec![batch, in_channels, depth, height, width], dtype);
    let weight = Tensor::new(
        "W",
        vec![out_channels, in_channels, kernel, kernel, kernel],
        dtype,
    );
    dag.placeholder(input.clone());
    dag.placeholder(weight.clone());
    let data = if padding > 0 {
        let pd = depth + 2 * padding;
        let ph = height + 2 * padding;
        let pw = width + 2 * padding;
        let padded = Tensor::new("pad", vec![batch, in_channels, pd, ph, pw], dtype);
        let n = IterVar::spatial(0, "n", batch);
        let c = IterVar::spatial(1, "c", in_channels);
        let d = IterVar::spatial(2, "d", pd);
        let h = IterVar::spatial(3, "h", ph);
        let w = IterVar::spatial(4, "w", pw);
        let dd = IndexExpr::var(&d) - IndexExpr::constant(padding);
        let hh = IndexExpr::var(&h) - IndexExpr::constant(padding);
        let ww = IndexExpr::var(&w) - IndexExpr::constant(padding);
        let body = ScalarExpr::Guarded {
            index: dd.clone(),
            lo: 0,
            hi: depth - 1,
            value: Box::new(ScalarExpr::Guarded {
                index: hh.clone(),
                lo: 0,
                hi: height - 1,
                value: Box::new(ScalarExpr::Guarded {
                    index: ww.clone(),
                    lo: 0,
                    hi: width - 1,
                    value: Box::new(ScalarExpr::load(
                        input,
                        vec![IndexExpr::var(&n), IndexExpr::var(&c), dd, hh, ww],
                    )),
                }),
            }),
        };
        dag.compute(ComputeOp::new(
            padded.clone(),
            vec![n, c, d, h, w],
            vec![],
            body,
            ReduceKind::None,
        ));
        padded
    } else {
        input
    };
    let od = (depth + 2 * padding - kernel) / stride + 1;
    let oh = (height + 2 * padding - kernel) / stride + 1;
    let ow = (width + 2 * padding - kernel) / stride + 1;
    assert!(od >= 1 && oh >= 1 && ow >= 1, "conv3d output is empty");
    let out = Tensor::new(
        "O",
        vec![batch, out_channels, od, oh, ow],
        dtype.accumulator(),
    );
    let n = IterVar::spatial(0, "n", batch);
    let co = IterVar::spatial(1, "co", out_channels);
    let d = IterVar::spatial(2, "od", od);
    let h = IterVar::spatial(3, "oh", oh);
    let w = IterVar::spatial(4, "ow", ow);
    let rc = IterVar::reduce(5, "rc", in_channels);
    let rd = IterVar::reduce(6, "rd", kernel);
    let rh = IterVar::reduce(7, "rh", kernel);
    let rw = IterVar::reduce(8, "rw", kernel);
    let id = IndexExpr::var(&d) * IndexExpr::constant(stride) + IndexExpr::var(&rd);
    let ih = IndexExpr::var(&h) * IndexExpr::constant(stride) + IndexExpr::var(&rh);
    let iw = IndexExpr::var(&w) * IndexExpr::constant(stride) + IndexExpr::var(&rw);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            data,
            vec![IndexExpr::var(&n), IndexExpr::var(&rc), id, ih, iw],
        )),
        Box::new(ScalarExpr::load(
            weight,
            vec![
                IndexExpr::var(&co),
                IndexExpr::var(&rc),
                IndexExpr::var(&rd),
                IndexExpr::var(&rh),
                IndexExpr::var(&rw),
            ],
        )),
    );
    dag.compute(ComputeOp::new(
        out,
        vec![n, co, d, h, w],
        vec![rc, rd, rh, rw],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Transposed 2-D convolution (deconvolution), expressed as a zero-dilated
/// scatter rewritten to a gather over a zero-stuffed, padded input — the
/// standard TVM formulation, which produces one data-rearrangement stage plus
/// a convolution stage.
pub fn t2d(cfg: Conv2dConfig) -> Dag {
    let mut dag = Dag::new();
    let dtype = cfg.dtype;
    let input = Tensor::new(
        "I",
        vec![cfg.batch, cfg.in_channels, cfg.height, cfg.width],
        dtype,
    );
    let weight = Tensor::new(
        "W",
        vec![cfg.in_channels, cfg.out_channels, cfg.kh, cfg.kw],
        dtype,
    );
    dag.placeholder(input.clone());
    dag.placeholder(weight.clone());

    // Zero-stuffed and padded input: dimensions (H-1)*stride + 1 + 2*(k-1-p).
    let edge_h = cfg.kh - 1 - cfg.padding;
    let edge_w = cfg.kw - 1 - cfg.padding;
    assert!(
        edge_h >= 0 && edge_w >= 0,
        "t2d requires padding <= kernel-1"
    );
    let sh = (cfg.height - 1) * cfg.stride + 1 + 2 * edge_h;
    let sw = (cfg.width - 1) * cfg.stride + 1 + 2 * edge_w;
    let stuffed = Tensor::new("pad", vec![cfg.batch, cfg.in_channels, sh, sw], dtype);
    {
        let n = IterVar::spatial(0, "n", cfg.batch);
        let c = IterVar::spatial(1, "c", cfg.in_channels);
        let h = IterVar::spatial(2, "h", sh);
        let w = IterVar::spatial(3, "w", sw);
        let hh = IndexExpr::var(&h) - IndexExpr::constant(edge_h);
        let ww = IndexExpr::var(&w) - IndexExpr::constant(edge_w);
        // Element present only at multiples of stride within bounds.
        let body = ScalarExpr::Guarded {
            index: hh.clone(),
            lo: 0,
            hi: (cfg.height - 1) * cfg.stride,
            value: Box::new(ScalarExpr::Guarded {
                index: ww.clone(),
                lo: 0,
                hi: (cfg.width - 1) * cfg.stride,
                value: Box::new(ScalarExpr::load(
                    input,
                    vec![
                        IndexExpr::var(&n),
                        IndexExpr::var(&c),
                        IndexExpr::Div(Box::new(hh), cfg.stride),
                        IndexExpr::Div(Box::new(ww), cfg.stride),
                    ],
                )),
            }),
        };
        dag.compute(ComputeOp::new(
            stuffed.clone(),
            vec![n, c, h, w],
            vec![],
            body,
            ReduceKind::None,
        ));
    }

    let oh = (cfg.height - 1) * cfg.stride + cfg.kh - 2 * cfg.padding;
    let ow = (cfg.width - 1) * cfg.stride + cfg.kw - 2 * cfg.padding;
    assert!(oh >= 1 && ow >= 1, "t2d output is empty");
    let out = Tensor::new(
        "O",
        vec![cfg.batch, cfg.out_channels, oh, ow],
        dtype.accumulator(),
    );
    let n = IterVar::spatial(0, "n", cfg.batch);
    let co = IterVar::spatial(1, "co", cfg.out_channels);
    let h = IterVar::spatial(2, "oh", oh);
    let w = IterVar::spatial(3, "ow", ow);
    let rc = IterVar::reduce(4, "rc", cfg.in_channels);
    let rh = IterVar::reduce(5, "rh", cfg.kh);
    let rw = IterVar::reduce(6, "rw", cfg.kw);
    let ih = IndexExpr::var(&h) + IndexExpr::var(&rh);
    let iw = IndexExpr::var(&w) + IndexExpr::var(&rw);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            stuffed,
            vec![IndexExpr::var(&n), IndexExpr::var(&rc), ih, iw],
        )),
        Box::new(ScalarExpr::load(
            weight,
            vec![
                IndexExpr::var(&rc),
                IndexExpr::var(&co),
                // Flipped kernel taps.
                IndexExpr::constant(cfg.kh - 1) - IndexExpr::var(&rh),
                IndexExpr::constant(cfg.kw - 1) - IndexExpr::var(&rw),
            ],
        )),
    );
    dag.compute(ComputeOp::new(
        out,
        vec![n, co, h, w],
        vec![rc, rh, rw],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Depthwise 2-D convolution (MobileNet-style): each channel is convolved
/// with its own filter, `O[n,c,oh,ow] += I[n,c,oh*s+rh-p,ow*s+rw-p] *
/// W[c,rh,rw]`. The channel axis appears in *both* operands, so the MAC
/// pattern of Rule-S1 does not match and the operator follows the scalar
/// (CUDA-core / AVX) path — mirroring how depthwise convolutions cannot
/// exploit matrix units on real DLAs.
pub fn depthwise_conv2d(cfg: Conv2dConfig) -> Dag {
    let mut dag = Dag::new();
    let input = Tensor::new(
        "I",
        vec![cfg.batch, cfg.in_channels, cfg.height, cfg.width],
        cfg.dtype,
    );
    let weight = Tensor::new("W", vec![cfg.in_channels, cfg.kh, cfg.kw], cfg.dtype);
    dag.placeholder(input.clone());
    dag.placeholder(weight.clone());

    let data = if cfg.padding > 0 {
        let ph = cfg.height + 2 * cfg.padding;
        let pw = cfg.width + 2 * cfg.padding;
        let padded = Tensor::new("pad", vec![cfg.batch, cfg.in_channels, ph, pw], cfg.dtype);
        let n = IterVar::spatial(0, "n", cfg.batch);
        let c = IterVar::spatial(1, "c", cfg.in_channels);
        let h = IterVar::spatial(2, "h", ph);
        let w = IterVar::spatial(3, "w", pw);
        let hh = IndexExpr::var(&h) - IndexExpr::constant(cfg.padding);
        let ww = IndexExpr::var(&w) - IndexExpr::constant(cfg.padding);
        let body = ScalarExpr::Guarded {
            index: hh.clone(),
            lo: 0,
            hi: cfg.height - 1,
            value: Box::new(ScalarExpr::Guarded {
                index: ww.clone(),
                lo: 0,
                hi: cfg.width - 1,
                value: Box::new(ScalarExpr::load(
                    input,
                    vec![IndexExpr::var(&n), IndexExpr::var(&c), hh, ww],
                )),
            }),
        };
        dag.compute(ComputeOp::new(
            padded.clone(),
            vec![n, c, h, w],
            vec![],
            body,
            ReduceKind::None,
        ));
        padded
    } else {
        input
    };

    let oh = cfg.out_height();
    let ow = cfg.out_width();
    assert!(oh >= 1 && ow >= 1, "depthwise output is empty");
    let out = Tensor::new(
        "O",
        vec![cfg.batch, cfg.in_channels, oh, ow],
        cfg.dtype.accumulator(),
    );
    let n = IterVar::spatial(0, "n", cfg.batch);
    let c = IterVar::spatial(1, "c", cfg.in_channels);
    let h = IterVar::spatial(2, "oh", oh);
    let w = IterVar::spatial(3, "ow", ow);
    let rh = IterVar::reduce(4, "rh", cfg.kh);
    let rw = IterVar::reduce(5, "rw", cfg.kw);
    let ih = IndexExpr::var(&h) * IndexExpr::constant(cfg.stride) + IndexExpr::var(&rh);
    let iw = IndexExpr::var(&w) * IndexExpr::constant(cfg.stride) + IndexExpr::var(&rw);
    let body = ScalarExpr::Mul(
        Box::new(ScalarExpr::load(
            data,
            vec![IndexExpr::var(&n), IndexExpr::var(&c), ih, iw],
        )),
        Box::new(ScalarExpr::load(
            weight,
            vec![IndexExpr::var(&c), IndexExpr::var(&rh), IndexExpr::var(&rw)],
        )),
    );
    dag.compute(ComputeOp::new(
        out,
        vec![n, c, h, w],
        vec![rh, rw],
        body,
        ReduceKind::Sum,
    ));
    dag
}

/// Cumulative scan along the last axis, expressed as a triangular
/// matrix-product-like reduction `S[b, i] += A[b, r]` for `r <= i`, which is
/// the batched formulation Ansor/AMOS evaluate (SCAN).
pub fn scan(batch: i64, length: i64) -> Dag {
    let mut dag = Dag::new();
    let a = Tensor::new("A", vec![batch, length], DType::F16);
    dag.placeholder(a.clone());
    let s = Tensor::new("C", vec![batch, length], DType::F32);
    let b = IterVar::spatial(0, "b", batch);
    let i = IterVar::spatial(1, "i", length);
    let r = IterVar::reduce(2, "r", length);
    // Guard keeps only r <= i, giving the prefix-sum semantics.
    let body = ScalarExpr::Guarded {
        index: IndexExpr::var(&i) - IndexExpr::var(&r),
        lo: 0,
        hi: length - 1,
        value: Box::new(ScalarExpr::load(
            a,
            vec![IndexExpr::var(&b), IndexExpr::var(&r)],
        )),
    };
    dag.compute(ComputeOp::new(
        s,
        vec![b, i],
        vec![r],
        body,
        ReduceKind::Sum,
    ));
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_output_shape() {
        let cfg = Conv2dConfig::new(1, 56, 56, 64, 64, 3, 3, 1, 1);
        assert_eq!(cfg.out_height(), 56);
        assert_eq!(cfg.out_width(), 56);
        let dag = conv2d(cfg);
        assert_eq!(dag.len(), 4); // I, W, pad, O
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![1, 64, 56, 56]);
    }

    #[test]
    fn conv2d_unpadded_has_no_pad_stage() {
        let cfg = Conv2dConfig::new(1, 14, 14, 256, 512, 1, 1, 0, 1);
        let dag = conv2d(cfg);
        assert!(dag.stage_by_name("pad").is_none());
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn strided_conv_shape() {
        let cfg = Conv2dConfig::new(16, 14, 14, 1024, 512, 1, 1, 0, 2);
        assert_eq!(cfg.out_height(), 7);
        let dag = conv2d(cfg);
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![16, 512, 7, 7]);
    }

    #[test]
    fn dilated_conv_shape() {
        let cfg = Conv2dConfig::new(1, 32, 32, 64, 64, 3, 3, 2, 1).with_dilation(2);
        // 32 + 4 - 2*(3-1) - 1 = 31; /1 + 1 = 32
        assert_eq!(cfg.out_height(), 32);
        let dag = dil(Conv2dConfig::new(1, 32, 32, 64, 64, 3, 3, 2, 1), 2);
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![1, 64, 32, 32]);
    }

    #[test]
    fn t2d_upsamples() {
        let cfg = Conv2dConfig::new(1, 7, 7, 512, 256, 4, 4, 1, 2);
        let dag = t2d(cfg);
        // (7-1)*2 + 4 - 2 = 14
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![1, 256, 14, 14]);
        assert!(dag.stage_by_name("pad").is_some());
    }

    #[test]
    fn conv1d_shape() {
        let dag = conv1d(1, 256, 64, 128, 3, 1, 1);
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![1, 128, 256]);
    }

    #[test]
    fn conv3d_shape() {
        let dag = conv3d(1, 16, 16, 16, 16, 32, 3, 1, 1);
        assert_eq!(
            dag.stage(dag.output()).tensor().shape,
            vec![1, 32, 16, 16, 16]
        );
    }

    #[test]
    fn bmm_flops() {
        let dag = bmm(16, 64, 64, 64);
        assert_eq!(dag.total_flops(), 2 * 16 * 64 * 64 * 64);
    }

    #[test]
    fn gemv_is_narrow_gemm() {
        let dag = gemv(1024, 1024, 1);
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![1024, 1]);
    }

    #[test]
    fn depthwise_shape_and_flops() {
        let cfg = Conv2dConfig::new(1, 28, 28, 32, 32, 3, 3, 1, 1);
        let dag = depthwise_conv2d(cfg);
        assert_eq!(dag.stage(dag.output()).tensor().shape, vec![1, 32, 28, 28]);
        // Per output point: kh*kw MACs, 2 ops each; pad stage adds none.
        assert_eq!(dag.total_flops(), (2 * 28 * 28 * 32 * 9) as u64);
    }

    #[test]
    fn scan_reads_triangular() {
        let dag = scan(16, 128);
        let op = dag.stage(dag.output()).compute().expect("compute");
        assert_eq!(op.reduce_axes.len(), 1);
    }

    #[test]
    fn dtyped_gemm_accumulates_wider() {
        let dag = gemm_dtyped(64, 64, 64, DType::I8);
        assert_eq!(dag.stage(dag.output()).tensor().dtype, DType::I32);
    }
}
