//! Scalar and index expressions over iteration variables.
//!
//! Index expressions are deliberately affine-ish: they are built from
//! iteration variables, integer constants, `+`, `-`, `*` and `min`/`max`,
//! which is all that the paper's nine operators (GEMM, convolutions, scan,
//! …) need. Keeping the language small lets the schedule generator perform
//! exact static analysis: tensorizability pattern-matching (Rule-S1), data
//! reuse detection (Rule-S2/S3) and footprint computation (Rule-C5).

use std::fmt;

use crate::tensor::Tensor;

/// Identifier of an [`IterVar`] unique within one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Kind of an iteration variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterKind {
    /// Spatial (data-parallel) axis: each value writes a distinct output
    /// element.
    Spatial,
    /// Reduction axis: values are accumulated into the same output element.
    Reduce,
}

/// An iteration variable: a named loop axis with a static extent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IterVar {
    /// Identifier, unique within the owning stage.
    pub id: VarId,
    /// Human-readable name (`i`, `j`, `rc`, …).
    pub name: String,
    /// Loop extent (trip count); always ≥ 1.
    pub extent: i64,
    /// Spatial or reduction axis.
    pub kind: IterKind,
}

impl IterVar {
    /// Creates a spatial iteration variable.
    ///
    /// # Panics
    /// Panics if `extent < 1`.
    pub fn spatial(id: u32, name: impl Into<String>, extent: i64) -> Self {
        assert!(extent >= 1, "iteration extent must be >= 1");
        IterVar {
            id: VarId(id),
            name: name.into(),
            extent,
            kind: IterKind::Spatial,
        }
    }

    /// Creates a reduction iteration variable.
    ///
    /// # Panics
    /// Panics if `extent < 1`.
    pub fn reduce(id: u32, name: impl Into<String>, extent: i64) -> Self {
        assert!(extent >= 1, "iteration extent must be >= 1");
        IterVar {
            id: VarId(id),
            name: name.into(),
            extent,
            kind: IterKind::Reduce,
        }
    }
}

/// An index expression used inside tensor accesses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexExpr {
    /// Integer literal.
    Const(i64),
    /// Reference to an iteration variable of the enclosing stage.
    Var(VarId),
    /// Sum of two index expressions.
    Add(Box<IndexExpr>, Box<IndexExpr>),
    /// Difference of two index expressions.
    Sub(Box<IndexExpr>, Box<IndexExpr>),
    /// Product of two index expressions.
    Mul(Box<IndexExpr>, Box<IndexExpr>),
    /// Floor division by a positive constant.
    Div(Box<IndexExpr>, i64),
    /// Remainder by a positive constant.
    Mod(Box<IndexExpr>, i64),
}

impl IndexExpr {
    /// Index expression referring to an iteration variable.
    pub fn var(v: &IterVar) -> Self {
        IndexExpr::Var(v.id)
    }

    /// Constant index expression.
    pub fn constant(c: i64) -> Self {
        IndexExpr::Const(c)
    }

    /// All iteration variables referenced by this expression.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            IndexExpr::Const(_) => {}
            IndexExpr::Var(v) => out.push(*v),
            IndexExpr::Add(a, b) | IndexExpr::Sub(a, b) | IndexExpr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            IndexExpr::Div(a, _) | IndexExpr::Mod(a, _) => a.collect_vars(out),
        }
    }

    /// Evaluates the expression under a variable assignment.
    ///
    /// Returns `None` if a referenced variable is missing from `env`.
    pub fn eval(&self, env: &dyn Fn(VarId) -> Option<i64>) -> Option<i64> {
        Some(match self {
            IndexExpr::Const(c) => *c,
            IndexExpr::Var(v) => env(*v)?,
            IndexExpr::Add(a, b) => a.eval(env)? + b.eval(env)?,
            IndexExpr::Sub(a, b) => a.eval(env)? - b.eval(env)?,
            IndexExpr::Mul(a, b) => a.eval(env)? * b.eval(env)?,
            IndexExpr::Div(a, c) => a.eval(env)?.div_euclid(*c),
            IndexExpr::Mod(a, c) => a.eval(env)?.rem_euclid(*c),
        })
    }

    /// Inclusive (min, max) range of the expression when each variable `v`
    /// ranges over `[0, extent(v) - 1]`.
    ///
    /// Multiplication is only supported with at most one non-constant
    /// operand (affine usage), which holds for all built-in operators.
    pub fn range(&self, extent: &dyn Fn(VarId) -> i64) -> (i64, i64) {
        match self {
            IndexExpr::Const(c) => (*c, *c),
            IndexExpr::Var(v) => (0, extent(*v) - 1),
            IndexExpr::Add(a, b) => {
                let (al, ah) = a.range(extent);
                let (bl, bh) = b.range(extent);
                (al + bl, ah + bh)
            }
            IndexExpr::Sub(a, b) => {
                let (al, ah) = a.range(extent);
                let (bl, bh) = b.range(extent);
                (al - bh, ah - bl)
            }
            IndexExpr::Mul(a, b) => {
                let (al, ah) = a.range(extent);
                let (bl, bh) = b.range(extent);
                let corners = [al * bl, al * bh, ah * bl, ah * bh];
                (
                    corners.iter().copied().min().expect("non-empty"),
                    corners.iter().copied().max().expect("non-empty"),
                )
            }
            IndexExpr::Div(a, c) => {
                let (al, ah) = a.range(extent);
                (al.div_euclid(*c), ah.div_euclid(*c))
            }
            IndexExpr::Mod(_, c) => (0, *c - 1),
        }
    }

    /// Whether the expression is exactly a single variable reference.
    pub fn as_single_var(&self) -> Option<VarId> {
        match self {
            IndexExpr::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders with variable names supplied by `name`.
    pub fn display_with(&self, name: &dyn Fn(VarId) -> String) -> String {
        match self {
            IndexExpr::Const(c) => c.to_string(),
            IndexExpr::Var(v) => name(*v),
            IndexExpr::Add(a, b) => {
                format!("({} + {})", a.display_with(name), b.display_with(name))
            }
            IndexExpr::Sub(a, b) => {
                format!("({} - {})", a.display_with(name), b.display_with(name))
            }
            IndexExpr::Mul(a, b) => {
                format!("({} * {})", a.display_with(name), b.display_with(name))
            }
            IndexExpr::Div(a, c) => format!("({} / {})", a.display_with(name), c),
            IndexExpr::Mod(a, c) => format!("({} % {})", a.display_with(name), c),
        }
    }
}

impl std::ops::Add for IndexExpr {
    type Output = IndexExpr;
    fn add(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for IndexExpr {
    type Output = IndexExpr;
    fn sub(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for IndexExpr {
    type Output = IndexExpr;
    fn mul(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

/// A read of one tensor element: `tensor[indices...]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Access {
    /// Tensor being read.
    pub tensor: Tensor,
    /// One index expression per tensor dimension.
    pub indices: Vec<IndexExpr>,
}

impl Access {
    /// Creates an access, validating dimensionality.
    ///
    /// # Panics
    /// Panics if `indices.len()` differs from the tensor rank.
    pub fn new(tensor: Tensor, indices: Vec<IndexExpr>) -> Self {
        assert_eq!(
            tensor.shape.len(),
            indices.len(),
            "access to `{}` has {} indices but rank is {}",
            tensor.name,
            indices.len(),
            tensor.shape.len()
        );
        Access { tensor, indices }
    }

    /// All iteration variables referenced by the access.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = self.indices.iter().flat_map(|i| i.vars()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A scalar expression forming the body of a compute stage.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Floating-point immediate.
    Imm(f64),
    /// Read of a tensor element.
    Load(Access),
    /// Addition.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Subtraction.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Element-wise maximum (used by ReLU-style stages).
    Max(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Conditional on an index predicate: `if lhs_index in [lo, hi] then
    /// value else 0` — used to express padding without a dedicated stage.
    Guarded {
        /// Index expression tested against the bounds.
        index: IndexExpr,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Value produced when the guard holds.
        value: Box<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Load of a tensor element.
    pub fn load(tensor: Tensor, indices: Vec<IndexExpr>) -> Self {
        ScalarExpr::Load(Access::new(tensor, indices))
    }

    /// All tensor accesses in the expression, left to right.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses<'a>(&'a self, out: &mut Vec<&'a Access>) {
        match self {
            ScalarExpr::Imm(_) => {}
            ScalarExpr::Load(a) => out.push(a),
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Max(a, b) => {
                a.collect_accesses(out);
                b.collect_accesses(out);
            }
            ScalarExpr::Guarded { value, .. } => value.collect_accesses(out),
        }
    }

    /// Whether the expression is a product of exactly two tensor loads —
    /// the multiply-accumulate pattern that Rule-S1 (Tensorize) matches.
    pub fn as_mac_pattern(&self) -> Option<(&Access, &Access)> {
        match self {
            ScalarExpr::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
                (ScalarExpr::Load(x), ScalarExpr::Load(y)) => Some((x, y)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Number of arithmetic operations (adds/muls/maxes) in one evaluation.
    pub fn op_count(&self) -> u64 {
        match self {
            ScalarExpr::Imm(_) | ScalarExpr::Load(_) => 0,
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Max(a, b) => 1 + a.op_count() + b.op_count(),
            ScalarExpr::Guarded { value, .. } => value.op_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn t(name: &str, shape: &[i64]) -> Tensor {
        Tensor::new(name, shape.to_vec(), DType::F16)
    }

    #[test]
    fn index_expr_vars_dedup() {
        let i = IterVar::spatial(0, "i", 4);
        let e = IndexExpr::var(&i) + IndexExpr::var(&i) * IndexExpr::constant(2);
        assert_eq!(e.vars(), vec![VarId(0)]);
    }

    #[test]
    fn index_expr_eval() {
        let i = IterVar::spatial(0, "i", 4);
        let r = IterVar::reduce(1, "r", 3);
        let e = IndexExpr::var(&i) * IndexExpr::constant(2) + IndexExpr::var(&r);
        let env = |v: VarId| -> Option<i64> {
            match v.0 {
                0 => Some(3),
                1 => Some(1),
                _ => None,
            }
        };
        assert_eq!(e.eval(&env), Some(7));
    }

    #[test]
    fn index_expr_range_affine() {
        let i = IterVar::spatial(0, "i", 8);
        let r = IterVar::reduce(1, "r", 3);
        // i + r - 1 ranges over [-1, 8]: the padded-convolution pattern.
        let e = IndexExpr::var(&i) + IndexExpr::var(&r) - IndexExpr::constant(1);
        let ext = |v: VarId| if v.0 == 0 { 8 } else { 3 };
        assert_eq!(e.range(&ext), (-1, 8));
    }

    #[test]
    fn access_rank_checked() {
        let a = t("A", &[4, 4]);
        let i = IterVar::spatial(0, "i", 4);
        let acc = Access::new(a, vec![IndexExpr::var(&i), IndexExpr::constant(0)]);
        assert_eq!(acc.vars(), vec![VarId(0)]);
    }

    #[test]
    #[should_panic(expected = "indices")]
    fn access_rank_mismatch_panics() {
        let a = t("A", &[4, 4]);
        Access::new(a, vec![IndexExpr::constant(0)]);
    }

    #[test]
    fn mac_pattern_detection() {
        let a = t("A", &[4, 4]);
        let b = t("B", &[4, 4]);
        let i = IterVar::spatial(0, "i", 4);
        let j = IterVar::spatial(1, "j", 4);
        let r = IterVar::reduce(2, "r", 4);
        let body = ScalarExpr::Mul(
            Box::new(ScalarExpr::load(
                a,
                vec![IndexExpr::var(&i), IndexExpr::var(&r)],
            )),
            Box::new(ScalarExpr::load(
                b,
                vec![IndexExpr::var(&r), IndexExpr::var(&j)],
            )),
        );
        let (x, y) = body.as_mac_pattern().expect("is a MAC");
        assert_eq!(x.tensor.name, "A");
        assert_eq!(y.tensor.name, "B");
        assert_eq!(body.op_count(), 1);
    }

    #[test]
    fn non_mac_patterns_rejected() {
        let a = t("A", &[4]);
        let i = IterVar::spatial(0, "i", 4);
        let e = ScalarExpr::Add(
            Box::new(ScalarExpr::load(a, vec![IndexExpr::var(&i)])),
            Box::new(ScalarExpr::Imm(1.0)),
        );
        assert!(e.as_mac_pattern().is_none());
    }
}
