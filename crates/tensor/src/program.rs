//! Naive loop-nest programs: the starting point of schedule generation.
//!
//! Directly expanding each compute stage's iteration variables yields the
//! "naive program" that Algorithm 1 takes as input. The schedule state in
//! `heron-sched` then transforms this structure symbolically.

use std::fmt::Write as _;

use crate::compute::{ReduceKind, StageKind};
use crate::dag::Dag;
use crate::expr::IterKind;

/// One loop of a naive program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveLoop {
    /// Loop variable name.
    pub var: String,
    /// Trip count.
    pub extent: i64,
    /// Whether this is a reduction loop.
    pub is_reduce: bool,
}

/// The fully expanded loop nest of a single stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveStage {
    /// Stage (output tensor) name.
    pub name: String,
    /// Loops, outermost first: spatial axes then reduction axes.
    pub loops: Vec<NaiveLoop>,
    /// Human-readable body, e.g. `C[i, j] += A[i, r] * B[r, j]`.
    pub body: String,
}

/// A naive program: one loop nest per compute stage, in topological order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NaiveProgram {
    /// Per-stage loop nests.
    pub stages: Vec<NaiveStage>,
}

impl NaiveProgram {
    /// Renders the program as indented pseudo-C, as used in the paper's
    /// Figure 4 input panel.
    pub fn to_pseudo_code(&self) -> String {
        let mut out = String::new();
        for stage in &self.stages {
            let mut indent = 0usize;
            for l in &stage.loops {
                let _ = writeln!(
                    out,
                    "{}for {} in 0..{} {{{}",
                    "  ".repeat(indent),
                    l.var,
                    l.extent,
                    if l.is_reduce { " // reduce" } else { "" }
                );
                indent += 1;
            }
            let _ = writeln!(out, "{}{}", "  ".repeat(indent), stage.body);
            for d in (0..stage.loops.len()).rev() {
                let _ = writeln!(out, "{}}}", "  ".repeat(d));
            }
        }
        out
    }
}

/// Expands a DAG into its naive program.
pub fn naive_program(dag: &Dag) -> NaiveProgram {
    let mut stages = Vec::new();
    for (_, stage) in dag.iter() {
        let op = match &stage.kind {
            StageKind::Placeholder(_) => continue,
            StageKind::Compute(op) => op,
        };
        let loops = op
            .all_axes()
            .map(|a| NaiveLoop {
                var: a.name.clone(),
                extent: a.extent,
                is_reduce: a.kind == IterKind::Reduce,
            })
            .collect();
        let name_of = |vid| {
            op.axis(vid)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| format!("{vid}"))
        };
        let lhs_idx: Vec<String> = op.axes.iter().map(|a| a.name.clone()).collect();
        let rhs: Vec<String> = op
            .body
            .accesses()
            .iter()
            .map(|acc| {
                let idx: Vec<String> = acc
                    .indices
                    .iter()
                    .map(|ix| crate::simplify::simplify(ix).display_with(&name_of))
                    .collect();
                format!("{}[{}]", acc.tensor.name, idx.join(", "))
            })
            .collect();
        let assign = match op.reduce {
            ReduceKind::None => "=",
            ReduceKind::Sum => "+=",
            ReduceKind::Max => "max=",
        };
        let body = format!(
            "{}[{}] {} {}",
            op.output.name,
            lhs_idx.join(", "),
            assign,
            rhs.join(" * ")
        );
        stages.push(NaiveStage {
            name: stage.name.clone(),
            loops,
            body,
        });
    }
    NaiveProgram { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn gemm_naive_program() {
        let dag = ops::gemm(32, 32, 16);
        let p = naive_program(&dag);
        assert_eq!(p.stages.len(), 1);
        let s = &p.stages[0];
        assert_eq!(s.loops.len(), 3);
        assert!(s.loops[2].is_reduce);
        assert!(s.body.contains("+="));
        let code = p.to_pseudo_code();
        assert!(code.contains("for i in 0..32"));
        assert!(code.contains("for r in 0..16 { // reduce"));
    }

    #[test]
    fn padded_conv_has_two_nests() {
        let dag = ops::conv2d(ops::Conv2dConfig::new(1, 8, 8, 4, 4, 3, 3, 1, 1));
        let p = naive_program(&dag);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].name, "pad");
        assert_eq!(p.stages[1].name, "O");
        assert_eq!(p.stages[1].loops.len(), 7);
    }

    #[test]
    fn pseudo_code_braces_balance() {
        let dag = ops::conv1d(1, 32, 8, 8, 3, 1, 1);
        let code = naive_program(&dag).to_pseudo_code();
        let open = code.matches('{').count();
        let close = code.matches('}').count();
        assert_eq!(open, close);
    }
}
