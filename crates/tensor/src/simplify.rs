//! Algebraic simplification of index expressions.
//!
//! The operator builders generate expressions like `i * 1 + r * 1 - 0`
//! (stride/dilation 1, padding 0); simplification normalises them so that
//! static analysis (tensorize pattern matching, footprint computation)
//! sees canonical forms and the pseudo-code printer emits readable output.

use crate::expr::IndexExpr;

/// Simplifies an index expression by constant folding and identity
/// elimination. The result is semantically equal on every assignment.
pub fn simplify(expr: &IndexExpr) -> IndexExpr {
    match expr {
        IndexExpr::Const(_) | IndexExpr::Var(_) => expr.clone(),
        IndexExpr::Add(a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            match (&a, &b) {
                (IndexExpr::Const(x), IndexExpr::Const(y)) => IndexExpr::Const(x + y),
                (IndexExpr::Const(0), _) => b,
                (_, IndexExpr::Const(0)) => a,
                // Reassociate constants rightward: (e + c1) + c2 = e + (c1+c2).
                (IndexExpr::Add(inner, c1), IndexExpr::Const(c2)) => {
                    if let IndexExpr::Const(c1v) = c1.as_ref() {
                        simplify(&IndexExpr::Add(
                            inner.clone(),
                            Box::new(IndexExpr::Const(c1v + c2)),
                        ))
                    } else {
                        IndexExpr::Add(Box::new(a), Box::new(b))
                    }
                }
                _ => IndexExpr::Add(Box::new(a), Box::new(b)),
            }
        }
        IndexExpr::Sub(a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            match (&a, &b) {
                (IndexExpr::Const(x), IndexExpr::Const(y)) => IndexExpr::Const(x - y),
                (_, IndexExpr::Const(0)) => a,
                _ if a == b => IndexExpr::Const(0),
                _ => IndexExpr::Sub(Box::new(a), Box::new(b)),
            }
        }
        IndexExpr::Mul(a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            match (&a, &b) {
                (IndexExpr::Const(x), IndexExpr::Const(y)) => IndexExpr::Const(x * y),
                (IndexExpr::Const(0), _) | (_, IndexExpr::Const(0)) => IndexExpr::Const(0),
                (IndexExpr::Const(1), _) => b,
                (_, IndexExpr::Const(1)) => a,
                _ => IndexExpr::Mul(Box::new(a), Box::new(b)),
            }
        }
        IndexExpr::Div(a, c) => {
            let a = simplify(a);
            match (&a, *c) {
                (IndexExpr::Const(x), c) => IndexExpr::Const(x.div_euclid(c)),
                (_, 1) => a,
                // (e * c) / c = e for positive c.
                (IndexExpr::Mul(e, k), c) => {
                    if matches!(k.as_ref(), IndexExpr::Const(kv) if *kv == c) {
                        e.as_ref().clone()
                    } else {
                        IndexExpr::Div(Box::new(a), c)
                    }
                }
                _ => IndexExpr::Div(Box::new(a), *c),
            }
        }
        IndexExpr::Mod(a, c) => {
            let a = simplify(a);
            match (&a, *c) {
                (IndexExpr::Const(x), c) => IndexExpr::Const(x.rem_euclid(c)),
                (_, 1) => IndexExpr::Const(0),
                _ => IndexExpr::Mod(Box::new(a), *c),
            }
        }
    }
}

/// Number of AST nodes (simplification never increases it).
pub fn size(expr: &IndexExpr) -> usize {
    match expr {
        IndexExpr::Const(_) | IndexExpr::Var(_) => 1,
        IndexExpr::Add(a, b) | IndexExpr::Sub(a, b) | IndexExpr::Mul(a, b) => 1 + size(a) + size(b),
        IndexExpr::Div(a, _) | IndexExpr::Mod(a, _) => 1 + size(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{IterVar, VarId};

    fn v(id: u32) -> IndexExpr {
        IndexExpr::var(&IterVar::spatial(id, format!("v{id}"), 16))
    }

    #[test]
    fn identities_eliminate() {
        // i * 1 + 0 => i
        let e = v(0) * IndexExpr::Const(1) + IndexExpr::Const(0);
        assert_eq!(simplify(&e), v(0));
        // i * 0 => 0
        let e = v(0) * IndexExpr::Const(0);
        assert_eq!(simplify(&e), IndexExpr::Const(0));
        // i - i => 0
        let e = v(1) - v(1);
        assert_eq!(simplify(&e), IndexExpr::Const(0));
    }

    #[test]
    fn constants_fold_and_reassociate() {
        // ((i + 2) + 3) => i + 5
        let e = (v(0) + IndexExpr::Const(2)) + IndexExpr::Const(3);
        assert_eq!(simplify(&e), v(0) + IndexExpr::Const(5));
        // 4 * 3 => 12
        let e = IndexExpr::Const(4) * IndexExpr::Const(3);
        assert_eq!(simplify(&e), IndexExpr::Const(12));
    }

    #[test]
    fn div_mod_normalise() {
        // (i * 4) / 4 => i
        let e = IndexExpr::Div(Box::new(v(0) * IndexExpr::Const(4)), 4);
        assert_eq!(simplify(&e), v(0));
        // e % 1 => 0
        let e = IndexExpr::Mod(Box::new(v(0) + v(1)), 1);
        assert_eq!(simplify(&e), IndexExpr::Const(0));
        // e / 1 => e
        let e = IndexExpr::Div(Box::new(v(2)), 1);
        assert_eq!(simplify(&e), v(2));
    }

    #[test]
    fn simplification_preserves_semantics() {
        // Exhaustively check a representative conv-style expression.
        let e = (v(0) * IndexExpr::Const(1) + v(1) * IndexExpr::Const(1)) - IndexExpr::Const(0);
        let s = simplify(&e);
        assert!(size(&s) < size(&e));
        for i in 0..16i64 {
            for r in 0..16i64 {
                let env = |var: VarId| Some(if var.0 == 0 { i } else { r });
                assert_eq!(e.eval(&env), s.eval(&env));
            }
        }
    }

    #[test]
    fn size_never_grows() {
        let exprs = [
            v(0) + v(1) * IndexExpr::Const(2),
            IndexExpr::Div(Box::new(v(0) * IndexExpr::Const(3)), 3),
            (v(0) - v(0)) + IndexExpr::Const(7),
        ];
        for e in exprs {
            assert!(size(&simplify(&e)) <= size(&e));
        }
    }
}
