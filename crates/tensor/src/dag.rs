//! The computation DAG: stages connected by tensor reads.

use std::collections::HashMap;
use std::fmt;

use crate::compute::{ComputeOp, Stage, StageKind};
use crate::tensor::Tensor;

/// Index of a stage within a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub usize);

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A directed acyclic graph of tensor-computation stages.
///
/// Stages must be appended in a valid topological order (producers before
/// consumers), which all the builders in [`crate::ops`] do naturally.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    stages: Vec<Stage>,
    by_name: HashMap<String, StageId>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Adds an input placeholder stage.
    ///
    /// # Panics
    /// Panics if a stage of the same name already exists.
    pub fn placeholder(&mut self, tensor: Tensor) -> StageId {
        self.push(Stage {
            name: tensor.name.clone(),
            kind: StageKind::Placeholder(tensor),
        })
    }

    /// Adds a compute stage.
    ///
    /// # Panics
    /// Panics if the stage name collides or an input tensor is not defined
    /// by an earlier stage.
    pub fn compute(&mut self, op: ComputeOp) -> StageId {
        for input in op.input_names() {
            assert!(
                self.by_name.contains_key(&input),
                "stage `{}` reads undefined tensor `{}`",
                op.output.name,
                input
            );
        }
        self.push(Stage {
            name: op.output.name.clone(),
            kind: StageKind::Compute(op),
        })
    }

    fn push(&mut self, stage: Stage) -> StageId {
        assert!(
            !self.by_name.contains_key(&stage.name),
            "duplicate stage name `{}`",
            stage.name
        );
        let id = StageId(self.stages.len());
        self.by_name.insert(stage.name.clone(), id);
        self.stages.push(stage);
        id
    }

    /// Number of stages (placeholders + computes).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the DAG has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage lookup by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.0]
    }

    /// Stage lookup by name.
    pub fn stage_by_name(&self, name: &str) -> Option<(StageId, &Stage)> {
        self.by_name.get(name).map(|&id| (id, &self.stages[id.0]))
    }

    /// Iterator over `(id, stage)` pairs in insertion (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (StageId, &Stage)> {
        self.stages.iter().enumerate().map(|(i, s)| (StageId(i), s))
    }

    /// Iterator over compute stages only.
    pub fn compute_stages(&self) -> impl Iterator<Item = (StageId, &ComputeOp)> {
        self.iter()
            .filter_map(|(id, s)| s.compute().map(|op| (id, op)))
    }

    /// Producer stage ids for each input tensor of `id`.
    pub fn producers(&self, id: StageId) -> Vec<StageId> {
        match &self.stage(id).kind {
            StageKind::Placeholder(_) => Vec::new(),
            StageKind::Compute(op) => op
                .input_names()
                .iter()
                .map(|n| *self.by_name.get(n).expect("validated at insert"))
                .collect(),
        }
    }

    /// Stage ids that read the tensor produced by `id`.
    pub fn consumers(&self, id: StageId) -> Vec<StageId> {
        let name = &self.stage(id).name;
        self.iter()
            .filter(|(_, s)| {
                s.compute()
                    .is_some_and(|op| op.input_names().iter().any(|n| n == name))
            })
            .map(|(cid, _)| cid)
            .collect()
    }

    /// The final output stage: the unique stage with no consumers.
    ///
    /// # Panics
    /// Panics if the DAG is empty or has multiple sink stages.
    pub fn output(&self) -> StageId {
        let sinks: Vec<StageId> = self
            .iter()
            .filter(|(id, _)| self.consumers(*id).is_empty())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(
            sinks.len(),
            1,
            "DAG must have exactly one output stage, has {}",
            sinks.len()
        );
        sinks[0]
    }

    /// Stage ids in reverse topological order (output first) — the order in
    /// which Algorithm 1 visits nodes.
    pub fn reverse_topological(&self) -> Vec<StageId> {
        // Insertion order is topological, so reversal suffices.
        (0..self.stages.len()).rev().map(StageId).collect()
    }

    /// Post-order traversal from the output stage (paper's
    /// `post_order_traverse`): children (producers) before parents, output
    /// stage last; the schedule generator pops from the back.
    pub fn post_order_traverse(&self) -> Vec<StageId> {
        let mut visited = vec![false; self.stages.len()];
        let mut order = Vec::with_capacity(self.stages.len());
        let output = self.output();
        self.post_order_visit(output, &mut visited, &mut order);
        order
    }

    fn post_order_visit(&self, id: StageId, visited: &mut [bool], order: &mut Vec<StageId>) {
        if visited[id.0] {
            return;
        }
        visited[id.0] = true;
        for p in self.producers(id) {
            self.post_order_visit(p, visited, order);
        }
        order.push(id);
    }

    /// Total arithmetic work of all compute stages.
    pub fn total_flops(&self) -> u64 {
        self.compute_stages().map(|(_, op)| op.flops()).sum()
    }
}

impl fmt::Display for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, s) in self.iter() {
            match &s.kind {
                StageKind::Placeholder(t) => writeln!(f, "{id}: placeholder {t}")?,
                StageKind::Compute(op) => writeln!(f, "{id}: compute {op}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn gemm_dag_shape() {
        let dag = ops::gemm(64, 64, 64);
        assert_eq!(dag.len(), 3); // A, B, C
        assert_eq!(dag.compute_stages().count(), 1);
        let out = dag.output();
        assert_eq!(dag.stage(out).name, "C");
        assert_eq!(dag.producers(out).len(), 2);
    }

    #[test]
    fn post_order_ends_at_output() {
        let dag = ops::conv2d(ops::Conv2dConfig::new(1, 56, 56, 64, 64, 3, 3, 1, 1));
        let order = dag.post_order_traverse();
        assert_eq!(order.len(), dag.len());
        let last = *order.last().expect("non-empty");
        assert_eq!(last, dag.output());
        // producers precede consumers
        for (pos, id) in order.iter().enumerate() {
            for p in dag.producers(*id) {
                let ppos = order.iter().position(|x| *x == p).expect("present");
                assert!(ppos < pos, "producer after consumer");
            }
        }
    }

    #[test]
    fn consumers_inverse_of_producers() {
        let dag = ops::gemm(16, 16, 16);
        let (a, _) = dag.stage_by_name("A").expect("A exists");
        let out = dag.output();
        assert_eq!(dag.consumers(a), vec![out]);
    }

    #[test]
    #[should_panic(expected = "undefined tensor")]
    fn reading_unknown_tensor_panics() {
        use crate::compute::ReduceKind;
        use crate::dtype::DType;
        use crate::expr::{IndexExpr, IterVar, ScalarExpr};
        let mut dag = Dag::new();
        let ghost = Tensor::new("ghost", vec![4], DType::F32);
        let c = Tensor::new("C", vec![4], DType::F32);
        let i = IterVar::spatial(0, "i", 4);
        let body = ScalarExpr::load(ghost, vec![IndexExpr::var(&i)]);
        dag.compute(ComputeOp::new(c, vec![i], vec![], body, ReduceKind::None));
    }
}
