//! Tensor expression language, operator library, stage DAG, and naive
//! loop-nest IR for the Heron reproduction.
//!
//! This crate plays the role of the tensor-compiler substrate (TVM's
//! `te.compute` layer in the paper): it describes *what* to compute, while
//! `heron-sched` describes *how*. A computation is a [`dag::Dag`] of
//! [`compute::Stage`]s; each compute stage carries spatial and reduction
//! [`expr::IterVar`]s and a scalar [`expr::ScalarExpr`] body.
//!
//! # Example
//!
//! ```
//! use heron_tensor::ops;
//!
//! // C[i, j] += A[i, r] * B[r, j] with i=128, j=128, r=64
//! let dag = ops::gemm(128, 128, 64);
//! assert_eq!(dag.compute_stages().count(), 1);
//! let naive = heron_tensor::program::naive_program(&dag);
//! assert!(naive.to_pseudo_code().contains("for"));
//! ```

pub mod compute;
pub mod dag;
pub mod dtype;
pub mod expr;
pub mod ops;
pub mod program;
pub mod simplify;
pub mod tensor;

pub use compute::{ComputeOp, ReduceKind, Stage, StageKind};
pub use dag::{Dag, StageId};
pub use dtype::DType;
pub use expr::{Access, IterKind, IterVar, ScalarExpr, VarId};
pub use tensor::Tensor;
