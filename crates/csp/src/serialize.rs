//! Plain-text (de)serialisation of CSPs and solutions.
//!
//! Lets generated spaces be cached on disk, inspected, or diffed. The
//! format is line-oriented and self-describing:
//!
//! ```text
//! heron-csp v1
//! var tile.C.i0 tunable values 1,2,4,8
//! var grid other range 1..4096
//! var m arch values 8,16,32
//! prod grid = tile.C.i0 m
//! in m 8,16,32
//! le grid m
//! select grid m <- tile.C.i0 m
//! ```

use crate::constraint::Constraint;
use crate::domain::Domain;
use crate::problem::{Csp, Solution, VarCategory, VarRef};

/// Error from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csp parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn category_tag(c: VarCategory) -> &'static str {
    match c {
        VarCategory::Arch => "arch",
        VarCategory::LoopLength => "loop",
        VarCategory::Tunable => "tunable",
        VarCategory::Other => "other",
    }
}

fn parse_category(tag: &str) -> Option<VarCategory> {
    Some(match tag {
        "arch" => VarCategory::Arch,
        "loop" => VarCategory::LoopLength,
        "tunable" => VarCategory::Tunable,
        "other" => VarCategory::Other,
        _ => return None,
    })
}

/// Serialises a CSP to the text format.
pub fn to_text(csp: &Csp) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("heron-csp v1\n");
    for (_, decl) in csp.vars() {
        match &decl.domain {
            Domain::Values(v) => {
                let vals: Vec<String> = v.iter().map(|x| x.to_string()).collect();
                let _ = writeln!(
                    out,
                    "var {} {} values {}",
                    decl.name,
                    category_tag(decl.category),
                    vals.join(",")
                );
            }
            Domain::Range { lo, hi } => {
                let _ = writeln!(
                    out,
                    "var {} {} range {lo}..{hi}",
                    decl.name,
                    category_tag(decl.category)
                );
            }
        }
    }
    let name = |r: VarRef| csp.var(r).name.clone();
    for c in csp.constraints() {
        match c {
            Constraint::Prod { out: o, factors } => {
                let fs: Vec<String> = factors.iter().map(|&f| name(f)).collect();
                let _ = writeln!(out, "prod {} = {}", name(*o), fs.join(" "));
            }
            Constraint::Sum { out: o, terms } => {
                let ts: Vec<String> = terms.iter().map(|&t| name(t)).collect();
                let _ = writeln!(out, "sum {} = {}", name(*o), ts.join(" "));
            }
            Constraint::Eq(a, b) => {
                let _ = writeln!(out, "eq {} {}", name(*a), name(*b));
            }
            Constraint::Le(a, b) => {
                let _ = writeln!(out, "le {} {}", name(*a), name(*b));
            }
            Constraint::In { var, values } => {
                let vals: Vec<String> = values.iter().map(|x| x.to_string()).collect();
                let _ = writeln!(out, "in {} {}", name(*var), vals.join(","));
            }
            Constraint::Select {
                out: o,
                index,
                choices,
            } => {
                let cs: Vec<String> = choices.iter().map(|&x| name(x)).collect();
                let _ = writeln!(
                    out,
                    "select {} {} <- {}",
                    name(*o),
                    name(*index),
                    cs.join(" ")
                );
            }
        }
    }
    out
}

/// Parses the text format back into a CSP.
///
/// # Errors
/// Returns [`ParseError`] on any malformed line or dangling reference.
pub fn from_text(text: &str) -> Result<Csp, ParseError> {
    let err = |line: usize, message: &str| ParseError {
        line: line + 1,
        message: message.into(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "heron-csp v1")) => {}
        _ => return Err(err(0, "missing `heron-csp v1` header")),
    }
    let mut csp = Csp::new();
    let lookup = |csp: &Csp, ln: usize, name: &str| {
        csp.var_by_name(name)
            .ok_or_else(|| err(ln, &format!("unknown variable `{name}`")))
    };
    let parse_values = |ln: usize, text: &str| -> Result<Vec<i64>, ParseError> {
        text.split(',')
            .map(|v| {
                v.trim()
                    .parse::<i64>()
                    .map_err(|_| err(ln, &format!("bad value `{v}`")))
            })
            .collect()
    };
    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "var" => {
                let name = words.next().ok_or_else(|| err(ln, "var needs a name"))?;
                let cat = words
                    .next()
                    .and_then(parse_category)
                    .ok_or_else(|| err(ln, "bad category"))?;
                let kind = words.next().ok_or_else(|| err(ln, "missing domain kind"))?;
                let body = words.next().ok_or_else(|| err(ln, "missing domain body"))?;
                let domain = match kind {
                    "values" => Domain::values(parse_values(ln, body)?),
                    "range" => {
                        let (lo, hi) = body
                            .split_once("..")
                            .ok_or_else(|| err(ln, "range needs lo..hi"))?;
                        let lo = lo.parse().map_err(|_| err(ln, "bad range lo"))?;
                        let hi = hi.parse().map_err(|_| err(ln, "bad range hi"))?;
                        Domain::range(lo, hi)
                    }
                    _ => return Err(err(ln, "domain kind must be values|range")),
                };
                csp.add_var(name, domain, cat);
            }
            "prod" | "sum" => {
                let out_name = words.next().ok_or_else(|| err(ln, "missing output"))?;
                let eq = words.next();
                if eq != Some("=") {
                    return Err(err(ln, "expected `=`"));
                }
                let out = lookup(&csp, ln, out_name)?;
                let operands: Result<Vec<VarRef>, ParseError> =
                    words.map(|w| lookup(&csp, ln, w)).collect();
                let operands = operands?;
                if operands.is_empty() {
                    return Err(err(ln, "needs at least one operand"));
                }
                if keyword == "prod" {
                    csp.post_prod(out, operands);
                } else {
                    csp.post_sum(out, operands);
                }
            }
            "eq" | "le" => {
                let a = lookup(
                    &csp,
                    ln,
                    words.next().ok_or_else(|| err(ln, "missing lhs"))?,
                )?;
                let b = lookup(
                    &csp,
                    ln,
                    words.next().ok_or_else(|| err(ln, "missing rhs"))?,
                )?;
                if keyword == "eq" {
                    csp.post_eq(a, b);
                } else {
                    csp.post_le(a, b);
                }
            }
            "in" => {
                let var = lookup(
                    &csp,
                    ln,
                    words.next().ok_or_else(|| err(ln, "missing var"))?,
                )?;
                let vals =
                    parse_values(ln, words.next().ok_or_else(|| err(ln, "missing values"))?)?;
                csp.post_in(var, vals);
            }
            "select" => {
                let out = lookup(
                    &csp,
                    ln,
                    words.next().ok_or_else(|| err(ln, "missing out"))?,
                )?;
                let index = lookup(
                    &csp,
                    ln,
                    words.next().ok_or_else(|| err(ln, "missing index"))?,
                )?;
                if words.next() != Some("<-") {
                    return Err(err(ln, "expected `<-`"));
                }
                let choices: Result<Vec<VarRef>, ParseError> =
                    words.map(|w| lookup(&csp, ln, w)).collect();
                let choices = choices?;
                if choices.is_empty() {
                    return Err(err(ln, "select needs choices"));
                }
                csp.post_select(out, index, choices);
            }
            other => return Err(err(ln, &format!("unknown keyword `{other}`"))),
        }
    }
    Ok(csp)
}

/// Serialises a solution as `name = value` lines against its CSP.
pub fn solution_to_text(csp: &Csp, sol: &Solution) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("heron-solution v1\n");
    for (r, decl) in csp.vars() {
        let _ = writeln!(out, "{} = {}", decl.name, sol.value(r));
    }
    out
}

/// Parses a solution produced by [`solution_to_text`] for `csp`.
///
/// # Errors
/// Returns [`ParseError`] on malformed lines, unknown variables, or
/// missing assignments.
pub fn solution_from_text(csp: &Csp, text: &str) -> Result<Solution, ParseError> {
    let err = |line: usize, message: &str| ParseError {
        line: line + 1,
        message: message.into(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "heron-solution v1")) => {}
        _ => return Err(err(0, "missing `heron-solution v1` header")),
    }
    let mut values = vec![None; csp.num_vars()];
    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .ok_or_else(|| err(ln, "expected name = value"))?;
        let var = csp
            .var_by_name(name.trim())
            .ok_or_else(|| err(ln, &format!("unknown variable `{}`", name.trim())))?;
        let v: i64 = value.trim().parse().map_err(|_| err(ln, "bad value"))?;
        values[var.0] = Some(v);
    }
    let values: Option<Vec<i64>> = values.into_iter().collect();
    match values {
        Some(v) => Ok(Solution::new(v)),
        None => Err(ParseError {
            line: 0,
            message: "missing assignments".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_rng::HeronRng;

    fn sample_csp() -> Csp {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 4, 8]), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::values([1, 2, 4, 8]), VarCategory::Tunable);
        let n = csp.add_const("n", 8);
        let s = csp.add_var("s", Domain::range(0, 64), VarCategory::Other);
        let idx = csp.add_var("idx", Domain::values([0, 1]), VarCategory::Tunable);
        let pick = csp.add_var("pick", Domain::range(1, 8), VarCategory::LoopLength);
        csp.post_prod(n, vec![x, y]);
        csp.post_sum(s, vec![x, y]);
        csp.post_le(x, n);
        csp.post_eq(pick, pick);
        csp.post_in(idx, [0, 1]);
        csp.post_select(pick, idx, vec![x, y]);
        csp
    }

    #[test]
    fn csp_text_roundtrip() {
        let csp = sample_csp();
        let text = to_text(&csp);
        let back = from_text(&text).expect("parses");
        assert_eq!(back.num_vars(), csp.num_vars());
        assert_eq!(back.num_constraints(), csp.num_constraints());
        // Solutions transfer across the round trip.
        let mut rng = HeronRng::from_seed(1);
        for sol in crate::solver::rand_sat(&csp, &mut rng, 8).expect_sat("sample csp") {
            assert!(crate::solver::validate(&back, &sol));
        }
        // Second round trip is a fixed point.
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn solution_text_roundtrip() {
        let csp = sample_csp();
        let mut rng = HeronRng::from_seed(2);
        let sol = crate::solver::rand_sat(&csp, &mut rng, 1)
            .one()
            .expect("solvable");
        let text = solution_to_text(&csp, &sol);
        let back = solution_from_text(&csp, &text).expect("parses");
        assert_eq!(back, sol);
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        assert!(from_text("nope").is_err());
        let bad = "heron-csp v1\nvar x tunable values 1,2\nwobble x y\n";
        let e = from_text(bad).expect_err("unknown keyword");
        assert_eq!(e.line, 3);
        let dangling = "heron-csp v1\neq a b\n";
        assert!(from_text(dangling).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "heron-csp v1\n\n# a comment\nvar x tunable values 1,2\n";
        let csp = from_text(text).expect("parses");
        assert_eq!(csp.num_vars(), 1);
    }

    #[test]
    fn solution_requires_every_variable() {
        let csp = sample_csp();
        let partial = "heron-solution v1\nx = 2\n";
        assert!(solution_from_text(&csp, partial).is_err());
    }
}
