//! Root-wipeout conflict diagnosis.
//!
//! When a CSP is [`SolveStatus::RootInfeasible`](crate::SolveStatus), the
//! interesting question is *which constraints conflict*. This module
//! answers it with a deterministic greedy-deletion diagnosis: walk the
//! posted constraints in posting order, keep each one whose addition
//! leaves the root propagation feasible, and report the complement — a
//! minimal-ish *removal set* whose deletion provably restores root
//! feasibility (the kept subset is feasible by construction).
//!
//! The result is a correction set (an MCS relative to bounds-consistent
//! root propagation), not a guaranteed-minimum one: greedy deletion gives
//! a deterministic answer in `O(m²)` propagation passes, which is the
//! right trade-off for the tens-of-constraints spaces Heron generates.

use crate::problem::Csp;
use crate::propagate::Propagator;

/// One constraint named by the diagnoser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictEntry {
    /// Index of the constraint in [`Csp::constraints`] posting order.
    pub index: usize,
    /// Human-readable rendering of the constraint.
    pub constraint: String,
}

/// The diagnosis of a root-infeasible CSP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictReport {
    /// Total constraints posted on the diagnosed problem.
    pub total_constraints: usize,
    /// Constraints kept by the greedy pass (root-feasible together).
    pub kept_constraints: usize,
    /// Constraints whose removal restores root feasibility, in posting
    /// order.
    pub removal: Vec<ConflictEntry>,
}

impl ConflictReport {
    /// `true` iff removing [`ConflictReport::removal`] leaves a feasible
    /// root (always holds by construction; exposed for property tests).
    pub fn removal_restores_feasibility(&self, csp: &Csp) -> bool {
        let removed: Vec<usize> = self.removal.iter().map(|e| e.index).collect();
        let keep: Vec<usize> = (0..csp.num_constraints())
            .filter(|i| !removed.contains(i))
            .collect();
        root_feasible(&csp.with_constraint_subset(&keep))
    }
}

impl std::fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "root-infeasible: removing {} of {} constraint(s) restores feasibility:",
            self.removal.len(),
            self.total_constraints
        )?;
        for e in &self.removal {
            writeln!(f, "  #{:<3} {}", e.index, e.constraint)?;
        }
        Ok(())
    }
}

/// `true` iff root propagation of `csp` completes without a wipeout.
///
/// This is the solver's infeasibility oracle: sound (a `false` answer is
/// a proof of unsatisfiability) but incomplete (a `true` answer only
/// means the root survived bounds-consistent filtering).
pub fn root_feasible(csp: &Csp) -> bool {
    let prop = Propagator::new(csp);
    let mut store = prop.store();
    prop.run_all(&mut store).is_ok()
}

/// Diagnoses a root-infeasible CSP.
///
/// Returns `None` when the root is feasible (nothing to diagnose).
/// Otherwise returns the greedy-deletion [`ConflictReport`]; the kept
/// subset is root-feasible, so removing the reported constraints always
/// restores feasibility. Deterministic: depends only on the posting
/// order, never on a seed.
pub fn diagnose_root_conflict(csp: &Csp) -> Option<ConflictReport> {
    if root_feasible(csp) {
        return None;
    }
    let total = csp.num_constraints();
    let mut kept: Vec<usize> = Vec::with_capacity(total);
    let mut removal = Vec::new();
    for i in 0..total {
        kept.push(i);
        if root_feasible(&csp.with_constraint_subset(&kept)) {
            continue;
        }
        kept.pop();
        removal.push(ConflictEntry {
            index: i,
            constraint: csp.constraints()[i].to_string(),
        });
    }
    Some(ConflictReport {
        total_constraints: total,
        kept_constraints: kept.len(),
        removal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::problem::VarCategory;

    /// `a ∈ {1,2}` vs `a ∈ {7,9}`: a two-constraint clash behind a benign
    /// LE.
    fn clashing_csp() -> Csp {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2, 7, 9]), VarCategory::Tunable);
        let cap = csp.add_const("cap", 100);
        csp.post_le(a, cap); // #0 benign
        csp.post_in(a, [1, 2]); // #1 kept (first feasible)
        csp.post_in(a, [7, 9]); // #2 clashes with #1
        csp
    }

    #[test]
    fn feasible_root_needs_no_diagnosis() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        csp.post_in(a, [1]);
        assert!(root_feasible(&csp));
        assert!(diagnose_root_conflict(&csp).is_none());
    }

    #[test]
    fn greedy_diagnosis_names_the_later_clashing_constraint() {
        let csp = clashing_csp();
        assert!(!root_feasible(&csp));
        let report = diagnose_root_conflict(&csp).expect("infeasible");
        assert_eq!(report.total_constraints, 3);
        assert_eq!(report.kept_constraints, 2);
        assert_eq!(report.removal.len(), 1);
        assert_eq!(report.removal[0].index, 2);
        assert!(report.removal[0].constraint.contains("IN"));
        assert!(report.removal_restores_feasibility(&csp));
        let text = report.to_string();
        assert!(text.contains("removing 1 of 3"));
    }

    #[test]
    fn diagnosis_is_deterministic() {
        let csp = clashing_csp();
        let a = diagnose_root_conflict(&csp).expect("infeasible");
        let b = diagnose_root_conflict(&csp).expect("infeasible");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_domain_conflict_reports_all_posted_constraints_kept() {
        // Infeasibility caused by a single self-contradictory constraint:
        // `a ∈ {5}` on a domain without 5. Only that constraint is removed.
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        let b = csp.add_var("b", Domain::values([1, 2]), VarCategory::Tunable);
        csp.post_eq(a, b); // #0 benign
        csp.post_in(a, [5]); // #1 conflicts with the declared domain
        let report = diagnose_root_conflict(&csp).expect("infeasible");
        assert_eq!(report.removal.len(), 1);
        assert_eq!(report.removal[0].index, 1);
        assert!(report.removal_restores_feasibility(&csp));
    }
}
