//! CSP definition: variables, categories, constraints, and solutions.

use std::collections::HashMap;
use std::fmt;

use crate::constraint::Constraint;
use crate::domain::Domain;

/// Handle to a CSP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarRef(pub usize);

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Variable category, following the paper's Table 4 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarCategory {
    /// Dedicated architectural-constraint variables (m, n, k, capacities…).
    Arch,
    /// Loop-length variables (`stage.i0`, …).
    LoopLength,
    /// Tunable parameters (tile factors, locations, unroll…). These are the
    /// decision variables the explorer branches on and the genes of CGA
    /// chromosomes.
    Tunable,
    /// Other auxiliary variables (footprints, totals, indicator bits…).
    Other,
}

/// One declared variable.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Unique name.
    pub name: String,
    /// Initial domain.
    pub domain: Domain,
    /// Census category.
    pub category: VarCategory,
}

/// A constraint satisfaction problem: the representation of Heron's
/// constrained search space (`CSP_initial` in the paper) and of the derived
/// CSPs created by constraint-based crossover/mutation.
#[derive(Debug, Clone, Default)]
pub struct Csp {
    vars: Vec<VarDecl>,
    by_name: HashMap<String, VarRef>,
    constraints: Vec<Constraint>,
}

impl Csp {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Csp::default()
    }

    /// Declares a variable.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        domain: Domain,
        category: VarCategory,
    ) -> VarRef {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate variable `{name}`"
        );
        let r = VarRef(self.vars.len());
        self.by_name.insert(name.clone(), r);
        self.vars.push(VarDecl {
            name,
            domain,
            category,
        });
        r
    }

    /// Declares a constant as a fixed architectural variable.
    pub fn add_const(&mut self, name: impl Into<String>, value: i64) -> VarRef {
        self.add_var(name, Domain::singleton(value), VarCategory::Arch)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable declaration by handle.
    pub fn var(&self, r: VarRef) -> &VarDecl {
        &self.vars[r.0]
    }

    /// Variable lookup by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarRef> {
        self.by_name.get(name).copied()
    }

    /// Iterator over `(handle, declaration)` pairs.
    pub fn vars(&self) -> impl Iterator<Item = (VarRef, &VarDecl)> {
        self.vars.iter().enumerate().map(|(i, v)| (VarRef(i), v))
    }

    /// Handles of all tunable (decision) variables.
    pub fn tunables(&self) -> Vec<VarRef> {
        self.vars()
            .filter(|(_, d)| d.category == VarCategory::Tunable)
            .map(|(r, _)| r)
            .collect()
    }

    /// The posted constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Posts an arbitrary constraint.
    ///
    /// # Panics
    /// Panics if the constraint references an undeclared variable.
    pub fn post(&mut self, c: Constraint) {
        for v in c.vars() {
            assert!(
                v.0 < self.vars.len(),
                "constraint references undeclared {v}"
            );
        }
        self.constraints.push(c);
    }

    /// Posts `out == v1 * v2 * … * vn` (type T1, PROD).
    pub fn post_prod(&mut self, out: VarRef, factors: Vec<VarRef>) {
        self.post(Constraint::Prod { out, factors });
    }

    /// Posts `out == v1 + v2 + … + vn` (type T2, SUM).
    pub fn post_sum(&mut self, out: VarRef, terms: Vec<VarRef>) {
        self.post(Constraint::Sum { out, terms });
    }

    /// Posts `a == b` (type T3, EQ).
    pub fn post_eq(&mut self, a: VarRef, b: VarRef) {
        self.post(Constraint::Eq(a, b));
    }

    /// Posts `a <= b` (type T4, LE).
    pub fn post_le(&mut self, a: VarRef, b: VarRef) {
        self.post(Constraint::Le(a, b));
    }

    /// Posts `var ∈ {c1, …, cn}` (type T5, IN).
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn post_in(&mut self, var: VarRef, values: impl IntoIterator<Item = i64>) {
        let mut v: Vec<i64> = values.into_iter().collect();
        assert!(!v.is_empty(), "IN constraint needs at least one value");
        v.sort_unstable();
        v.dedup();
        self.post(Constraint::In { var, values: v });
    }

    /// Posts `out == choices[index]` (type T6, SELECT).
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn post_select(&mut self, out: VarRef, index: VarRef, choices: Vec<VarRef>) {
        assert!(!choices.is_empty(), "SELECT needs at least one choice");
        self.post(Constraint::Select {
            out,
            index,
            choices,
        });
    }

    /// Replaces the constraint at `index` in place, keeping posting order.
    /// Used by the rule-mutation harness to swap one rule for a
    /// tightened / widened variant without renumbering the others.
    ///
    /// # Panics
    /// Panics if `index` is out of range or the replacement references an
    /// undeclared variable.
    pub fn replace_constraint(&mut self, index: usize, c: Constraint) {
        assert!(index < self.constraints.len(), "no constraint {index}");
        for v in c.vars() {
            assert!(
                v.0 < self.vars.len(),
                "constraint references undeclared {v}"
            );
        }
        self.constraints[index] = c;
    }

    /// Widens a variable's declared domain with extra candidate values —
    /// the "widen one rule" mutation of the audit harness. The domain
    /// becomes the union of its current values and `extra`; posted
    /// constraints are untouched (rewrite the matching IN separately via
    /// [`Csp::replace_constraint`]).
    ///
    /// # Panics
    /// Panics if the current domain is unbounded-large (over `1 << 20`
    /// values): widening is only meant for candidate-set variables.
    pub fn widen_domain(&mut self, r: VarRef, extra: impl IntoIterator<Item = i64>) {
        let decl = &mut self.vars[r.0];
        assert!(
            decl.domain.size() <= 1 << 20,
            "refusing to enumerate huge domain of `{}`",
            decl.name
        );
        let merged: Vec<i64> = decl.domain.iter_values().chain(extra).collect();
        decl.domain = Domain::values(merged);
    }

    /// Removes the last `n` posted constraints — used by constraint-based
    /// mutation, which drops one crossover constraint.
    pub fn pop_constraints(&mut self, n: usize) {
        let keep = self.constraints.len().saturating_sub(n);
        self.constraints.truncate(keep);
    }

    /// A copy of this problem with the same variables but only the
    /// constraints whose indices appear in `keep` (in `keep` order).
    /// Used by the conflict diagnoser to test feasibility of constraint
    /// subsets.
    ///
    /// # Panics
    /// Panics if an index in `keep` is out of range.
    pub fn with_constraint_subset(&self, keep: &[usize]) -> Csp {
        let mut sub = Csp {
            vars: self.vars.clone(),
            by_name: self.by_name.clone(),
            constraints: Vec::with_capacity(keep.len()),
        };
        for &i in keep {
            sub.constraints.push(self.constraints[i].clone());
        }
        sub
    }

    /// Size (in assignments, log10) of the raw cross product of tunable
    /// domains — the unconstrained search-space size reported in figures.
    pub fn tunable_space_log10(&self) -> f64 {
        self.vars()
            .filter(|(_, d)| d.category == VarCategory::Tunable)
            .map(|(_, d)| (d.domain.size() as f64).log10())
            .sum()
    }
}

impl fmt::Display for Csp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CSP: {} variables, {} constraints",
            self.num_vars(),
            self.num_constraints()
        )?;
        for (r, decl) in self.vars() {
            writeln!(
                f,
                "  {r} {} : {} [{:?}]",
                decl.name, decl.domain, decl.category
            )?;
        }
        for c in self.constraints() {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// A complete assignment of every CSP variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    values: Vec<i64>,
}

impl Solution {
    /// Creates a solution from a dense value vector (one per variable, in
    /// declaration order).
    pub fn new(values: Vec<i64>) -> Self {
        Solution { values }
    }

    /// Value of a variable.
    pub fn value(&self, r: VarRef) -> i64 {
        self.values[r.0]
    }

    /// Value lookup by name.
    pub fn value_by_name(&self, csp: &Csp, name: &str) -> Option<i64> {
        csp.var_by_name(name).map(|r| self.value(r))
    }

    /// All values in declaration order.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// A stable 64-bit fingerprint of the assignment (used for dedup and
    /// for deterministic simulator jitter).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the little-endian value bytes.
        let mut h: u64 = 0xcbf29ce484222325;
        for v in &self.values {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::range(0, 9), VarCategory::Tunable);
        assert_eq!(csp.var_by_name("x"), Some(x));
        assert_eq!(csp.var(x).category, VarCategory::Tunable);
        assert_eq!(csp.num_vars(), 1);
        assert_eq!(csp.tunables(), vec![x]);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_name_panics() {
        let mut csp = Csp::new();
        csp.add_var("x", Domain::boolean(), VarCategory::Other);
        csp.add_var("x", Domain::boolean(), VarCategory::Other);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn dangling_constraint_panics() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::boolean(), VarCategory::Other);
        csp.post(Constraint::Eq(x, VarRef(99)));
    }

    #[test]
    fn pop_constraints_trims_tail() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::range(0, 9), VarCategory::Tunable);
        csp.post_in(x, [1, 2]);
        csp.post_in(x, [2, 3]);
        csp.pop_constraints(1);
        assert_eq!(csp.num_constraints(), 1);
    }

    #[test]
    fn replace_constraint_swaps_in_place() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::range(0, 9), VarCategory::Tunable);
        csp.post_in(x, [1, 2]);
        csp.post_in(x, [2, 3]);
        csp.replace_constraint(
            0,
            Constraint::In {
                var: x,
                values: vec![2],
            },
        );
        assert_eq!(csp.num_constraints(), 2);
        assert!(matches!(
            &csp.constraints()[0],
            Constraint::In { values, .. } if values == &vec![2]
        ));
    }

    #[test]
    fn widen_domain_unions_values() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 4]), VarCategory::Tunable);
        csp.widen_domain(x, [8, 2, 16]);
        let d = &csp.var(x).domain;
        assert_eq!(d.size(), 5);
        for v in [1, 2, 4, 8, 16] {
            assert!(d.contains(v), "{v}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_solutions() {
        let a = Solution::new(vec![1, 2, 3]);
        let b = Solution::new(vec![1, 2, 4]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), Solution::new(vec![1, 2, 3]).fingerprint());
    }

    #[test]
    fn display_lists_vars_and_constraints() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 4]), VarCategory::Tunable);
        let n = csp.add_const("n", 4);
        csp.post_le(x, n);
        let text = csp.to_string();
        assert!(text.contains("CSP: 2 variables, 1 constraints"));
        assert!(text.contains("x : [1, 2, 4]"));
        assert!(text.contains("LE(x0, x1)"));
    }

    #[test]
    fn space_size_counts_tunables_only() {
        let mut csp = Csp::new();
        csp.add_var(
            "t",
            Domain::values([1, 2, 4, 8, 16, 32, 64, 128, 256, 512]),
            VarCategory::Tunable,
        );
        csp.add_var("aux", Domain::range(0, 1_000_000), VarCategory::Other);
        assert!((csp.tunable_space_log10() - 1.0).abs() < 1e-9);
    }
}
