//! Trail-based domain store with bitset small domains.
//!
//! The RandSAT hot path used to clone the entire `Vec<Domain>` at every
//! search node (`domains.to_vec()` per candidate trial). This module
//! replaces that with the classic CP engine layout:
//!
//! * [`Dom`] — a per-variable domain representation that stores small
//!   finite domains (≤ 64 declared values — every Heron tunable) as a
//!   single `u64` bitset indexing into a per-variable sorted value table
//!   ([`VarTables`]), so PROD/SUM/SELECT/IN filtering becomes word
//!   operations. Large `Values` sets and `Range` domains keep the
//!   original [`Domain`] representation (`Dom::Wide`).
//! * [`DomainStore`] — the mutable domain state plus a **trail**: every
//!   first write to a variable inside a [`DomainStore::mark`] scope
//!   records the old value; [`DomainStore::undo_to`] pops the trail to
//!   restore it. Backtracking is O(changes), not O(vars).
//!
//! The store also tracks per-constraint *dormancy* flags (entailed
//! constraints the propagator may skip); these are trailed alongside
//! domain writes so entailment discovered inside a dive is undone on
//! backtrack, while entailment discovered at the root (before
//! [`DomainStore::commit`]) is permanent.
//!
//! Save-on-write dedup uses monotone epochs: `mark()` hands out a fresh
//! epoch, a variable is trailed at most once per epoch, and epochs are
//! never reused so stale `saved_at` entries are harmless after an undo.
//! Epoch 0 means "untracked": writes before the first `mark()` (or after
//! a `commit()`) mutate the base state directly without trailing.

use std::rc::Rc;

use crate::domain::Domain;
use crate::problem::Csp;

/// Per-variable sorted value tables for bitset domains.
///
/// `tables[v]` is `Some(sorted values)` iff variable `v` was declared
/// with an explicit value set of at most 64 values; its [`Dom::Bits`]
/// word indexes into that table (bit `i` ⇔ `tables[v][i]` present).
#[derive(Debug)]
pub struct VarTables {
    tables: Vec<Option<Box<[i64]>>>,
}

impl VarTables {
    /// Builds the tables for every variable of `csp`.
    pub fn for_csp(csp: &Csp) -> Self {
        let tables = csp
            .vars()
            .map(|(_, d)| match &d.domain {
                Domain::Values(v) if v.len() <= 64 => Some(v.clone().into_boxed_slice()),
                _ => None,
            })
            .collect();
        VarTables { tables }
    }

    /// The sorted value table of `v`, if it has a bitset representation.
    pub fn table(&self, v: usize) -> Option<&[i64]> {
        self.tables[v].as_deref()
    }

    /// Bitmask over `v`'s table selecting the values in `values` (which
    /// must be sorted). `None` if `v` has no table.
    pub fn mask_of(&self, v: usize, values: &[i64]) -> Option<u64> {
        let table = self.tables[v].as_deref()?;
        let mut mask = 0u64;
        for (i, val) in table.iter().enumerate() {
            if values.binary_search(val).is_ok() {
                mask |= 1u64 << i;
            }
        }
        Some(mask)
    }
}

/// One variable's current domain: a bitset into its [`VarTables`] table,
/// or the original wide representation.
///
/// A variable's representation kind never changes during solving — a
/// `Bits` domain shrinks by masking, a `Wide` domain shrinks through the
/// usual [`Domain`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dom {
    /// Bitset over the variable's sorted value table (never 0 while the
    /// store is consistent).
    Bits(u64),
    /// Large value set or interval, kept as a [`Domain`].
    Wide(Domain),
}

/// A snapshot token returned by [`DomainStore::mark`].
#[derive(Debug, Clone, Copy)]
pub struct Mark {
    trail_len: usize,
    dormant_len: usize,
    epoch: u64,
}

/// Mutable domain state with trailing, dormancy flags and bitset domains.
#[derive(Debug, Clone)]
pub struct DomainStore {
    tables: Rc<VarTables>,
    doms: Vec<Dom>,
    /// Per-constraint "entailed, skip me" flags (owned here, not by the
    /// propagator, so they backtrack with the domains).
    dormant: Vec<bool>,
    trail: Vec<(u32, Dom)>,
    dormant_trail: Vec<u32>,
    saved_at: Vec<u64>,
    epoch: u64,
    next_epoch: u64,
    max_trail: usize,
}

// Wipeouts are signalled with `Err(())` exactly like `Domain`'s own
// mutators; the propagator maps them to `Infeasible`.
#[allow(clippy::result_unit_err)]
impl DomainStore {
    /// A store over `doms` (one entry per variable) with `ncons`
    /// constraint dormancy flags, starting untracked (epoch 0).
    pub fn new(tables: Rc<VarTables>, doms: Vec<Dom>, ncons: usize) -> Self {
        let nvars = doms.len();
        DomainStore {
            tables,
            doms,
            dormant: vec![false; ncons],
            trail: Vec::new(),
            dormant_trail: Vec::new(),
            saved_at: vec![0; nvars],
            epoch: 0,
            next_epoch: 1,
            max_trail: 0,
        }
    }

    /// Opens a backtrack scope: subsequent writes are trailed until the
    /// matching [`undo_to`](Self::undo_to).
    pub fn mark(&mut self) -> Mark {
        let m = Mark {
            trail_len: self.trail.len(),
            dormant_len: self.dormant_trail.len(),
            epoch: self.epoch,
        };
        self.epoch = self.next_epoch;
        self.next_epoch += 1;
        m
    }

    /// Restores every domain and dormancy flag changed since `m`.
    pub fn undo_to(&mut self, m: Mark) {
        while self.trail.len() > m.trail_len {
            let (v, dom) = self.trail.pop().expect("trail non-empty");
            self.doms[v as usize] = dom;
        }
        while self.dormant_trail.len() > m.dormant_len {
            let ci = self.dormant_trail.pop().expect("dormant trail non-empty");
            self.dormant[ci as usize] = false;
        }
        self.epoch = m.epoch;
    }

    /// Makes the current state the new untracked baseline: clears the
    /// trail (changes become permanent) and returns to epoch 0.
    pub fn commit(&mut self) {
        self.trail.clear();
        self.dormant_trail.clear();
        self.epoch = 0;
    }

    /// Deepest trail length observed since the last call; resets the
    /// high-water mark to the current depth.
    pub fn take_max_trail(&mut self) -> u64 {
        let m = self.max_trail as u64;
        self.max_trail = self.trail.len();
        m
    }

    /// Marks constraint `ci` entailed (skippable). Trailed unless the
    /// store is untracked, in which case the flag is permanent.
    pub fn set_dormant(&mut self, ci: usize) {
        if !self.dormant[ci] {
            self.dormant[ci] = true;
            if self.epoch != 0 {
                self.dormant_trail.push(ci as u32);
                self.max_trail = self.max_trail.max(self.trail.len());
            }
        }
    }

    /// Whether constraint `ci` is currently entailed.
    pub fn is_dormant(&self, ci: usize) -> bool {
        self.dormant[ci]
    }

    /// Current representation of variable `v`.
    pub fn dom(&self, v: usize) -> &Dom {
        &self.doms[v]
    }

    /// Smallest value in `v`'s domain.
    pub fn min(&self, v: usize) -> i64 {
        match &self.doms[v] {
            Dom::Bits(w) => self.table(v)[w.trailing_zeros() as usize],
            Dom::Wide(d) => d.min(),
        }
    }

    /// Largest value in `v`'s domain.
    pub fn max(&self, v: usize) -> i64 {
        match &self.doms[v] {
            Dom::Bits(w) => self.table(v)[63 - w.leading_zeros() as usize],
            Dom::Wide(d) => d.max(),
        }
    }

    /// Number of values in `v`'s domain.
    pub fn size(&self, v: usize) -> u64 {
        match &self.doms[v] {
            Dom::Bits(w) => u64::from(w.count_ones()),
            Dom::Wide(d) => d.size(),
        }
    }

    /// Whether `v` is fixed to a single value.
    pub fn is_fixed(&self, v: usize) -> bool {
        match &self.doms[v] {
            Dom::Bits(w) => w.is_power_of_two(),
            Dom::Wide(d) => d.is_fixed(),
        }
    }

    /// The single value of `v`, if fixed.
    pub fn fixed_value(&self, v: usize) -> Option<i64> {
        if self.is_fixed(v) {
            Some(self.min(v))
        } else {
            None
        }
    }

    /// Membership test.
    pub fn contains(&self, v: usize, val: i64) -> bool {
        match &self.doms[v] {
            Dom::Bits(w) => match self.table(v).binary_search(&val) {
                Ok(i) => w & (1u64 << i) != 0,
                Err(_) => false,
            },
            Dom::Wide(d) => d.contains(val),
        }
    }

    /// The current values of `v` in ascending order.
    ///
    /// # Panics
    /// Panics on a `Range` domain wider than 2^20 values, like
    /// [`Domain::iter_values`].
    pub fn value_list(&self, v: usize) -> Vec<i64> {
        match &self.doms[v] {
            Dom::Bits(w) => {
                let table = self.table(v);
                let mut out = Vec::with_capacity(w.count_ones() as usize);
                let mut bits = *w;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    out.push(table[i]);
                    bits &= bits - 1;
                }
                out
            }
            Dom::Wide(d) => d.iter_values().collect(),
        }
    }

    /// Materialises `v`'s domain as a [`Domain`].
    pub fn domain(&self, v: usize) -> Domain {
        match &self.doms[v] {
            Dom::Bits(_) => Domain::Values(self.value_list(v)),
            Dom::Wide(d) => d.clone(),
        }
    }

    /// Restricts `v` to values `>= bound`.
    pub fn restrict_min(&mut self, v: usize, bound: i64) -> Result<bool, ()> {
        match &self.doms[v] {
            Dom::Bits(w) => {
                let idx = self.table(v).partition_point(|&x| x < bound);
                let mask = if idx >= 64 { 0 } else { !0u64 << idx };
                self.set_bits(v, *w, w & mask)
            }
            Dom::Wide(_) => self.mutate_wide(v, |d| d.restrict_min(bound)),
        }
    }

    /// Restricts `v` to values `<= bound`.
    pub fn restrict_max(&mut self, v: usize, bound: i64) -> Result<bool, ()> {
        match &self.doms[v] {
            Dom::Bits(w) => {
                let idx = self.table(v).partition_point(|&x| x <= bound);
                let mask = if idx >= 64 { !0u64 } else { (1u64 << idx) - 1 };
                self.set_bits(v, *w, w & mask)
            }
            Dom::Wide(_) => self.mutate_wide(v, |d| d.restrict_max(bound)),
        }
    }

    /// Restricts `v` to the given sorted candidate set.
    pub fn restrict_to(&mut self, v: usize, candidates: &[i64]) -> Result<bool, ()> {
        match &self.doms[v] {
            Dom::Bits(w) => {
                let table = self.table(v);
                let mut nw = 0u64;
                let mut bits = *w;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    if candidates.binary_search(&table[i]).is_ok() {
                        nw |= 1u64 << i;
                    }
                    bits &= bits - 1;
                }
                self.set_bits(v, *w, nw)
            }
            Dom::Wide(_) => self.mutate_wide(v, |d| d.restrict_to(candidates)),
        }
    }

    /// Intersects a bitset variable with a precompiled value mask (the
    /// compiled form of an `IN` constraint).
    ///
    /// # Panics
    /// Panics if `v` is not a bitset variable.
    pub fn and_mask(&mut self, v: usize, mask: u64) -> Result<bool, ()> {
        match &self.doms[v] {
            Dom::Bits(w) => self.set_bits(v, *w, w & mask),
            Dom::Wide(_) => panic!("and_mask on a wide domain"),
        }
    }

    /// Fixes `v` to a single value.
    pub fn fix(&mut self, v: usize, val: i64) -> Result<bool, ()> {
        match &self.doms[v] {
            Dom::Bits(w) => match self.table(v).binary_search(&val) {
                Ok(i) => self.set_bits(v, *w, w & (1u64 << i)),
                Err(_) => Err(()),
            },
            Dom::Wide(_) => self.mutate_wide(v, |d| d.fix(val)),
        }
    }

    /// Intersects `target`'s domain with `src`'s (EQ propagation). A
    /// self-intersection is a no-op.
    pub fn intersect_var(&mut self, target: usize, src: usize) -> Result<bool, ()> {
        if target == src {
            return Ok(false);
        }
        match &self.doms[target] {
            Dom::Bits(w) => {
                let table = self.table(target);
                let mut nw = 0u64;
                let mut bits = *w;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    if self.contains(src, table[i]) {
                        nw |= 1u64 << i;
                    }
                    bits &= bits - 1;
                }
                self.set_bits(target, *w, nw)
            }
            Dom::Wide(_) => {
                let src_dom = self.domain(src);
                self.mutate_wide(target, |d| d.intersect(&src_dom))
            }
        }
    }

    /// Keeps only non-zero divisors of `p` in `v`'s domain (PROD's
    /// divisibility rule). Applies only to explicit value sets; a
    /// `Range` domain is left untouched, mirroring the historical
    /// filter.
    pub fn retain_divisors(&mut self, v: usize, p: i64) -> Result<bool, ()> {
        match &self.doms[v] {
            Dom::Bits(w) => {
                let table = self.table(v);
                let mut nw = 0u64;
                let mut bits = *w;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    let val = table[i];
                    if val != 0 && p % val == 0 {
                        nw |= 1u64 << i;
                    }
                    bits &= bits - 1;
                }
                self.set_bits(v, *w, nw)
            }
            Dom::Wide(Domain::Values(vals)) => {
                if vals.iter().all(|&x| x != 0 && p % x == 0) {
                    return Ok(false);
                }
                self.mutate_wide(v, |d| {
                    let Domain::Values(vals) = d else {
                        unreachable!()
                    };
                    vals.retain(|&x| x != 0 && p % x == 0);
                    if vals.is_empty() {
                        Err(())
                    } else {
                        Ok(true)
                    }
                })
            }
            Dom::Wide(Domain::Range { .. }) => Ok(false),
        }
    }

    fn table(&self, v: usize) -> &[i64] {
        self.tables.table(v).expect("bitset variable has a table")
    }

    /// Writes a new bitset word, trailing the old one. `Err(())` on
    /// wipeout (the store is left untouched).
    fn set_bits(&mut self, v: usize, old: u64, new: u64) -> Result<bool, ()> {
        if new == 0 {
            return Err(());
        }
        if new == old {
            return Ok(false);
        }
        self.save(v, Dom::Bits(old));
        self.doms[v] = Dom::Bits(new);
        Ok(true)
    }

    /// Clone-mutate-swap for wide domains: `f` runs on a copy, so an
    /// `Err(())` (wipeout) never dirties the store.
    fn mutate_wide(
        &mut self,
        v: usize,
        f: impl FnOnce(&mut Domain) -> Result<bool, ()>,
    ) -> Result<bool, ()> {
        let Dom::Wide(d) = &self.doms[v] else {
            unreachable!("mutate_wide on a bitset domain")
        };
        let mut nd = d.clone();
        match f(&mut nd) {
            Ok(true) => {
                let old = std::mem::replace(&mut self.doms[v], Dom::Wide(nd));
                self.save(v, old);
                Ok(true)
            }
            Ok(false) => Ok(false),
            Err(()) => Err(()),
        }
    }

    /// Trails `old` as `v`'s pre-scope value (at most once per epoch;
    /// never while untracked).
    fn save(&mut self, v: usize, old: Dom) {
        if self.epoch == 0 || self.saved_at[v] == self.epoch {
            return;
        }
        self.saved_at[v] = self.epoch;
        self.trail.push((v as u32, old));
        self.max_trail = self.max_trail.max(self.trail.len());
    }
}

/// Converts a declared [`Domain`] to its store representation under the
/// given tables.
pub fn dom_for(tables: &VarTables, v: usize, domain: &Domain) -> Dom {
    match tables.table(v) {
        Some(table) => {
            debug_assert!(matches!(domain, Domain::Values(vals) if vals.as_slice() == table));
            let n = table.len();
            let full = if n >= 64 { !0u64 } else { (1u64 << n) - 1 };
            Dom::Bits(full)
        }
        None => Dom::Wide(domain.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarCategory;

    fn store_for(csp: &Csp) -> DomainStore {
        let tables = Rc::new(VarTables::for_csp(csp));
        let doms = csp
            .vars()
            .map(|(r, d)| dom_for(&tables, r.0, &d.domain))
            .collect();
        DomainStore::new(tables, doms, csp.num_constraints())
    }

    #[test]
    fn bitset_ops_match_domain_semantics() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 4, 8, 16]), VarCategory::Tunable);
        let mut s = store_for(&csp);
        assert!(matches!(s.dom(x.0), Dom::Bits(0b11111)));
        assert_eq!(s.min(x.0), 1);
        assert_eq!(s.max(x.0), 16);
        assert_eq!(s.size(x.0), 5);
        assert_eq!(s.restrict_min(x.0, 3), Ok(true));
        assert_eq!(s.restrict_max(x.0, 8), Ok(true));
        assert_eq!(s.value_list(x.0), vec![4, 8]);
        assert_eq!(s.restrict_to(x.0, &[2, 8, 32]), Ok(true));
        assert_eq!(s.fixed_value(x.0), Some(8));
        assert!(s.restrict_min(x.0, 100).is_err());
        // The failed restriction left the domain intact.
        assert_eq!(s.fixed_value(x.0), Some(8));
    }

    #[test]
    fn trail_restores_domains_and_dormancy() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 3]), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::range(0, 100), VarCategory::Other);
        csp.post_le(x, y);
        let mut s = store_for(&csp);
        // Untracked changes are permanent.
        s.restrict_max(y.0, 50).unwrap();
        s.commit();
        let m = s.mark();
        s.fix(x.0, 2).unwrap();
        s.restrict_min(y.0, 10).unwrap();
        s.set_dormant(0);
        assert!(s.is_dormant(0));
        let inner = s.mark();
        s.restrict_max(y.0, 20).unwrap();
        s.undo_to(inner);
        assert_eq!(s.max(y.0), 50);
        s.undo_to(m);
        assert_eq!(s.value_list(x.0), vec![1, 2, 3]);
        assert_eq!(s.min(y.0), 0);
        assert_eq!(s.max(y.0), 50);
        assert!(!s.is_dormant(0));
        assert!(s.take_max_trail() >= 2);
    }

    #[test]
    fn save_on_write_dedups_per_scope() {
        let mut csp = Csp::new();
        let x = csp.add_var("x", Domain::values([1, 2, 3, 4]), VarCategory::Tunable);
        let mut s = store_for(&csp);
        s.commit();
        let m = s.mark();
        s.restrict_min(x.0, 2).unwrap();
        s.restrict_max(x.0, 3).unwrap();
        // Two writes, one trail entry.
        assert_eq!(s.take_max_trail(), 1);
        s.undo_to(m);
        assert_eq!(s.size(x.0), 4);
    }

    #[test]
    fn wide_domains_round_trip() {
        let mut csp = Csp::new();
        let big: Vec<i64> = (0..100).collect();
        let x = csp.add_var("x", Domain::values(big), VarCategory::Other);
        let y = csp.add_var("y", Domain::range(0, 1_000_000), VarCategory::Other);
        let mut s = store_for(&csp);
        assert!(matches!(s.dom(x.0), Dom::Wide(_)));
        s.commit();
        let m = s.mark();
        s.restrict_min(x.0, 90).unwrap();
        s.intersect_var(y.0, x.0).unwrap();
        assert_eq!(s.min(y.0), 90);
        assert_eq!(s.max(y.0), 99);
        s.undo_to(m);
        assert_eq!(s.min(x.0), 0);
        assert_eq!(s.max(y.0), 1_000_000);
    }
}
