//! Census of a constrained search space — reproduces the numbers behind the
//! paper's Tables 4 and 5 (how many variables of each category and how many
//! constraints describe an operator's space).

use std::collections::BTreeMap;

use crate::problem::{Csp, VarCategory};

/// Counts of variables (by category) and constraints (by type) in a CSP.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpaceCensus {
    /// Architectural-constraint variables (paper Table 4 column 1).
    pub arch_vars: usize,
    /// Loop-length variables (column 2).
    pub loop_length_vars: usize,
    /// Tunable-parameter variables (column 3).
    pub tunable_vars: usize,
    /// Other auxiliary variables (column 4).
    pub other_vars: usize,
    /// Constraint counts keyed by type tag (`PROD`, `SUM`, …).
    pub constraints_by_type: BTreeMap<&'static str, usize>,
}

impl SpaceCensus {
    /// Computes the census of a CSP.
    pub fn of(csp: &Csp) -> Self {
        let mut census = SpaceCensus::default();
        for (_, decl) in csp.vars() {
            match decl.category {
                VarCategory::Arch => census.arch_vars += 1,
                VarCategory::LoopLength => census.loop_length_vars += 1,
                VarCategory::Tunable => census.tunable_vars += 1,
                VarCategory::Other => census.other_vars += 1,
            }
        }
        for c in csp.constraints() {
            *census.constraints_by_type.entry(c.type_tag()).or_insert(0) += 1;
        }
        census
    }

    /// Total variable count.
    pub fn total_vars(&self) -> usize {
        self.arch_vars + self.loop_length_vars + self.tunable_vars + self.other_vars
    }

    /// Total constraint count.
    pub fn total_constraints(&self) -> usize {
        self.constraints_by_type.values().sum()
    }

    /// One-line TSV row: `vars constraints arch loop tunable other`.
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.total_vars(),
            self.total_constraints(),
            self.arch_vars,
            self.loop_length_vars,
            self.tunable_vars,
            self.other_vars
        )
    }
}

/// `(name, initial domain size)` for every tunable variable, in
/// declaration order — the coverage denominator the search-health log
/// registers before the first tuning round (per-variable coverage vs.
/// domain size in `insight.json`).
pub fn tunable_domains(csp: &Csp) -> Vec<(String, u64)> {
    csp.vars()
        .filter(|(_, d)| d.category == VarCategory::Tunable)
        .map(|(_, d)| (d.name.clone(), d.domain.size()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn census_counts_categories_and_types() {
        let mut csp = Csp::new();
        let m = csp.add_const("m", 16); // Arch
        let l = csp.add_var("C.i", Domain::range(1, 64), VarCategory::LoopLength);
        let t = csp.add_var("tile.C.i", Domain::divisors_of(64), VarCategory::Tunable);
        let o = csp.add_var("aux", Domain::boolean(), VarCategory::Other);
        csp.post_eq(l, t);
        csp.post_le(l, m);
        csp.post_in(o, [0, 1]);
        let c = SpaceCensus::of(&csp);
        assert_eq!(c.arch_vars, 1);
        assert_eq!(c.loop_length_vars, 1);
        assert_eq!(c.tunable_vars, 1);
        assert_eq!(c.other_vars, 1);
        assert_eq!(c.total_vars(), 4);
        assert_eq!(c.total_constraints(), 3);
        assert_eq!(c.constraints_by_type["EQ"], 1);
        assert!(c.tsv_row().starts_with("4\t3"));
    }
}
