//! The six constraint types of the paper's Table 7.

use std::fmt;

use crate::problem::VarRef;

/// A constraint over CSP variables.
///
/// | Type | Paper name | Meaning |
/// |------|-----------|---------|
/// | T1   | PROD      | `out = f1 * … * fn` |
/// | T2   | SUM       | `out = t1 + … + tn` |
/// | T3   | EQ        | `a = b` |
/// | T4   | LE        | `a <= b` |
/// | T5   | IN        | `var ∈ {c1, …, cn}` |
/// | T6   | SELECT    | `out = choices[index]` |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// T1: `out == product of factors`.
    Prod {
        /// Product result.
        out: VarRef,
        /// Factor variables (at least one).
        factors: Vec<VarRef>,
    },
    /// T2: `out == sum of terms`.
    Sum {
        /// Sum result.
        out: VarRef,
        /// Term variables (at least one).
        terms: Vec<VarRef>,
    },
    /// T3: equality of two variables.
    Eq(VarRef, VarRef),
    /// T4: `lhs <= rhs`.
    Le(VarRef, VarRef),
    /// T5: membership in a constant set (sorted, deduplicated).
    In {
        /// Constrained variable.
        var: VarRef,
        /// Allowed values.
        values: Vec<i64>,
    },
    /// T6: `out == choices[index]`, `index ∈ [0, choices.len())`.
    Select {
        /// Selected value.
        out: VarRef,
        /// Selector (a tunable such as a compute_at location).
        index: VarRef,
        /// Candidate variables.
        choices: Vec<VarRef>,
    },
}

impl Constraint {
    /// All variables referenced by the constraint.
    pub fn vars(&self) -> Vec<VarRef> {
        match self {
            Constraint::Prod { out, factors } => {
                let mut v = vec![*out];
                v.extend_from_slice(factors);
                v
            }
            Constraint::Sum { out, terms } => {
                let mut v = vec![*out];
                v.extend_from_slice(terms);
                v
            }
            Constraint::Eq(a, b) | Constraint::Le(a, b) => vec![*a, *b],
            Constraint::In { var, .. } => vec![*var],
            Constraint::Select {
                out,
                index,
                choices,
            } => {
                let mut v = vec![*out, *index];
                v.extend_from_slice(choices);
                v
            }
        }
    }

    /// Checks the constraint against a complete assignment.
    pub fn check(&self, value: &dyn Fn(VarRef) -> i64) -> bool {
        match self {
            Constraint::Prod { out, factors } => {
                let mut p: i64 = 1;
                for f in factors {
                    p = p.saturating_mul(value(*f));
                }
                value(*out) == p
            }
            Constraint::Sum { out, terms } => {
                value(*out) == terms.iter().map(|t| value(*t)).sum::<i64>()
            }
            Constraint::Eq(a, b) => value(*a) == value(*b),
            Constraint::Le(a, b) => value(*a) <= value(*b),
            Constraint::In { var, values } => values.binary_search(&value(*var)).is_ok(),
            Constraint::Select {
                out,
                index,
                choices,
            } => {
                let i = value(*index);
                if i < 0 || i as usize >= choices.len() {
                    return false;
                }
                value(*out) == value(choices[i as usize])
            }
        }
    }

    /// Short type tag for census reporting (`PROD`, `SUM`, …).
    pub fn type_tag(&self) -> &'static str {
        match self {
            Constraint::Prod { .. } => "PROD",
            Constraint::Sum { .. } => "SUM",
            Constraint::Eq(..) => "EQ",
            Constraint::Le(..) => "LE",
            Constraint::In { .. } => "IN",
            Constraint::Select { .. } => "SELECT",
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Prod { out, factors } => {
                write!(f, "PROD({out}, {factors:?})")
            }
            Constraint::Sum { out, terms } => write!(f, "SUM({out}, {terms:?})"),
            Constraint::Eq(a, b) => write!(f, "EQ({a}, {b})"),
            Constraint::Le(a, b) => write!(f, "LE({a}, {b})"),
            Constraint::In { var, values } => write!(f, "IN({var}, {values:?})"),
            Constraint::Select {
                out,
                index,
                choices,
            } => {
                write!(f, "SELECT({out}, {index}, {choices:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(vals: &[i64]) -> impl Fn(VarRef) -> i64 + '_ {
        move |r: VarRef| vals[r.0]
    }

    #[test]
    fn prod_check() {
        let c = Constraint::Prod {
            out: VarRef(0),
            factors: vec![VarRef(1), VarRef(2)],
        };
        assert!(c.check(&env(&[12, 3, 4])));
        assert!(!c.check(&env(&[11, 3, 4])));
    }

    #[test]
    fn sum_check() {
        let c = Constraint::Sum {
            out: VarRef(0),
            terms: vec![VarRef(1), VarRef(2)],
        };
        assert!(c.check(&env(&[7, 3, 4])));
        assert!(!c.check(&env(&[8, 3, 4])));
    }

    #[test]
    fn eq_le_check() {
        assert!(Constraint::Eq(VarRef(0), VarRef(1)).check(&env(&[5, 5])));
        assert!(Constraint::Le(VarRef(0), VarRef(1)).check(&env(&[4, 5])));
        assert!(!Constraint::Le(VarRef(0), VarRef(1)).check(&env(&[6, 5])));
    }

    #[test]
    fn in_check() {
        let c = Constraint::In {
            var: VarRef(0),
            values: vec![1, 2, 4, 8],
        };
        assert!(c.check(&env(&[4])));
        assert!(!c.check(&env(&[3])));
    }

    #[test]
    fn select_check() {
        let c = Constraint::Select {
            out: VarRef(0),
            index: VarRef(1),
            choices: vec![VarRef(2), VarRef(3)],
        };
        assert!(c.check(&env(&[40, 1, 30, 40])));
        assert!(!c.check(&env(&[30, 1, 30, 40])));
        assert!(!c.check(&env(&[30, 9, 30, 40]))); // index out of range
    }

    #[test]
    fn vars_cover_all_operands() {
        let c = Constraint::Select {
            out: VarRef(0),
            index: VarRef(1),
            choices: vec![VarRef(2), VarRef(3)],
        };
        assert_eq!(c.vars(), vec![VarRef(0), VarRef(1), VarRef(2), VarRef(3)]);
    }

    #[test]
    fn type_tags() {
        assert_eq!(Constraint::Eq(VarRef(0), VarRef(0)).type_tag(), "EQ");
    }
}
