//! Worklist-based domain propagation over a [`DomainStore`].
//!
//! Each constraint contributes a (bounds-consistent, sometimes stronger)
//! filtering rule. Propagation is *sound*: it only removes values that
//! cannot appear in any solution; it is deliberately not complete (complete
//! filtering of PROD is NP-hard), which is the standard CP trade-off.
//!
//! The engine is built once per CSP and owns everything it needs —
//! constraint list, per-variable watch lists (properly deduplicated, so a
//! constraint mentioning a variable in non-adjacent positions is woken
//! once), precompiled `IN` bitmasks, and the initial domain state — so a
//! tuner session can reuse one `Propagator` across thousands of solves
//! instead of rebuilding the adjacency on every offspring.
//!
//! Because every filter is sound and monotone, chaotic iteration reaches
//! the *same* least fixpoint (and the same wipeout verdict) under any
//! fair schedule — so the engine is free to reorder and skip work as
//! long as it never skips a pass that could still prune. Four
//! propagation-count optimisations exploit that freedom:
//!
//! * **Entailment dormancy** — a filter pass reports when its constraint
//!   has become *entailed* (can never prune again while domains only
//!   shrink: `IN` after any successful pass, `LE` once `max(a) ≤ min(b)`,
//!   `EQ`/`PROD`/`SUM`/`SELECT` once the touched variables are fixed).
//!   Dormant constraints are skipped at enqueue time; the flags live on
//!   the [`DomainStore`] trail, so entailment discovered inside a dive is
//!   undone on backtrack.
//! * **Local-fixpoint filters (no self-wakes)** — one `IN`/`LE`/`EQ`
//!   pass is naturally idempotent, and a `PROD`/`SUM`/`SELECT` pass runs
//!   its filtering rule *to its own local fixpoint* before returning
//!   (bounds feedback between the output and the factors converges
//!   within the pass). Re-running any filter immediately is therefore a
//!   guaranteed no-op, so constraints never re-enqueue themselves — the
//!   historical engine paid one no-op verification pass per productive
//!   `PROD`/`SUM`/`SELECT` pass.
//! * **Event-based wakeups** — each domain change is classified as
//!   min-raised / max-lowered / interior-only, and a watcher is woken
//!   only when the event can enable new pruning. `PROD`/`SUM` filters
//!   read nothing but bounds, so interior-only removals never wake them;
//!   `LE(a, b)` additionally only consumes `min(a)` and `max(b)`, so it
//!   wakes on exactly that event on exactly that side. `EQ`/`IN`/`SELECT`
//!   read whole value sets and keep wake-on-any-change. A skipped wake
//!   can at most delay a *dormancy marking*, never a pruning, so
//!   fixpoints are unchanged (enforced against the historical engine by
//!   `tests/prop_equiv.rs`).
//! * **Two-tier priority queue** — the worklist drains cheap filters
//!   (`EQ`/`IN`/`LE`) before expensive local-fixpoint filters
//!   (`PROD`/`SUM`/`SELECT`), so each heavy pass runs against the
//!   tightest bounds the cheap tier can derive and converges in fewer
//!   rounds. Scheduling order cannot change the fixpoint (confluence
//!   above), only how many passes it takes to get there.

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::constraint::Constraint;
use crate::problem::{Csp, VarRef};
use crate::store::{dom_for, Dom, DomainStore, VarTables};

/// Returned when propagation proves the current domains unsatisfiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("constraint propagation wiped out a domain")
    }
}

impl std::error::Error for Infeasible {}

/// One domain shrink, classified for event-based wakeups: which bounds
/// moved. `min: false, max: false` means only interior values were
/// removed — invisible to pure bounds consumers.
#[derive(Debug, Clone, Copy)]
struct Change {
    var: VarRef,
    min: bool,
    max: bool,
}

impl Change {
    /// A change whose kind is derived by comparing the variable's bounds
    /// against a pre-operation snapshot.
    fn since(store: &DomainStore, var: VarRef, pre_lo: i64, pre_hi: i64) -> Change {
        Change {
            var,
            min: store.min(var.0) != pre_lo,
            max: store.max(var.0) != pre_hi,
        }
    }

    /// A `restrict_min` result: only the lower bound moved.
    fn min_raised(var: VarRef) -> Change {
        Change {
            var,
            min: true,
            max: false,
        }
    }

    /// A `restrict_max` result: only the upper bound moved.
    fn max_lowered(var: VarRef) -> Change {
        Change {
            var,
            min: false,
            max: true,
        }
    }
}

/// Reusable propagation engine for one CSP.
///
/// Owns a copy of the constraints and the precomputed variable →
/// constraint adjacency, so it has no borrow of the originating [`Csp`]
/// and can live inside a long-lived solver session.
#[derive(Debug)]
pub struct Propagator {
    constraints: Vec<Constraint>,
    /// For each variable, the (sorted, deduplicated) indices of
    /// constraints mentioning it.
    watching: Vec<Vec<u32>>,
    tables: Rc<VarTables>,
    /// Declared domains in store representation.
    init: Vec<Dom>,
    /// Per-constraint precompiled `IN` mask (constraints that are `IN` on
    /// a bitset variable filter with a single AND).
    in_masks: Vec<Option<u64>>,
    /// Number of single-constraint filtering passes executed (observability
    /// counter; `Cell` keeps the propagation API `&self`).
    propagations: Cell<u64>,
    /// Number of times propagation proved the domains unsatisfiable.
    wipeouts: Cell<u64>,
}

impl Propagator {
    /// Builds the engine for `csp`.
    pub fn new(csp: &Csp) -> Self {
        let tables = Rc::new(VarTables::for_csp(csp));
        let mut watching = vec![Vec::new(); csp.num_vars()];
        let mut in_masks = Vec::with_capacity(csp.num_constraints());
        for (ci, c) in csp.constraints().iter().enumerate() {
            // A constraint may mention the same variable in non-adjacent
            // positions (SELECT with `out` among the choices, PROD with a
            // repeated factor): sort + dedup so each variable watches the
            // constraint exactly once.
            let mut vars = c.vars();
            vars.sort_unstable();
            vars.dedup();
            for v in vars {
                watching[v.0].push(ci as u32);
            }
            in_masks.push(match c {
                Constraint::In { var, values } => tables.mask_of(var.0, values),
                _ => None,
            });
        }
        let init = csp
            .vars()
            .map(|(r, d)| dom_for(&tables, r.0, &d.domain))
            .collect();
        Propagator {
            constraints: csp.constraints().to_vec(),
            watching,
            tables,
            init,
            in_masks,
            propagations: Cell::new(0),
            wipeouts: Cell::new(0),
        }
    }

    /// A fresh store over the declared domains (untracked, no dormancy).
    pub fn store(&self) -> DomainStore {
        DomainStore::new(
            self.tables.clone(),
            self.init.clone(),
            self.constraints.len(),
        )
    }

    /// Total single-constraint filtering passes executed so far.
    pub fn propagations(&self) -> u64 {
        self.propagations.get()
    }

    /// Total domain wipeouts (infeasibility proofs) observed so far.
    pub fn wipeouts(&self) -> u64 {
        self.wipeouts.get()
    }

    /// Resets both observability counters to zero.
    pub fn reset_stats(&self) {
        self.propagations.set(0);
        self.wipeouts.set(0);
    }

    /// Marks every already-entailed constraint dormant using read-only
    /// bounds checks — no filtering pass runs and no domain changes, so
    /// the propagation counter and the fixpoint are untouched.
    ///
    /// Only meaningful when `store` holds a propagation fixpoint: the
    /// per-type entailment predicates are the ones `filter` reports at
    /// the end of a pass, and they assume the last pass has already
    /// enforced consistency. Called after the root fixpoint (and after
    /// an incremental pin fixpoint), it catches constraints whose
    /// entailment arose *after* their final filtering pass — without the
    /// sweep, every subsequent dive re-runs them for a guaranteed no-op.
    pub fn sweep_entailed(&self, store: &mut DomainStore) {
        for (ci, c) in self.constraints.iter().enumerate() {
            if store.is_dormant(ci) {
                continue;
            }
            let entailed = match c {
                Constraint::Prod { out, factors } => {
                    store.is_fixed(out.0) && factors.iter().all(|f| store.is_fixed(f.0))
                }
                Constraint::Sum { out, terms } => {
                    store.is_fixed(out.0) && terms.iter().all(|t| store.is_fixed(t.0))
                }
                Constraint::Eq(a, b) => a == b || (store.is_fixed(a.0) && store.is_fixed(b.0)),
                Constraint::Le(a, b) => store.max(a.0) <= store.min(b.0),
                // IN goes dormant on its first pass; nothing to sweep.
                Constraint::In { .. } => false,
                Constraint::Select {
                    out,
                    index,
                    choices,
                } => {
                    store.is_fixed(index.0) && store.is_fixed(out.0) && {
                        let i = store.min(index.0);
                        store.is_fixed(choices[i as usize].0)
                    }
                }
            };
            if entailed {
                store.set_dormant(ci);
            }
        }
    }

    /// Runs propagation to fixpoint starting from every constraint.
    pub fn run_all(&self, store: &mut DomainStore) -> Result<(), Infeasible> {
        let all: Vec<u32> = (0..self.constraints.len() as u32).collect();
        self.run(store, all)
    }

    /// Runs propagation to fixpoint starting from the constraints watching
    /// `changed_var`.
    pub fn run_from(&self, store: &mut DomainStore, changed_var: VarRef) -> Result<(), Infeasible> {
        self.run(store, self.watching[changed_var.0].clone())
    }

    /// [`Propagator::run_from`] for a variable just *fixed* by branching,
    /// given its pre-fix bounds: seeds only the watchers whose wake
    /// events actually fired (fixing to the old min leaves `min`
    /// untouched, so min-sensitive `LE` sides stay asleep).
    pub fn run_from_fixed(
        &self,
        store: &mut DomainStore,
        var: VarRef,
        pre_lo: i64,
        pre_hi: i64,
    ) -> Result<(), Infeasible> {
        let val = store.min(var.0);
        let ch = Change {
            var,
            min: val != pre_lo,
            max: val != pre_hi,
        };
        let seed: Vec<u32> = self.watching[var.0]
            .iter()
            .copied()
            .filter(|&wi| self.wakes_on(wi as usize, &ch))
            .collect();
        self.run(store, seed)
    }

    /// Runs propagation to fixpoint starting from the constraints watching
    /// any of `changed` — the incremental re-solve entry point.
    pub fn run_from_vars(
        &self,
        store: &mut DomainStore,
        changed: &[VarRef],
    ) -> Result<(), Infeasible> {
        let mut seed = Vec::new();
        for v in changed {
            seed.extend_from_slice(&self.watching[v.0]);
        }
        self.run(store, seed)
    }

    /// Cheap constraints (`EQ`/`IN`/`LE`: one bounds comparison or a
    /// single mask AND) drain before expensive ones (`PROD`/`SUM`/
    /// `SELECT`: local-fixpoint loops over many variables), so a heavy
    /// pass always sees the strongest bounds the cheap tier can provide.
    fn is_cheap(&self, ci: usize) -> bool {
        matches!(
            self.constraints[ci],
            Constraint::Eq(..) | Constraint::In { .. } | Constraint::Le(..)
        )
    }

    fn run(&self, store: &mut DomainStore, seed: Vec<u32>) -> Result<(), Infeasible> {
        let ncons = self.constraints.len();
        let mut queued = vec![false; ncons];
        let mut cheap: VecDeque<u32> = VecDeque::new();
        let mut heavy: VecDeque<u32> = VecDeque::with_capacity(seed.len());
        for ci in seed {
            if !queued[ci as usize] && !store.is_dormant(ci as usize) {
                queued[ci as usize] = true;
                if self.is_cheap(ci as usize) {
                    cheap.push_back(ci);
                } else {
                    heavy.push_back(ci);
                }
            }
        }
        let mut changed_vars: Vec<Change> = Vec::new();
        while let Some(ci) = cheap.pop_front().or_else(|| heavy.pop_front()) {
            let ci = ci as usize;
            queued[ci] = false;
            if store.is_dormant(ci) {
                // Went dormant while queued; skipping is not a pass.
                continue;
            }
            changed_vars.clear();
            self.propagations.set(self.propagations.get() + 1);
            let entailed = self.filter(ci, store, &mut changed_vars).map_err(|_| {
                self.wipeouts.set(self.wipeouts.get() + 1);
                Infeasible
            })?;
            if entailed {
                store.set_dormant(ci);
            }
            // Filters run to their local fixpoint, so an immediate
            // re-run of `ci` is always a no-op: no self-wake.
            for ch in &changed_vars {
                for &wi in &self.watching[ch.var.0] {
                    let wi = wi as usize;
                    if wi != ci && !queued[wi] && !store.is_dormant(wi) && self.wakes_on(wi, ch) {
                        queued[wi] = true;
                        if self.is_cheap(wi) {
                            cheap.push_back(wi as u32);
                        } else {
                            heavy.push_back(wi as u32);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Event filter: whether constraint `wi` can possibly prune after
    /// `ch`. Pure bounds consumers ignore interior-only removals; `LE`
    /// additionally only reads one bound of each side.
    fn wakes_on(&self, wi: usize, ch: &Change) -> bool {
        match &self.constraints[wi] {
            Constraint::Eq(..) | Constraint::In { .. } | Constraint::Select { .. } => true,
            Constraint::Prod { .. } | Constraint::Sum { .. } => ch.min || ch.max,
            Constraint::Le(a, b) => (ch.var == *a && ch.min) || (ch.var == *b && ch.max),
        }
    }

    /// Applies one constraint's filtering rule, recording changed
    /// variables. `Ok(true)` means the constraint is now entailed.
    /// Non-idempotent rules (`PROD`/`SUM`/`SELECT`) iterate to their
    /// local fixpoint, so re-applying any rule immediately is a no-op.
    fn filter(
        &self,
        ci: usize,
        store: &mut DomainStore,
        changed: &mut Vec<Change>,
    ) -> Result<bool, ()> {
        match &self.constraints[ci] {
            Constraint::Prod { out, factors } => {
                loop {
                    let before = changed.len();
                    filter_prod(store, *out, factors, changed)?;
                    if changed.len() == before {
                        break;
                    }
                }
                Ok(store.is_fixed(out.0) && factors.iter().all(|f| store.is_fixed(f.0)))
            }
            Constraint::Sum { out, terms } => {
                loop {
                    let before = changed.len();
                    filter_sum(store, *out, terms, changed)?;
                    if changed.len() == before {
                        break;
                    }
                }
                Ok(store.is_fixed(out.0) && terms.iter().all(|t| store.is_fixed(t.0)))
            }
            Constraint::Eq(a, b) => {
                let (alo, ahi) = (store.min(a.0), store.max(a.0));
                if store.intersect_var(a.0, b.0)? {
                    changed.push(Change::since(store, *a, alo, ahi));
                }
                let (blo, bhi) = (store.min(b.0), store.max(b.0));
                if store.intersect_var(b.0, a.0)? {
                    changed.push(Change::since(store, *b, blo, bhi));
                }
                Ok(a == b || (store.is_fixed(a.0) && store.is_fixed(b.0)))
            }
            Constraint::Le(a, b) => {
                let bhi = store.max(b.0);
                if store.restrict_max(a.0, bhi)? {
                    changed.push(Change::max_lowered(*a));
                }
                let alo = store.min(a.0);
                if store.restrict_min(b.0, alo)? {
                    changed.push(Change::min_raised(*b));
                }
                Ok(store.max(a.0) <= store.min(b.0))
            }
            Constraint::In { var, values } => {
                let (lo, hi) = (store.min(var.0), store.max(var.0));
                let ch = match self.in_masks[ci] {
                    Some(mask) => store.and_mask(var.0, mask)?,
                    None => store.restrict_to(var.0, values)?,
                };
                if ch {
                    changed.push(Change::since(store, *var, lo, hi));
                }
                // Domains only shrink, so once inside the IN set, always
                // inside: entailed after any successful pass.
                Ok(true)
            }
            Constraint::Select {
                out,
                index,
                choices,
            } => {
                loop {
                    let before = changed.len();
                    filter_select(store, *out, *index, choices, changed)?;
                    if changed.len() == before {
                        break;
                    }
                }
                Ok(store.is_fixed(index.0) && store.is_fixed(out.0) && {
                    let i = store.min(index.0);
                    store.is_fixed(choices[i as usize].0)
                })
            }
        }
    }
}

/// Saturating non-negative product used for interval bounds.
fn sat_prod(vals: impl Iterator<Item = i64>) -> i64 {
    let mut p: i64 = 1;
    for v in vals {
        p = p.saturating_mul(v);
        if p == i64::MAX {
            return i64::MAX;
        }
    }
    p
}

fn filter_prod(
    store: &mut DomainStore,
    out: VarRef,
    factors: &[VarRef],
    changed: &mut Vec<Change>,
) -> Result<(), ()> {
    // Bounds for the product.
    let lo = sat_prod(factors.iter().map(|f| store.min(f.0)));
    let hi = sat_prod(factors.iter().map(|f| store.max(f.0)));
    if store.restrict_min(out.0, lo)? {
        changed.push(Change::min_raised(out));
    }
    if hi < i64::MAX && store.restrict_max(out.0, hi)? {
        changed.push(Change::max_lowered(out));
    }
    let out_lo = store.min(out.0);
    let out_hi = store.max(out.0);
    let out_fixed = store.fixed_value(out.0);

    for (i, f) in factors.iter().enumerate() {
        let others_lo = sat_prod(
            factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, g)| store.min(g.0)),
        );
        let others_hi = sat_prod(
            factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, g)| store.max(g.0)),
        );
        if others_hi > 0 && others_hi < i64::MAX {
            let min_f = out_lo.div_euclid(others_hi) + i64::from(out_lo.rem_euclid(others_hi) != 0);
            if store.restrict_min(f.0, min_f)? {
                changed.push(Change::min_raised(*f));
            }
        }
        if others_lo > 0 {
            let max_f = out_hi / others_lo;
            if store.restrict_max(f.0, max_f)? {
                changed.push(Change::max_lowered(*f));
            }
        }
        // Divisibility: with a fixed positive product, every factor divides it.
        if let Some(p) = out_fixed {
            let (flo, fhi) = (store.min(f.0), store.max(f.0));
            if p > 0 && store.retain_divisors(f.0, p)? {
                changed.push(Change::since(store, *f, flo, fhi));
            }
        }
    }
    Ok(())
}

fn filter_sum(
    store: &mut DomainStore,
    out: VarRef,
    terms: &[VarRef],
    changed: &mut Vec<Change>,
) -> Result<(), ()> {
    let lo: i64 = terms.iter().map(|t| store.min(t.0)).sum();
    let hi: i64 = terms.iter().map(|t| store.max(t.0)).sum();
    if store.restrict_min(out.0, lo)? {
        changed.push(Change::min_raised(out));
    }
    if store.restrict_max(out.0, hi)? {
        changed.push(Change::max_lowered(out));
    }
    let out_lo = store.min(out.0);
    let out_hi = store.max(out.0);
    for (i, t) in terms.iter().enumerate() {
        let others_lo: i64 = terms
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| store.min(g.0))
            .sum();
        let others_hi: i64 = terms
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| store.max(g.0))
            .sum();
        if store.restrict_min(t.0, out_lo - others_hi)? {
            changed.push(Change::min_raised(*t));
        }
        if store.restrict_max(t.0, out_hi - others_lo)? {
            changed.push(Change::max_lowered(*t));
        }
    }
    Ok(())
}

fn filter_select(
    store: &mut DomainStore,
    out: VarRef,
    index: VarRef,
    choices: &[VarRef],
    changed: &mut Vec<Change>,
) -> Result<(), ()> {
    let n = choices.len() as i64;
    if store.restrict_min(index.0, 0)? {
        changed.push(Change::min_raised(index));
    }
    if store.restrict_max(index.0, n - 1)? {
        changed.push(Change::max_lowered(index));
    }
    // Prune indices whose choice cannot overlap the output (bounds check).
    let out_lo = store.min(out.0);
    let out_hi = store.max(out.0);
    let feasible: Vec<i64> = store
        .value_list(index.0)
        .into_iter()
        .filter(|&i| {
            let c = choices[i as usize].0;
            store.max(c) >= out_lo && store.min(c) <= out_hi
        })
        .collect();
    if feasible.is_empty() {
        return Err(());
    }
    if feasible.len() as u64 != store.size(index.0) {
        let (ilo, ihi) = (store.min(index.0), store.max(index.0));
        store.restrict_to(index.0, &feasible)?;
        changed.push(Change::since(store, index, ilo, ihi));
    }
    // Output bounds from remaining choices.
    let lo = feasible
        .iter()
        .map(|&i| store.min(choices[i as usize].0))
        .min()
        .expect("nonempty");
    let hi = feasible
        .iter()
        .map(|&i| store.max(choices[i as usize].0))
        .max()
        .expect("nonempty");
    if store.restrict_min(out.0, lo)? {
        changed.push(Change::min_raised(out));
    }
    if store.restrict_max(out.0, hi)? {
        changed.push(Change::max_lowered(out));
    }
    // Fixed index degenerates to EQ.
    if let Some(i) = store.fixed_value(index.0) {
        let ch = choices[i as usize];
        let (olo, ohi) = (store.min(out.0), store.max(out.0));
        if store.intersect_var(out.0, ch.0)? {
            changed.push(Change::since(store, out, olo, ohi));
        }
        let (clo, chi) = (store.min(ch.0), store.max(ch.0));
        if store.intersect_var(ch.0, out.0)? {
            changed.push(Change::since(store, ch, clo, chi));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::problem::VarCategory;

    #[test]
    fn prod_fixes_last_factor() {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 24);
        let a = csp.add_var("a", Domain::values([2]), VarCategory::Tunable);
        let b = csp.add_var(
            "b",
            Domain::values([1, 2, 3, 4, 6, 12, 24]),
            VarCategory::Tunable,
        );
        csp.post_prod(n, vec![a, b]);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        assert_eq!(s.fixed_value(b.0), Some(12));
    }

    #[test]
    fn prod_divisibility_filter() {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 12);
        let a = csp.add_var(
            "a",
            Domain::values([1, 2, 3, 4, 5, 6, 7, 8, 12]),
            VarCategory::Tunable,
        );
        let b = csp.add_var("b", Domain::range(1, 12), VarCategory::Other);
        csp.post_prod(n, vec![a, b]);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        // 5, 7, 8 do not divide 12
        assert_eq!(s.value_list(a.0), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn sum_bounds() {
        let mut csp = Csp::new();
        let total = csp.add_var("t", Domain::range(0, 100), VarCategory::Other);
        let a = csp.add_var("a", Domain::range(10, 60), VarCategory::Other);
        let b = csp.add_var("b", Domain::range(20, 70), VarCategory::Other);
        csp.post_sum(total, vec![a, b]);
        let limit = csp.add_const("lim", 50);
        csp.post_le(total, limit);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        // a + b <= 50 with b >= 20 forces a <= 30
        assert!(s.max(a.0) <= 30);
        assert!(s.max(b.0) <= 40);
        assert!(s.min(total.0) >= 30);
    }

    #[test]
    fn le_infeasible_detected() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::range(10, 20), VarCategory::Other);
        let b = csp.add_var("b", Domain::range(0, 5), VarCategory::Other);
        csp.post_le(a, b);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        assert_eq!(p.run_all(&mut s), Err(Infeasible));
        assert_eq!(p.wipeouts(), 1);
    }

    #[test]
    fn select_prunes_index_and_out() {
        let mut csp = Csp::new();
        let c0 = csp.add_const("c0", 5);
        let c1 = csp.add_const("c1", 50);
        let c2 = csp.add_const("c2", 500);
        let idx = csp.add_var("idx", Domain::values([0, 1, 2]), VarCategory::Tunable);
        let out = csp.add_var("out", Domain::range(10, 100), VarCategory::Other);
        csp.post_select(out, idx, vec![c0, c1, c2]);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        // Only choice 1 (=50) fits in [10, 100].
        assert_eq!(s.fixed_value(idx.0), Some(1));
        assert_eq!(s.fixed_value(out.0), Some(50));
    }

    #[test]
    fn eq_intersects_both_sides() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2, 3, 4]), VarCategory::Other);
        let b = csp.add_var("b", Domain::values([3, 4, 5, 6]), VarCategory::Other);
        csp.post_eq(a, b);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        assert_eq!(s.value_list(a.0), vec![3, 4]);
        assert_eq!(s.value_list(b.0), vec![3, 4]);
    }

    #[test]
    fn chained_propagation_fixes_after_branching() {
        // x * y == 64, x == y: propagation alone is bounds-consistent and
        // keeps the divisor domains, but fixing x must immediately fix y.
        let mut csp = Csp::new();
        let n = csp.add_const("n", 64);
        let x = csp.add_var("x", Domain::divisors_of(64), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::divisors_of(64), VarCategory::Tunable);
        csp.post_prod(n, vec![x, y]);
        csp.post_eq(x, y);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        s.commit();
        let m = s.mark();
        s.fix(x.0, 8).expect("8 is a divisor");
        p.run_from(&mut s, x).expect("feasible");
        assert_eq!(s.fixed_value(y.0), Some(8));
        // An inconsistent branch is rejected — and the trail restores the
        // pre-branch domains, dormancy included.
        s.undo_to(m);
        let m2 = s.mark();
        s.fix(x.0, 4).expect("4 is a divisor");
        assert_eq!(p.run_from(&mut s, x), Err(Infeasible));
        s.undo_to(m2);
        assert_eq!(
            s.value_list(x.0),
            Domain::divisors_of(64).iter_values().collect::<Vec<_>>()
        );
    }

    #[test]
    fn watcher_dedup_handles_non_adjacent_repeats() {
        // PROD with a repeated factor and SELECT with `out` among the
        // choices: `c.vars()` lists the repeated variable in non-adjacent
        // positions, which the old adjacent-only dedup kept as duplicate
        // watch entries (double wakeups). Each variable must watch each
        // constraint exactly once.
        let mut csp = Csp::new();
        let n = csp.add_const("n", 16);
        let x = csp.add_var("x", Domain::divisors_of(16), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::divisors_of(16), VarCategory::Tunable);
        csp.post_prod(n, vec![x, y, x]); // x² · y == 16
        let idx = csp.add_var("idx", Domain::values([0, 1]), VarCategory::Tunable);
        let out = csp.add_var("out", Domain::range(1, 16), VarCategory::Other);
        csp.post_select(out, idx, vec![y, out]);
        let p = Propagator::new(&csp);
        for (v, w) in p.watching.iter().enumerate() {
            let mut dd = w.clone();
            dd.dedup();
            assert_eq!(*w, dd, "duplicate watch entries for x{v}: {w:?}");
        }
        assert_eq!(p.watching[x.0], vec![0], "x watches PROD once");
        assert_eq!(p.watching[out.0], vec![1], "out watches SELECT once");
    }

    #[test]
    fn dormant_in_constraint_propagates_once() {
        // `a IN {1}` prunes on its first pass and is then entailed: the
        // fixpoint must cost exactly one filtering pass (the old engine
        // re-enqueued the constraint against itself for a no-op second
        // pass).
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        csp.post_in(a, [1]);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        assert_eq!(s.fixed_value(a.0), Some(1));
        assert_eq!(p.propagations(), 1);
        assert!(s.is_dormant(0));
        // Re-running from the changed variable is free: the constraint
        // stays dormant and no pass executes.
        p.run_from(&mut s, a).expect("feasible");
        assert_eq!(p.propagations(), 1);
    }

    #[test]
    fn dormancy_does_not_change_fixpoints() {
        // Entailment skipping must be invisible in the computed domains:
        // compare against a store where dormancy never kicks in because
        // every pass is seeded fresh.
        let mut csp = Csp::new();
        let n = csp.add_const("n", 64);
        let x = csp.add_var("x", Domain::divisors_of(64), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::divisors_of(64), VarCategory::Tunable);
        let z = csp.add_var("z", Domain::divisors_of(64), VarCategory::Tunable);
        csp.post_prod(n, vec![x, y, z]);
        let cap = csp.add_const("cap", 16);
        let inner = csp.add_var("inner", Domain::range(1, 4096), VarCategory::Other);
        csp.post_prod(inner, vec![y, z]);
        csp.post_le(inner, cap);
        csp.post_in(x, [4, 8, 16, 32, 64]);
        let p = Propagator::new(&csp);
        let mut s = p.store();
        p.run_all(&mut s).expect("feasible");
        s.commit();
        let m = s.mark();
        s.fix(y.0, 4).expect("in domain");
        p.run_from(&mut s, y).expect("feasible");
        let fixed: Vec<Vec<i64>> = (0..csp.num_vars()).map(|v| s.value_list(v)).collect();
        s.undo_to(m);
        // Second, identical branch: dormancy discovered the first time was
        // rolled back, so the result must be identical.
        let m2 = s.mark();
        s.fix(y.0, 4).expect("in domain");
        p.run_from(&mut s, y).expect("feasible");
        let again: Vec<Vec<i64>> = (0..csp.num_vars()).map(|v| s.value_list(v)).collect();
        s.undo_to(m2);
        assert_eq!(fixed, again);
    }
}
