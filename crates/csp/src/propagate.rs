//! Worklist-based domain propagation.
//!
//! Each constraint contributes a (bounds-consistent, sometimes stronger)
//! filtering rule. Propagation is *sound*: it only removes values that
//! cannot appear in any solution; it is deliberately not complete (complete
//! filtering of PROD is NP-hard), which is the standard CP trade-off.

use std::cell::Cell;
use std::collections::VecDeque;

use crate::constraint::Constraint;
use crate::domain::Domain;
use crate::problem::{Csp, VarRef};

/// Returned when propagation proves the current domains unsatisfiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("constraint propagation wiped out a domain")
    }
}

impl std::error::Error for Infeasible {}

/// Reusable propagation engine for one CSP (precomputes the variable →
/// constraint adjacency).
#[derive(Debug)]
pub struct Propagator<'a> {
    csp: &'a Csp,
    /// For each variable, the indices of constraints mentioning it.
    watching: Vec<Vec<u32>>,
    /// Number of single-constraint filtering passes executed (observability
    /// counter; `Cell` keeps the propagation API `&self`).
    propagations: Cell<u64>,
    /// Number of times propagation proved the domains unsatisfiable.
    wipeouts: Cell<u64>,
}

impl<'a> Propagator<'a> {
    /// Builds the engine for `csp`.
    pub fn new(csp: &'a Csp) -> Self {
        let mut watching = vec![Vec::new(); csp.num_vars()];
        for (ci, c) in csp.constraints().iter().enumerate() {
            for v in c.vars() {
                let w = &mut watching[v.0];
                if w.last() != Some(&(ci as u32)) {
                    w.push(ci as u32);
                }
            }
        }
        Propagator {
            csp,
            watching,
            propagations: Cell::new(0),
            wipeouts: Cell::new(0),
        }
    }

    /// Total single-constraint filtering passes executed so far.
    pub fn propagations(&self) -> u64 {
        self.propagations.get()
    }

    /// Total domain wipeouts (infeasibility proofs) observed so far.
    pub fn wipeouts(&self) -> u64 {
        self.wipeouts.get()
    }

    /// Resets both observability counters to zero.
    pub fn reset_stats(&self) {
        self.propagations.set(0);
        self.wipeouts.set(0);
    }

    /// Initial domains as declared.
    pub fn initial_domains(&self) -> Vec<Domain> {
        self.csp.vars().map(|(_, d)| d.domain.clone()).collect()
    }

    /// Runs propagation to fixpoint starting from every constraint.
    pub fn run_all(&self, domains: &mut [Domain]) -> Result<(), Infeasible> {
        let all: Vec<u32> = (0..self.csp.num_constraints() as u32).collect();
        self.run(domains, all)
    }

    /// Runs propagation to fixpoint starting from the constraints watching
    /// `changed_var`.
    pub fn run_from(&self, domains: &mut [Domain], changed_var: VarRef) -> Result<(), Infeasible> {
        self.run(domains, self.watching[changed_var.0].to_vec())
    }

    fn run(&self, domains: &mut [Domain], seed: Vec<u32>) -> Result<(), Infeasible> {
        let ncons = self.csp.num_constraints();
        let mut queued = vec![false; ncons];
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(seed.len());
        for ci in seed {
            if !queued[ci as usize] {
                queued[ci as usize] = true;
                queue.push_back(ci);
            }
        }
        let mut changed_vars: Vec<VarRef> = Vec::new();
        while let Some(ci) = queue.pop_front() {
            queued[ci as usize] = false;
            changed_vars.clear();
            self.propagations.set(self.propagations.get() + 1);
            filter(
                &self.csp.constraints()[ci as usize],
                domains,
                &mut changed_vars,
            )
            .map_err(|_| {
                self.wipeouts.set(self.wipeouts.get() + 1);
                Infeasible
            })?;
            for v in &changed_vars {
                for &wi in &self.watching[v.0] {
                    // The triggering constraint re-enqueues itself too: one
                    // filtering pass is not idempotent (and constraints may
                    // mention a variable on both sides).
                    if !queued[wi as usize] {
                        queued[wi as usize] = true;
                        queue.push_back(wi);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Applies one constraint's filtering rule, recording changed variables.
fn filter(c: &Constraint, domains: &mut [Domain], changed: &mut Vec<VarRef>) -> Result<(), ()> {
    match c {
        Constraint::Prod { out, factors } => filter_prod(*out, factors, domains, changed),
        Constraint::Sum { out, terms } => filter_sum(*out, terms, domains, changed),
        Constraint::Eq(a, b) => {
            let db = domains[b.0].clone();
            if domains[a.0].intersect(&db)? {
                changed.push(*a);
            }
            let da = domains[a.0].clone();
            if domains[b.0].intersect(&da)? {
                changed.push(*b);
            }
            Ok(())
        }
        Constraint::Le(a, b) => {
            let bhi = domains[b.0].max();
            if domains[a.0].restrict_max(bhi)? {
                changed.push(*a);
            }
            let alo = domains[a.0].min();
            if domains[b.0].restrict_min(alo)? {
                changed.push(*b);
            }
            Ok(())
        }
        Constraint::In { var, values } => {
            if domains[var.0].restrict_to(values)? {
                changed.push(*var);
            }
            Ok(())
        }
        Constraint::Select {
            out,
            index,
            choices,
        } => filter_select(*out, *index, choices, domains, changed),
    }
}

/// Saturating non-negative product used for interval bounds.
fn sat_prod(vals: impl Iterator<Item = i64>) -> i64 {
    let mut p: i64 = 1;
    for v in vals {
        p = p.saturating_mul(v);
        if p == i64::MAX {
            return i64::MAX;
        }
    }
    p
}

fn filter_prod(
    out: VarRef,
    factors: &[VarRef],
    domains: &mut [Domain],
    changed: &mut Vec<VarRef>,
) -> Result<(), ()> {
    // Bounds for the product.
    let lo = sat_prod(factors.iter().map(|f| domains[f.0].min()));
    let hi = sat_prod(factors.iter().map(|f| domains[f.0].max()));
    if domains[out.0].restrict_min(lo)? {
        changed.push(out);
    }
    if hi < i64::MAX && domains[out.0].restrict_max(hi)? {
        changed.push(out);
    }
    let out_lo = domains[out.0].min();
    let out_hi = domains[out.0].max();
    let out_fixed = domains[out.0].fixed_value();

    for (i, f) in factors.iter().enumerate() {
        let others_lo = sat_prod(
            factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, g)| domains[g.0].min()),
        );
        let others_hi = sat_prod(
            factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, g)| domains[g.0].max()),
        );
        if others_hi > 0 && others_hi < i64::MAX {
            let min_f = out_lo.div_euclid(others_hi) + i64::from(out_lo.rem_euclid(others_hi) != 0);
            if domains[f.0].restrict_min(min_f)? {
                changed.push(*f);
            }
        }
        if others_lo > 0 {
            let max_f = out_hi / others_lo;
            if domains[f.0].restrict_max(max_f)? {
                changed.push(*f);
            }
        }
        // Divisibility: with a fixed positive product, every factor divides it.
        if let Some(p) = out_fixed {
            if p > 0 {
                if let Domain::Values(vals) = &domains[f.0] {
                    if vals.iter().any(|&v| v == 0 || p % v != 0) {
                        let kept: Vec<i64> = vals
                            .iter()
                            .copied()
                            .filter(|&v| v != 0 && p % v == 0)
                            .collect();
                        if kept.is_empty() {
                            return Err(());
                        }
                        domains[f.0] = Domain::Values(kept);
                        changed.push(*f);
                    }
                }
            }
        }
    }
    Ok(())
}

fn filter_sum(
    out: VarRef,
    terms: &[VarRef],
    domains: &mut [Domain],
    changed: &mut Vec<VarRef>,
) -> Result<(), ()> {
    let lo: i64 = terms.iter().map(|t| domains[t.0].min()).sum();
    let hi: i64 = terms.iter().map(|t| domains[t.0].max()).sum();
    if domains[out.0].restrict_min(lo)? {
        changed.push(out);
    }
    if domains[out.0].restrict_max(hi)? {
        changed.push(out);
    }
    let out_lo = domains[out.0].min();
    let out_hi = domains[out.0].max();
    for (i, t) in terms.iter().enumerate() {
        let others_lo: i64 = terms
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| domains[g.0].min())
            .sum();
        let others_hi: i64 = terms
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| domains[g.0].max())
            .sum();
        if domains[t.0].restrict_min(out_lo - others_hi)?.max(false) {
            changed.push(*t);
        }
        if domains[t.0].restrict_max(out_hi - others_lo)? {
            changed.push(*t);
        }
    }
    Ok(())
}

fn filter_select(
    out: VarRef,
    index: VarRef,
    choices: &[VarRef],
    domains: &mut [Domain],
    changed: &mut Vec<VarRef>,
) -> Result<(), ()> {
    let n = choices.len() as i64;
    if domains[index.0].restrict_min(0)? {
        changed.push(index);
    }
    if domains[index.0].restrict_max(n - 1)? {
        changed.push(index);
    }
    // Prune indices whose choice cannot overlap the output (bounds check).
    let out_lo = domains[out.0].min();
    let out_hi = domains[out.0].max();
    let feasible: Vec<i64> = domains[index.0]
        .iter_values()
        .filter(|&i| {
            let d = &domains[choices[i as usize].0];
            d.max() >= out_lo && d.min() <= out_hi
        })
        .collect();
    if feasible.is_empty() {
        return Err(());
    }
    if feasible.len() as u64 != domains[index.0].size() {
        domains[index.0] = Domain::Values(feasible.clone());
        changed.push(index);
    }
    // Output bounds from remaining choices.
    let lo = feasible
        .iter()
        .map(|&i| domains[choices[i as usize].0].min())
        .min()
        .expect("nonempty");
    let hi = feasible
        .iter()
        .map(|&i| domains[choices[i as usize].0].max())
        .max()
        .expect("nonempty");
    if domains[out.0].restrict_min(lo)? {
        changed.push(out);
    }
    if domains[out.0].restrict_max(hi)? {
        changed.push(out);
    }
    // Fixed index degenerates to EQ.
    if let Some(i) = domains[index.0].fixed_value() {
        let ch = choices[i as usize];
        let dch = domains[ch.0].clone();
        if domains[out.0].intersect(&dch)? {
            changed.push(out);
        }
        let dout = domains[out.0].clone();
        if domains[ch.0].intersect(&dout)? {
            changed.push(ch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarCategory;

    #[test]
    fn prod_fixes_last_factor() {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 24);
        let a = csp.add_var("a", Domain::values([2]), VarCategory::Tunable);
        let b = csp.add_var(
            "b",
            Domain::values([1, 2, 3, 4, 6, 12, 24]),
            VarCategory::Tunable,
        );
        csp.post_prod(n, vec![a, b]);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        p.run_all(&mut d).expect("feasible");
        assert_eq!(d[b.0].fixed_value(), Some(12));
    }

    #[test]
    fn prod_divisibility_filter() {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 12);
        let a = csp.add_var(
            "a",
            Domain::values([1, 2, 3, 4, 5, 6, 7, 8, 12]),
            VarCategory::Tunable,
        );
        let b = csp.add_var("b", Domain::range(1, 12), VarCategory::Other);
        csp.post_prod(n, vec![a, b]);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        p.run_all(&mut d).expect("feasible");
        // 5, 7, 8 do not divide 12
        assert_eq!(
            d[a.0].iter_values().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 6, 12]
        );
    }

    #[test]
    fn sum_bounds() {
        let mut csp = Csp::new();
        let total = csp.add_var("t", Domain::range(0, 100), VarCategory::Other);
        let a = csp.add_var("a", Domain::range(10, 60), VarCategory::Other);
        let b = csp.add_var("b", Domain::range(20, 70), VarCategory::Other);
        csp.post_sum(total, vec![a, b]);
        let limit = csp.add_const("lim", 50);
        csp.post_le(total, limit);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        p.run_all(&mut d).expect("feasible");
        // a + b <= 50 with b >= 20 forces a <= 30
        assert!(d[a.0].max() <= 30);
        assert!(d[b.0].max() <= 40);
        assert!(d[total.0].min() >= 30);
    }

    #[test]
    fn le_infeasible_detected() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::range(10, 20), VarCategory::Other);
        let b = csp.add_var("b", Domain::range(0, 5), VarCategory::Other);
        csp.post_le(a, b);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        assert_eq!(p.run_all(&mut d), Err(Infeasible));
    }

    #[test]
    fn select_prunes_index_and_out() {
        let mut csp = Csp::new();
        let c0 = csp.add_const("c0", 5);
        let c1 = csp.add_const("c1", 50);
        let c2 = csp.add_const("c2", 500);
        let idx = csp.add_var("idx", Domain::values([0, 1, 2]), VarCategory::Tunable);
        let out = csp.add_var("out", Domain::range(10, 100), VarCategory::Other);
        csp.post_select(out, idx, vec![c0, c1, c2]);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        p.run_all(&mut d).expect("feasible");
        // Only choice 1 (=50) fits in [10, 100].
        assert_eq!(d[idx.0].fixed_value(), Some(1));
        assert_eq!(d[out.0].fixed_value(), Some(50));
    }

    #[test]
    fn eq_intersects_both_sides() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2, 3, 4]), VarCategory::Other);
        let b = csp.add_var("b", Domain::values([3, 4, 5, 6]), VarCategory::Other);
        csp.post_eq(a, b);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        p.run_all(&mut d).expect("feasible");
        assert_eq!(d[a.0], Domain::values([3, 4]));
        assert_eq!(d[b.0], Domain::values([3, 4]));
    }

    #[test]
    fn chained_propagation_fixes_after_branching() {
        // x * y == 64, x == y: propagation alone is bounds-consistent and
        // keeps the divisor domains, but fixing x must immediately fix y.
        let mut csp = Csp::new();
        let n = csp.add_const("n", 64);
        let x = csp.add_var("x", Domain::divisors_of(64), VarCategory::Tunable);
        let y = csp.add_var("y", Domain::divisors_of(64), VarCategory::Tunable);
        csp.post_prod(n, vec![x, y]);
        csp.post_eq(x, y);
        let p = Propagator::new(&csp);
        let mut d = p.initial_domains();
        p.run_all(&mut d).expect("feasible");
        d[x.0].fix(8).expect("8 is a divisor");
        p.run_from(&mut d, x).expect("feasible");
        assert_eq!(d[y.0].fixed_value(), Some(8));
        // An inconsistent branch is rejected.
        let mut d2 = p.initial_domains();
        p.run_all(&mut d2).expect("feasible");
        d2[x.0].fix(4).expect("4 is a divisor");
        assert_eq!(p.run_from(&mut d2, x), Err(Infeasible));
    }
}
