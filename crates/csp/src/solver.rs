//! `RandSAT`: randomised constraint satisfaction.
//!
//! The paper's explorer needs two primitives from its CSP solver:
//! *validate* (is a concrete assignment a solution?) and *sample* (return
//! multiple random, valid, concrete assignments). Sampling is implemented
//! as propagation-guided backtracking search with randomised variable and
//! value order, restarted per requested sample.

use heron_rng::Rng;
use heron_rng::SliceRandom;
use heron_trace::Tracer;

use crate::domain::Domain;
use crate::problem::{Csp, Solution, VarRef};
use crate::propagate::Propagator;

/// Counters describing one [`rand_sat_traced`] call.
///
/// All counts are exact and deterministic for a fixed `(csp, seed, n,
/// budget)` tuple, which is what the exact-count unit tests pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Randomised backtracking dives started (including the ones that
    /// found a duplicate or nothing).
    pub attempts: u64,
    /// Single-constraint filtering passes executed, root propagation
    /// included.
    pub propagations: u64,
    /// Dives that ended without contributing a new solution — either the
    /// budget ran out or the result duplicated an earlier sample — and
    /// therefore restarted the search from the root.
    pub restarts: u64,
    /// Domain wipeouts (infeasibility proofs) hit during propagation.
    pub wipeouts: u64,
    /// Distinct solutions returned.
    pub solutions: u64,
}

/// Checks a complete assignment against every declared domain and every
/// posted constraint.
pub fn validate(csp: &Csp, sol: &Solution) -> bool {
    if sol.values().len() != csp.num_vars() {
        return false;
    }
    for (r, decl) in csp.vars() {
        if !decl.domain.contains(sol.value(r)) {
            return false;
        }
    }
    let env = |r: VarRef| sol.value(r);
    csp.constraints().iter().all(|c| c.check(&env))
}

/// Draws up to `n` *distinct* random solutions of `csp`.
///
/// Returns fewer than `n` (possibly zero) solutions if the problem is
/// infeasible or the per-sample backtracking budget is exhausted — callers
/// treat an empty result as "space wiped out", mirroring how or-tools is
/// used in the paper.
pub fn rand_sat<R: Rng>(csp: &Csp, rng: &mut R, n: usize) -> Vec<Solution> {
    rand_sat_with_budget(csp, rng, n, 2_000)
}

/// [`rand_sat`] with an explicit per-sample backtracking budget.
pub fn rand_sat_with_budget<R: Rng>(
    csp: &Csp,
    rng: &mut R,
    n: usize,
    budget: u32,
) -> Vec<Solution> {
    rand_sat_traced(csp, rng, n, budget, &Tracer::disabled()).0
}

/// [`rand_sat_with_budget`] that additionally reports exact solver
/// counters and records them on `tracer` (span `csp.solve`, counters
/// `csp.*`). The tracer never touches `rng`, so traced and untraced runs
/// draw identical samples.
pub fn rand_sat_traced<R: Rng>(
    csp: &Csp,
    rng: &mut R,
    n: usize,
    budget: u32,
    tracer: &Tracer,
) -> (Vec<Solution>, SolveStats) {
    let span = tracer.span_with("csp.solve", || {
        [
            ("n", n.to_string()),
            ("budget", budget.to_string()),
            ("vars", csp.num_vars().to_string()),
        ]
    });
    let mut stats = SolveStats::default();
    let prop = Propagator::new(csp);
    let mut root = prop.initial_domains();
    let root_ok = prop.run_all(&mut root).is_ok();
    let mut out = Vec::with_capacity(n);
    if root_ok {
        let mut seen = std::collections::HashSet::new();
        // Give each requested sample a few attempts before giving up, so
        // that a handful of unlucky random walks does not starve the
        // population.
        let mut attempts = n * 3;
        while out.len() < n && attempts > 0 {
            attempts -= 1;
            stats.attempts += 1;
            let mut fails = budget;
            let found = match search_one(csp, &prop, &root, rng, &mut fails) {
                Some(sol) => {
                    debug_assert!(validate(csp, &sol), "search produced an invalid solution");
                    if seen.insert(sol.fingerprint()) {
                        out.push(sol);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if !found {
                stats.restarts += 1;
            }
        }
    }
    stats.propagations = prop.propagations();
    stats.wipeouts = prop.wipeouts();
    stats.solutions = out.len() as u64;
    tracer.counter_add("csp.attempts", stats.attempts);
    tracer.counter_add("csp.propagations", stats.propagations);
    tracer.counter_add("csp.restarts", stats.restarts);
    tracer.counter_add("csp.wipeouts", stats.wipeouts);
    tracer.counter_add("csp.solutions", stats.solutions);
    drop(span);
    (out, stats)
}

/// One randomised dive with chronological backtracking.
fn search_one<R: Rng>(
    csp: &Csp,
    prop: &Propagator<'_>,
    root: &[Domain],
    rng: &mut R,
    fails: &mut u32,
) -> Option<Solution> {
    // Branch order: tunables in random order, then everything else in
    // declaration order (those are functionally determined in well-formed
    // Heron spaces, so they rarely need branching).
    let mut order = csp.tunables();
    order.shuffle(rng);
    for (r, _) in csp.vars() {
        if !order.contains(&r) {
            order.push(r);
        }
    }
    let mut domains = root.to_vec();
    dive(csp, prop, &mut domains, &order, 0, rng, fails)
}

fn dive<R: Rng>(
    csp: &Csp,
    prop: &Propagator<'_>,
    domains: &mut [Domain],
    order: &[VarRef],
    depth: usize,
    rng: &mut R,
    fails: &mut u32,
) -> Option<Solution> {
    // Find the next unfixed variable at or after `depth`.
    let mut d = depth;
    while d < order.len() && domains[order[d].0].is_fixed() {
        d += 1;
    }
    if d == order.len() {
        // Propagation is deliberately incomplete (bounds consistency), so a
        // fully fixed assignment must still pass the exact check.
        let values: Vec<i64> = domains.iter().map(|dom| dom.min()).collect();
        let sol = Solution::new(values);
        if validate(csp, &sol) {
            return Some(sol);
        }
        *fails = fails.saturating_sub(1);
        return None;
    }
    let var = order[d];
    let is_tunable = csp.tunables().contains(&var);
    let candidates: Vec<i64> = match &domains[var.0] {
        Domain::Values(v) => {
            let mut v = v.clone();
            v.shuffle(rng);
            v
        }
        Domain::Range { lo, hi } => {
            // Auxiliary range variable still unfixed: try a random value and
            // the bounds. Occurs only for slack-like variables.
            let mut v = vec![*lo, *hi];
            if hi > lo {
                v.push(rng.random_range(*lo..=*hi));
            }
            v.dedup();
            v
        }
    };
    let try_limit = if is_tunable {
        candidates.len()
    } else {
        candidates.len().min(4)
    };
    for &val in candidates.iter().take(try_limit) {
        if *fails == 0 {
            return None;
        }
        let mut trial = domains.to_vec();
        if trial[var.0].fix(val).is_ok() && prop.run_from(&mut trial, var).is_ok() {
            let mut trial = trial;
            if let Some(sol) = dive(csp, prop, &mut trial, order, d + 1, rng, fails) {
                return Some(sol);
            }
        }
        *fails = fails.saturating_sub(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarCategory;
    use heron_rng::HeronRng;

    /// A miniature tiling space: i0 * i1 * i2 == 64, i1 * i2 <= 32,
    /// vec ∈ {1,2,4,8}, vec <= i2.
    fn tiling_csp() -> (Csp, [VarRef; 4]) {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 64);
        let i0 = csp.add_var("i0", Domain::divisors_of(64), VarCategory::Tunable);
        let i1 = csp.add_var("i1", Domain::divisors_of(64), VarCategory::Tunable);
        let i2 = csp.add_var("i2", Domain::divisors_of(64), VarCategory::Tunable);
        csp.post_prod(n, vec![i0, i1, i2]);
        let inner = csp.add_var("inner", Domain::range(1, 4096), VarCategory::Other);
        csp.post_prod(inner, vec![i1, i2]);
        let cap = csp.add_const("cap", 32);
        csp.post_le(inner, cap);
        let vec = csp.add_var("vec", Domain::values([1, 2, 4, 8]), VarCategory::Tunable);
        csp.post_le(vec, i2);
        (csp, [i0, i1, i2, vec])
    }

    #[test]
    fn solutions_satisfy_all_constraints() {
        let (csp, [i0, i1, i2, vec]) = tiling_csp();
        let mut rng = HeronRng::from_seed(42);
        let sols = rand_sat(&csp, &mut rng, 32);
        assert!(
            sols.len() >= 16,
            "expected many solutions, got {}",
            sols.len()
        );
        for s in &sols {
            assert!(validate(&csp, s));
            assert_eq!(s.value(i0) * s.value(i1) * s.value(i2), 64);
            assert!(s.value(i1) * s.value(i2) <= 32);
            assert!(s.value(vec) <= s.value(i2));
        }
    }

    #[test]
    fn solutions_are_distinct_and_diverse() {
        let (csp, [i0, ..]) = tiling_csp();
        let mut rng = HeronRng::from_seed(1);
        let sols = rand_sat(&csp, &mut rng, 24);
        let fps: std::collections::HashSet<u64> = sols.iter().map(|s| s.fingerprint()).collect();
        assert_eq!(fps.len(), sols.len(), "duplicate solutions returned");
        let i0_values: std::collections::HashSet<i64> = sols.iter().map(|s| s.value(i0)).collect();
        assert!(i0_values.len() > 1, "sampling is not random");
    }

    #[test]
    fn infeasible_returns_empty() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([2, 3]), VarCategory::Tunable);
        csp.post_in(a, [7, 9]);
        let mut rng = HeronRng::from_seed(0);
        assert!(rand_sat(&csp, &mut rng, 4).is_empty());
    }

    #[test]
    fn validate_rejects_wrong_length_and_values() {
        let (csp, _) = tiling_csp();
        assert!(!validate(&csp, &Solution::new(vec![1, 2])));
        let mut rng = HeronRng::from_seed(3);
        let sols = rand_sat(&csp, &mut rng, 1);
        let s = &sols[0];
        let mut bad = s.values().to_vec();
        bad[1] += 1; // break PROD
        assert!(!validate(&csp, &Solution::new(bad)));
    }

    #[test]
    fn solve_stats_exact_counts_on_trivial_space() {
        // One variable, no constraints: a single dive, no propagation.
        let mut csp = Csp::new();
        csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        let mut rng = HeronRng::from_seed(5);
        let (sols, stats) = rand_sat_traced(&csp, &mut rng, 1, 100, &Tracer::disabled());
        assert_eq!(sols.len(), 1);
        assert_eq!(
            stats,
            SolveStats {
                attempts: 1,
                propagations: 0,
                restarts: 0,
                wipeouts: 0,
                solutions: 1,
            }
        );
    }

    #[test]
    fn solve_stats_exact_counts_with_one_constraint() {
        // `a IN {1}` filters once (changes the domain, re-enqueues itself)
        // and once more at fixpoint: exactly 2 propagations at the root.
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        csp.post_in(a, [1]);
        let mut rng = HeronRng::from_seed(5);
        let (sols, stats) = rand_sat_traced(&csp, &mut rng, 1, 100, &Tracer::disabled());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].value(a), 1);
        assert_eq!(
            stats,
            SolveStats {
                attempts: 1,
                propagations: 2,
                restarts: 0,
                wipeouts: 0,
                solutions: 1,
            }
        );
    }

    #[test]
    fn solve_stats_count_wipeouts_and_restarts() {
        // Infeasible: the root propagation wipes out immediately, no dives.
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([2, 3]), VarCategory::Tunable);
        csp.post_in(a, [7, 9]);
        let mut rng = HeronRng::from_seed(0);
        let (sols, stats) = rand_sat_traced(&csp, &mut rng, 4, 100, &Tracer::disabled());
        assert!(sols.is_empty());
        assert_eq!(
            stats,
            SolveStats {
                attempts: 0,
                propagations: 1,
                restarts: 0,
                wipeouts: 1,
                solutions: 0,
            }
        );

        // A one-solution space asked for two: every extra dive rediscovers
        // the duplicate and counts as a restart (attempt budget = n * 3).
        let mut csp = Csp::new();
        csp.add_var("b", Domain::values([7]), VarCategory::Tunable);
        let mut rng = HeronRng::from_seed(1);
        let (sols, stats) = rand_sat_traced(&csp, &mut rng, 2, 100, &Tracer::disabled());
        assert_eq!(sols.len(), 1);
        assert_eq!(stats.attempts, 6);
        assert_eq!(stats.restarts, 5);
        assert_eq!(stats.solutions, 1);
    }

    #[test]
    fn traced_solve_records_span_and_counters_without_touching_rng() {
        let (csp, _) = tiling_csp();
        let tracer = Tracer::manual();
        let mut rng_a = HeronRng::from_seed(11);
        let mut rng_b = HeronRng::from_seed(11);
        let (traced, stats) = rand_sat_traced(&csp, &mut rng_a, 8, 2_000, &tracer);
        let untraced = rand_sat_with_budget(&csp, &mut rng_b, 8, 2_000);
        assert_eq!(traced, untraced, "tracing must not perturb sampling");
        assert_eq!(tracer.counter("csp.attempts"), Some(stats.attempts));
        assert_eq!(tracer.counter("csp.propagations"), Some(stats.propagations));
        assert_eq!(tracer.counter("csp.solutions"), Some(stats.solutions));
        assert!(stats.propagations > 0);
        let summary = heron_trace::check_trace(&tracer.to_jsonl()).expect("balanced trace");
        assert_eq!(summary.spans.len(), 1);
        assert_eq!(summary.spans[0].name, "csp.solve");
        assert!(summary.spans[0]
            .fields
            .iter()
            .any(|(k, v)| k == "n" && v == "8"));
    }

    #[test]
    fn select_spaces_are_solvable() {
        // Mimics Rule-C4: stage2 length depends on a location parameter.
        let mut csp = Csp::new();
        let l1 = csp.add_const("l1", 4);
        let l2 = csp.add_const("l2", 16);
        let l3 = csp.add_const("l3", 64);
        let loc = csp.add_var("loc", Domain::values([0, 1, 2]), VarCategory::Tunable);
        let len = csp.add_var("len", Domain::range(1, 64), VarCategory::LoopLength);
        csp.post_select(len, loc, vec![l1, l2, l3]);
        let mut rng = HeronRng::from_seed(9);
        let sols = rand_sat(&csp, &mut rng, 16);
        assert!(!sols.is_empty());
        for s in &sols {
            let expected = [4, 16, 64][s.value(loc) as usize];
            assert_eq!(s.value(len), expected);
        }
    }
}
