//! `RandSAT`: randomised constraint satisfaction.
//!
//! The paper's explorer needs two primitives from its CSP solver:
//! *validate* (is a concrete assignment a solution?) and *sample* (return
//! multiple random, valid, concrete assignments). Sampling is implemented
//! as propagation-guided backtracking search with randomised variable and
//! value order, restarted per requested sample.
//!
//! Search state lives in a [`DomainStore`]: branching fixes a value and
//! propagates on the shared store, and backtracking pops the store's
//! trail — O(changes) per node instead of the historical full
//! `Vec<Domain>` clone per candidate trial. The branch order's tunable
//! set is precomputed once per solve as a boolean mask (no per-node
//! `csp.tunables()` allocation, no O(V²) `contains` scans).
//!
//! Solver failure is a first-class outcome, not a silent empty `Vec`:
//! every sampling call returns a [`SolveOutcome`] whose [`SolveStatus`]
//! distinguishes a satisfiable space ([`SolveStatus::Sat`]) from a
//! root-infeasible one ([`SolveStatus::RootInfeasible`]), an exhausted
//! backtracking budget ([`SolveStatus::BudgetExhausted`]) and an exceeded
//! solve deadline ([`SolveStatus::DeadlineExceeded`]). Callers must match
//! on the status — the explorer uses it to drive offspring repair and
//! graceful degradation instead of silently shrinking generations.

use heron_rng::Rng;
use heron_rng::SliceRandom;
use heron_trace::Tracer;

use crate::domain::Domain;
use crate::problem::{Csp, Solution, VarRef};
use crate::propagate::Propagator;
use crate::store::{Dom, DomainStore};

/// Counters describing one [`rand_sat_traced`] call.
///
/// All counts are exact and deterministic for a fixed `(csp, seed, n,
/// policy)` tuple, which is what the exact-count unit tests pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Randomised backtracking dives started (including the ones that
    /// found a duplicate or nothing).
    pub attempts: u64,
    /// Single-constraint filtering passes executed, root propagation
    /// included (for session solves the root fixpoint is one-time setup
    /// and is excluded — see `SolveSession`).
    pub propagations: u64,
    /// Dives that ended without contributing a new solution — either the
    /// budget ran out or the result duplicated an earlier sample — and
    /// therefore restarted the search from the root.
    pub restarts: u64,
    /// Domain wipeouts (infeasibility proofs) hit during propagation.
    pub wipeouts: u64,
    /// Distinct solutions returned.
    pub solutions: u64,
    /// Budget-escalation rounds taken: each multiplies the per-sample
    /// backtracking budget by [`SolvePolicy::escalation_factor`] after a
    /// round that produced zero solutions on a root-feasible space.
    pub escalations: u64,
    /// Deepest trail (undo-stack) length reached while backtracking.
    pub max_trail_depth: u64,
    /// Solves served incrementally from a session's cached root fixpoint
    /// (1 for a `SolveSession::solve_pinned` call, 0 otherwise).
    pub incremental_hits: u64,
}

impl SolveStats {
    /// Accumulates another call's counters into this one. The tuner's
    /// search log uses this to aggregate per-round solver pressure
    /// across the populate / evolve / fallback solve calls of a round.
    /// `max_trail_depth` aggregates as a maximum, everything else sums.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.attempts += other.attempts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.wipeouts += other.wipeouts;
        self.solutions += other.solutions;
        self.escalations += other.escalations;
        self.max_trail_depth = self.max_trail_depth.max(other.max_trail_depth);
        self.incremental_hits += other.incremental_hits;
    }
}

/// Classification of one sampling call — the solver's answer is never a
/// bare (possibly empty) solution list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// At least one solution was materialised (or zero were requested).
    Sat,
    /// Root propagation wiped out a domain: the CSP has *no* solutions,
    /// proven before any search. [`crate::diagnose::diagnose_root_conflict`]
    /// can name a culpable constraint subset.
    RootInfeasible,
    /// The space may be satisfiable, but every dive exhausted its
    /// backtracking budget (after any escalation rounds) without finding a
    /// solution.
    BudgetExhausted,
    /// The step deadline ([`SolvePolicy::deadline_steps`]) ran out before
    /// the requested samples materialised. Any solutions found before the
    /// deadline are still carried in [`SolveOutcome::solutions`].
    DeadlineExceeded,
}

impl SolveStatus {
    /// Short stable tag, used in traces and error counters.
    pub fn tag(&self) -> &'static str {
        match self {
            SolveStatus::Sat => "sat",
            SolveStatus::RootInfeasible => "root-infeasible",
            SolveStatus::BudgetExhausted => "budget-exhausted",
            SolveStatus::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Solve-effort policy: per-sample backtracking budget, the geometric
/// budget-escalation restart schedule, and an optional deterministic step
/// deadline.
///
/// The deadline counts *candidate-value trials* (branch decisions), not
/// wall-clock time, so same-seed runs remain byte-identical on any
/// machine; it is a deterministic proxy for a wall deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolvePolicy {
    /// Initial per-sample backtracking budget (counted in failures).
    pub budget: u32,
    /// Extra rounds allowed after a zero-solution round on a feasible
    /// root; each multiplies the budget by `escalation_factor`.
    pub max_escalations: u32,
    /// Geometric budget growth per escalation round.
    pub escalation_factor: u32,
    /// Hard ceiling on the escalated budget.
    pub budget_cap: u32,
    /// Maximum branch decisions for the whole call; `0` disables the
    /// deadline.
    pub deadline_steps: u64,
}

impl Default for SolvePolicy {
    fn default() -> Self {
        SolvePolicy {
            budget: 2_000,
            max_escalations: 2,
            escalation_factor: 4,
            budget_cap: 32_000,
            deadline_steps: 0,
        }
    }
}

impl SolvePolicy {
    /// A fixed-budget policy with no escalation and no deadline — the
    /// behaviour of the historical `rand_sat_with_budget` contract.
    pub fn fixed(budget: u32) -> Self {
        SolvePolicy {
            budget,
            max_escalations: 0,
            escalation_factor: 1,
            budget_cap: budget,
            deadline_steps: 0,
        }
    }

    /// Sets the step deadline (`0` disables it).
    pub fn with_deadline(mut self, steps: u64) -> Self {
        self.deadline_steps = steps;
        self
    }

    /// Sets the initial budget, keeping the escalation schedule.
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self.budget_cap = self.budget_cap.max(budget);
        self
    }
}

/// The full result of one sampling call: classification, the solutions
/// materialised (possibly fewer than requested), and exact counters.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// What happened.
    pub status: SolveStatus,
    /// Distinct solutions found, in discovery order.
    pub solutions: Vec<Solution>,
    /// Exact deterministic counters for this call.
    pub stats: SolveStats,
}

impl SolveOutcome {
    /// `true` iff the call is classified [`SolveStatus::Sat`].
    pub fn is_sat(&self) -> bool {
        self.status == SolveStatus::Sat
    }

    /// Unwraps the solutions, panicking with `ctx` and the status if the
    /// call was not `Sat`. For tests, benches and pipeline stages where a
    /// non-`Sat` outcome is a bug, never an expected condition.
    #[track_caller]
    pub fn expect_sat(self, ctx: &str) -> Vec<Solution> {
        assert!(
            self.status == SolveStatus::Sat,
            "{ctx}: solver returned `{}` with {} solution(s)",
            self.status,
            self.solutions.len()
        );
        self.solutions
    }

    /// First solution, if any — for single-sample decode paths that handle
    /// absence explicitly via `Option`.
    pub fn one(self) -> Option<Solution> {
        self.solutions.into_iter().next()
    }
}

/// Deterministic step deadline threaded through the dives.
pub(crate) struct Deadline {
    remaining: u64,
    enabled: bool,
    pub(crate) hit: bool,
}

impl Deadline {
    pub(crate) fn new(steps: u64) -> Self {
        Deadline {
            remaining: steps,
            enabled: steps > 0,
            hit: false,
        }
    }

    /// Consumes one branch decision; returns `false` once exhausted.
    fn tick(&mut self) -> bool {
        if !self.enabled {
            return true;
        }
        if self.remaining == 0 {
            self.hit = true;
            return false;
        }
        self.remaining -= 1;
        true
    }
}

/// Checks a complete assignment against every declared domain and every
/// posted constraint.
pub fn validate(csp: &Csp, sol: &Solution) -> bool {
    if sol.values().len() != csp.num_vars() {
        return false;
    }
    for (r, decl) in csp.vars() {
        if !decl.domain.contains(sol.value(r)) {
            return false;
        }
    }
    let env = |r: VarRef| sol.value(r);
    csp.constraints().iter().all(|c| c.check(&env))
}

/// Draws up to `n` *distinct* random solutions of `csp` under the default
/// [`SolvePolicy`] (budget 2 000, two 4× escalation rounds, no deadline).
///
/// The returned [`SolveOutcome`] classifies the result; an empty solution
/// list always comes with a non-`Sat` status explaining why.
pub fn rand_sat<R: Rng>(csp: &Csp, rng: &mut R, n: usize) -> SolveOutcome {
    rand_sat_policy(csp, rng, n, &SolvePolicy::default())
}

/// [`rand_sat`] with an explicit fixed per-sample backtracking budget and
/// no escalation (see [`SolvePolicy::fixed`]).
pub fn rand_sat_with_budget<R: Rng>(csp: &Csp, rng: &mut R, n: usize, budget: u32) -> SolveOutcome {
    rand_sat_policy(csp, rng, n, &SolvePolicy::fixed(budget))
}

/// [`rand_sat_traced`] without a tracer.
pub fn rand_sat_policy<R: Rng>(
    csp: &Csp,
    rng: &mut R,
    n: usize,
    policy: &SolvePolicy,
) -> SolveOutcome {
    rand_sat_traced(csp, rng, n, policy, &Tracer::disabled())
}

/// The canonical sampling entry point: applies the full [`SolvePolicy`]
/// (budget, escalation, deadline), reports exact solver counters and
/// records them on `tracer` (span `csp.solve`, counters `csp.*`). The
/// tracer never touches `rng`, so traced and untraced runs draw identical
/// samples.
pub fn rand_sat_traced<R: Rng>(
    csp: &Csp,
    rng: &mut R,
    n: usize,
    policy: &SolvePolicy,
    tracer: &Tracer,
) -> SolveOutcome {
    let span = tracer.span_with("csp.solve", || {
        [
            ("n", n.to_string()),
            ("budget", policy.budget.to_string()),
            ("vars", csp.num_vars().to_string()),
        ]
    });
    let mut stats = SolveStats::default();
    let prop = Propagator::new(csp);
    let mut store = prop.store();
    let root_ok = prop.run_all(&mut store).is_ok();
    let mut out = Vec::with_capacity(n);
    let mut deadline = Deadline::new(policy.deadline_steps);
    if root_ok && n > 0 {
        store.commit();
        // Permanently retire constraints already entailed at the root —
        // a free (uncounted, fixpoint-preserving) bounds sweep.
        prop.sweep_entailed(&mut store);
        let tunables = csp.tunables();
        let mut tmask = vec![false; csp.num_vars()];
        for t in &tunables {
            tmask[t.0] = true;
        }
        let ctx = SampleCtx {
            csp,
            prop: &prop,
            tunables: &tunables,
            tmask: &tmask,
        };
        sample_into(
            &ctx,
            &mut store,
            rng,
            n,
            policy,
            &mut deadline,
            &mut stats,
            &mut out,
        );
    }
    stats.propagations = prop.propagations();
    stats.wipeouts = prop.wipeouts();
    stats.solutions = out.len() as u64;
    stats.max_trail_depth = store.take_max_trail();
    let status = classify(root_ok, &deadline, &out, n);
    record(tracer, &stats, status);
    drop(span);
    SolveOutcome {
        status,
        solutions: out,
        stats,
    }
}

/// Maps the terminal solver state to a [`SolveStatus`].
pub(crate) fn classify(
    root_ok: bool,
    deadline: &Deadline,
    out: &[Solution],
    n: usize,
) -> SolveStatus {
    if !root_ok {
        SolveStatus::RootInfeasible
    } else if deadline.hit {
        SolveStatus::DeadlineExceeded
    } else if out.is_empty() && n > 0 {
        SolveStatus::BudgetExhausted
    } else {
        SolveStatus::Sat
    }
}

/// Emits the per-call counters shared by every sampling entry point.
pub(crate) fn record(tracer: &Tracer, stats: &SolveStats, status: SolveStatus) {
    tracer.counter_add("csp.attempts", stats.attempts);
    tracer.counter_add("csp.propagations", stats.propagations);
    tracer.counter_add("csp.restarts", stats.restarts);
    tracer.counter_add("csp.wipeouts", stats.wipeouts);
    tracer.counter_add("csp.solutions", stats.solutions);
    tracer.counter_add("csp.escalations", stats.escalations);
    if status == SolveStatus::DeadlineExceeded {
        tracer.counter_add("csp.deadline_exceeded", 1);
    }
    if status == SolveStatus::RootInfeasible {
        tracer.counter_add("csp.root_infeasible", 1);
    }
}

/// Everything a dive needs besides the mutable store: the problem (for
/// leaf validation), the shared propagator, and the branch-order inputs
/// precomputed once per solve (satellite of the O(V²) order-building and
/// per-node `csp.tunables()` bugs).
pub(crate) struct SampleCtx<'a> {
    pub csp: &'a Csp,
    pub prop: &'a Propagator,
    pub tunables: &'a [VarRef],
    pub tmask: &'a [bool],
}

/// The sampling loop shared by [`rand_sat_traced`] and `SolveSession`:
/// draws up to `n` distinct solutions on `store` (which must hold a
/// committed root fixpoint), applying the attempt/escalation schedule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sample_into<R: Rng>(
    ctx: &SampleCtx<'_>,
    store: &mut DomainStore,
    rng: &mut R,
    n: usize,
    policy: &SolvePolicy,
    deadline: &mut Deadline,
    stats: &mut SolveStats,
    out: &mut Vec<Solution>,
) {
    let mut seen = std::collections::HashSet::new();
    let mut budget = policy.budget;
    let mut escalation = 0u32;
    loop {
        // Give each requested sample a few attempts before giving up,
        // so that a handful of unlucky random walks does not starve
        // the population.
        let mut attempts = n * 3;
        while out.len() < n && attempts > 0 && !deadline.hit {
            attempts -= 1;
            stats.attempts += 1;
            let mut fails = budget;
            let found = match search_one(ctx, store, rng, &mut fails, deadline) {
                Some(sol) => {
                    debug_assert!(
                        validate(ctx.csp, &sol),
                        "search produced an invalid solution"
                    );
                    if seen.insert(sol.fingerprint()) {
                        out.push(sol);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if !found {
                stats.restarts += 1;
            }
        }
        // Budget escalation: a zero-solution round on a feasible root
        // retries the whole round with a geometrically larger budget,
        // up to the cap — the restart policy for knife-edge spaces
        // whose only solutions hide behind deep backtracking.
        if !out.is_empty()
            || deadline.hit
            || escalation >= policy.max_escalations
            || budget >= policy.budget_cap
        {
            break;
        }
        escalation += 1;
        stats.escalations += 1;
        budget = budget
            .max(1)
            .saturating_mul(policy.escalation_factor.max(1))
            .min(policy.budget_cap.max(1));
    }
}

/// One randomised dive with chronological backtracking on the store's
/// trail. The store is returned to its pre-call state regardless of the
/// result.
fn search_one<R: Rng>(
    ctx: &SampleCtx<'_>,
    store: &mut DomainStore,
    rng: &mut R,
    fails: &mut u32,
    deadline: &mut Deadline,
) -> Option<Solution> {
    // Branch order: tunables in random order, then everything else in
    // declaration order (those are functionally determined in well-formed
    // Heron spaces, so they rarely need branching).
    let mut order: Vec<VarRef> = ctx.tunables.to_vec();
    order.shuffle(rng);
    for i in 0..ctx.csp.num_vars() {
        if !ctx.tmask[i] {
            order.push(VarRef(i));
        }
    }
    let top = store.mark();
    let sol = dive(ctx, store, &order, 0, rng, fails, deadline);
    store.undo_to(top);
    sol
}

fn dive<R: Rng>(
    ctx: &SampleCtx<'_>,
    store: &mut DomainStore,
    order: &[VarRef],
    depth: usize,
    rng: &mut R,
    fails: &mut u32,
    deadline: &mut Deadline,
) -> Option<Solution> {
    // Find the next unfixed variable at or after `depth`.
    let mut d = depth;
    while d < order.len() && store.is_fixed(order[d].0) {
        d += 1;
    }
    if d == order.len() {
        // Propagation is deliberately incomplete (bounds consistency), so a
        // fully fixed assignment must still pass the exact check.
        let values: Vec<i64> = (0..ctx.csp.num_vars()).map(|i| store.min(i)).collect();
        let sol = Solution::new(values);
        if validate(ctx.csp, &sol) {
            return Some(sol);
        }
        *fails = fails.saturating_sub(1);
        return None;
    }
    let var = order[d];
    let is_tunable = ctx.tmask[var.0];
    let candidates: Vec<i64> = match store.dom(var.0) {
        Dom::Bits(_) => {
            let mut v = store.value_list(var.0);
            v.shuffle(rng);
            v
        }
        Dom::Wide(Domain::Values(vals)) => {
            let mut v = vals.clone();
            v.shuffle(rng);
            v
        }
        Dom::Wide(Domain::Range { lo, hi }) => {
            // Auxiliary range variable still unfixed: try the bounds and a
            // random value. Occurs only for slack-like variables. The
            // random draw joins the candidate list only when it is a
            // genuinely new value (the historical adjacent-only `dedup`
            // let `random == lo` through as a duplicate trial).
            let (lo, hi) = (*lo, *hi);
            if hi > lo {
                let mut v = vec![lo, hi];
                let r = rng.random_range(lo..=hi);
                if r != lo && r != hi {
                    v.push(r);
                }
                v
            } else {
                vec![lo]
            }
        }
    };
    let try_limit = if is_tunable {
        candidates.len()
    } else {
        candidates.len().min(4)
    };
    for &val in candidates.iter().take(try_limit) {
        if *fails == 0 {
            return None;
        }
        if !deadline.tick() {
            return None;
        }
        let m = store.mark();
        let (pre_lo, pre_hi) = (store.min(var.0), store.max(var.0));
        if store.fix(var.0, val).is_ok()
            && ctx.prop.run_from_fixed(store, var, pre_lo, pre_hi).is_ok()
        {
            if let Some(sol) = dive(ctx, store, order, d + 1, rng, fails, deadline) {
                // No undo on success: the top-level mark unwinds the
                // whole branch in one pass.
                return Some(sol);
            }
        }
        store.undo_to(m);
        *fails = fails.saturating_sub(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarCategory;
    use heron_rng::HeronRng;

    /// A miniature tiling space: i0 * i1 * i2 == 64, i1 * i2 <= 32,
    /// vec ∈ {1,2,4,8}, vec <= i2.
    fn tiling_csp() -> (Csp, [VarRef; 4]) {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 64);
        let i0 = csp.add_var("i0", Domain::divisors_of(64), VarCategory::Tunable);
        let i1 = csp.add_var("i1", Domain::divisors_of(64), VarCategory::Tunable);
        let i2 = csp.add_var("i2", Domain::divisors_of(64), VarCategory::Tunable);
        csp.post_prod(n, vec![i0, i1, i2]);
        let inner = csp.add_var("inner", Domain::range(1, 4096), VarCategory::Other);
        csp.post_prod(inner, vec![i1, i2]);
        let cap = csp.add_const("cap", 32);
        csp.post_le(inner, cap);
        let vec = csp.add_var("vec", Domain::values([1, 2, 4, 8]), VarCategory::Tunable);
        csp.post_le(vec, i2);
        (csp, [i0, i1, i2, vec])
    }

    #[test]
    fn solutions_satisfy_all_constraints() {
        let (csp, [i0, i1, i2, vec]) = tiling_csp();
        let mut rng = HeronRng::from_seed(42);
        let sols = rand_sat(&csp, &mut rng, 32).expect_sat("tiling space");
        assert!(
            sols.len() >= 16,
            "expected many solutions, got {}",
            sols.len()
        );
        for s in &sols {
            assert!(validate(&csp, s));
            assert_eq!(s.value(i0) * s.value(i1) * s.value(i2), 64);
            assert!(s.value(i1) * s.value(i2) <= 32);
            assert!(s.value(vec) <= s.value(i2));
        }
    }

    #[test]
    fn solutions_are_distinct_and_diverse() {
        let (csp, [i0, ..]) = tiling_csp();
        let mut rng = HeronRng::from_seed(1);
        let sols = rand_sat(&csp, &mut rng, 24).expect_sat("tiling space");
        let fps: std::collections::HashSet<u64> = sols.iter().map(|s| s.fingerprint()).collect();
        assert_eq!(fps.len(), sols.len(), "duplicate solutions returned");
        let i0_values: std::collections::HashSet<i64> = sols.iter().map(|s| s.value(i0)).collect();
        assert!(i0_values.len() > 1, "sampling is not random");
    }

    #[test]
    fn infeasible_is_classified_root_infeasible() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([2, 3]), VarCategory::Tunable);
        csp.post_in(a, [7, 9]);
        let mut rng = HeronRng::from_seed(0);
        let outcome = rand_sat(&csp, &mut rng, 4);
        assert_eq!(outcome.status, SolveStatus::RootInfeasible);
        assert!(outcome.solutions.is_empty());
        assert!(!outcome.is_sat());
        // Escalation never fires on a proven-infeasible root.
        assert_eq!(outcome.stats.escalations, 0);
    }

    #[test]
    #[should_panic(expected = "root-infeasible")]
    fn expect_sat_panics_with_context_on_failure() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([2, 3]), VarCategory::Tunable);
        csp.post_in(a, [7, 9]);
        let mut rng = HeronRng::from_seed(0);
        rand_sat(&csp, &mut rng, 4).expect_sat("unit test");
    }

    #[test]
    fn validate_rejects_wrong_length_and_values() {
        let (csp, _) = tiling_csp();
        assert!(!validate(&csp, &Solution::new(vec![1, 2])));
        let mut rng = HeronRng::from_seed(3);
        let sols = rand_sat(&csp, &mut rng, 1).expect_sat("tiling space");
        let s = &sols[0];
        let mut bad = s.values().to_vec();
        bad[1] += 1; // break PROD
        assert!(!validate(&csp, &Solution::new(bad)));
    }

    #[test]
    fn solve_stats_exact_counts_on_trivial_space() {
        // One variable, no constraints: a single dive, no propagation,
        // exactly one trailed write (the branched variable).
        let mut csp = Csp::new();
        csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        let mut rng = HeronRng::from_seed(5);
        let outcome = rand_sat_policy(&csp, &mut rng, 1, &SolvePolicy::fixed(100));
        assert_eq!(outcome.status, SolveStatus::Sat);
        assert_eq!(outcome.solutions.len(), 1);
        assert_eq!(
            outcome.stats,
            SolveStats {
                attempts: 1,
                propagations: 0,
                restarts: 0,
                wipeouts: 0,
                solutions: 1,
                escalations: 0,
                max_trail_depth: 1,
                incremental_hits: 0,
            }
        );
    }

    #[test]
    fn solve_stats_exact_counts_with_one_constraint() {
        // `a IN {1}` filters once and is then entailed (dormant): exactly
        // 1 propagation at the root, and the dive finds everything fixed
        // (no trail).
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([1, 2]), VarCategory::Tunable);
        csp.post_in(a, [1]);
        let mut rng = HeronRng::from_seed(5);
        let outcome = rand_sat_policy(&csp, &mut rng, 1, &SolvePolicy::fixed(100));
        assert_eq!(outcome.solutions.len(), 1);
        assert_eq!(outcome.solutions[0].value(a), 1);
        assert_eq!(
            outcome.stats,
            SolveStats {
                attempts: 1,
                propagations: 1,
                restarts: 0,
                wipeouts: 0,
                solutions: 1,
                escalations: 0,
                max_trail_depth: 0,
                incremental_hits: 0,
            }
        );
    }

    #[test]
    fn solve_stats_count_wipeouts_and_restarts() {
        // Infeasible: the root propagation wipes out immediately, no dives.
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([2, 3]), VarCategory::Tunable);
        csp.post_in(a, [7, 9]);
        let mut rng = HeronRng::from_seed(0);
        let outcome = rand_sat_policy(&csp, &mut rng, 4, &SolvePolicy::fixed(100));
        assert_eq!(outcome.status, SolveStatus::RootInfeasible);
        assert!(outcome.solutions.is_empty());
        assert_eq!(
            outcome.stats,
            SolveStats {
                attempts: 0,
                propagations: 1,
                restarts: 0,
                wipeouts: 1,
                solutions: 0,
                escalations: 0,
                max_trail_depth: 0,
                incremental_hits: 0,
            }
        );

        // A one-solution space asked for two: every extra dive rediscovers
        // the duplicate and counts as a restart (attempt budget = n * 3).
        let mut csp = Csp::new();
        csp.add_var("b", Domain::values([7]), VarCategory::Tunable);
        let mut rng = HeronRng::from_seed(1);
        let outcome = rand_sat_policy(&csp, &mut rng, 2, &SolvePolicy::fixed(100));
        assert_eq!(outcome.status, SolveStatus::Sat);
        assert_eq!(outcome.solutions.len(), 1);
        assert_eq!(outcome.stats.attempts, 6);
        assert_eq!(outcome.stats.restarts, 5);
        assert_eq!(outcome.stats.solutions, 1);
    }

    #[test]
    fn zero_budget_is_budget_exhausted_and_escalation_recovers() {
        // With a zero backtracking budget no dive can fix a value, so the
        // feasible space classifies as BudgetExhausted…
        let (csp, _) = tiling_csp();
        let mut rng = HeronRng::from_seed(2);
        let starved = rand_sat_policy(&csp, &mut rng, 4, &SolvePolicy::fixed(0));
        assert_eq!(starved.status, SolveStatus::BudgetExhausted);
        assert!(starved.solutions.is_empty());
        assert_eq!(starved.stats.escalations, 0);

        // …and the escalation schedule recovers from a starvation budget
        // by geometric restarts (0 → 4 → 16 → 64 → 256 here).
        let mut rng = HeronRng::from_seed(2);
        let policy = SolvePolicy {
            budget: 0,
            max_escalations: 4,
            escalation_factor: 4,
            budget_cap: 1_000,
            deadline_steps: 0,
        };
        let escalated = rand_sat_policy(&csp, &mut rng, 4, &policy);
        assert_eq!(escalated.status, SolveStatus::Sat);
        assert!(escalated.stats.escalations >= 1);
        assert!(!escalated.solutions.is_empty());
    }

    #[test]
    fn deadline_exceeded_is_classified_and_deterministic() {
        let (csp, _) = tiling_csp();
        // One branch decision is never enough to fix every tunable.
        let policy = SolvePolicy::default().with_deadline(1);
        let run = |seed: u64| {
            let mut rng = HeronRng::from_seed(seed);
            rand_sat_policy(&csp, &mut rng, 8, &policy)
        };
        let a = run(3);
        assert_eq!(a.status, SolveStatus::DeadlineExceeded);
        assert!(a.solutions.is_empty());
        let b = run(3);
        assert_eq!(a.stats, b.stats, "same-seed deadline runs diverged");

        // A generous deadline changes nothing: still Sat.
        let generous = SolvePolicy::default().with_deadline(1_000_000);
        let mut rng = HeronRng::from_seed(3);
        let ok = rand_sat_policy(&csp, &mut rng, 8, &generous);
        assert_eq!(ok.status, SolveStatus::Sat);
        assert_eq!(ok.solutions.len(), 8);
    }

    #[test]
    fn deadline_keeps_partial_solutions() {
        let (csp, _) = tiling_csp();
        // Binary-search the smallest deadline that still yields all 8
        // samples (step consumption is deterministic and monotone in the
        // deadline for a fixed seed), then run just under it: the
        // truncated call must classify DeadlineExceeded and carry fewer
        // than 8 solutions — without discarding the ones it found.
        let run = |deadline: u64| {
            let mut rng = HeronRng::from_seed(9);
            rand_sat_policy(
                &csp,
                &mut rng,
                8,
                &SolvePolicy::default().with_deadline(deadline),
            )
        };
        assert_eq!(run(1_000_000).status, SolveStatus::Sat);
        let (mut lo, mut hi) = (1u64, 1_000_000u64);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if run(mid).status == SolveStatus::Sat {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        assert!(hi > 2, "tiling space cannot be solved in two steps");
        let cut = run(hi - 1);
        assert_eq!(cut.status, SolveStatus::DeadlineExceeded);
        assert!(cut.solutions.len() < 8);
    }

    #[test]
    fn traced_solve_records_span_and_counters_without_touching_rng() {
        let (csp, _) = tiling_csp();
        let tracer = Tracer::manual();
        let mut rng_a = HeronRng::from_seed(11);
        let mut rng_b = HeronRng::from_seed(11);
        let policy = SolvePolicy::fixed(2_000);
        let traced = rand_sat_traced(&csp, &mut rng_a, 8, &policy, &tracer);
        let untraced = rand_sat_with_budget(&csp, &mut rng_b, 8, 2_000);
        assert_eq!(
            traced.solutions, untraced.solutions,
            "tracing must not perturb sampling"
        );
        assert_eq!(traced.status, untraced.status);
        let stats = traced.stats;
        assert_eq!(tracer.counter("csp.attempts"), Some(stats.attempts));
        assert_eq!(tracer.counter("csp.propagations"), Some(stats.propagations));
        assert_eq!(tracer.counter("csp.solutions"), Some(stats.solutions));
        assert_eq!(tracer.counter("csp.escalations"), Some(0));
        assert!(stats.propagations > 0);
        assert!(stats.max_trail_depth > 0, "dives must exercise the trail");
        let summary = heron_trace::check_trace(&tracer.to_jsonl()).expect("balanced trace");
        assert_eq!(summary.spans.len(), 1);
        assert_eq!(summary.spans[0].name, "csp.solve");
        assert!(summary.spans[0]
            .fields
            .iter()
            .any(|(k, v)| k == "n" && v == "8"));
    }

    #[test]
    fn select_spaces_are_solvable() {
        // Mimics Rule-C4: stage2 length depends on a location parameter.
        let mut csp = Csp::new();
        let l1 = csp.add_const("l1", 4);
        let l2 = csp.add_const("l2", 16);
        let l3 = csp.add_const("l3", 64);
        let loc = csp.add_var("loc", Domain::values([0, 1, 2]), VarCategory::Tunable);
        let len = csp.add_var("len", Domain::range(1, 64), VarCategory::LoopLength);
        csp.post_select(len, loc, vec![l1, l2, l3]);
        let mut rng = HeronRng::from_seed(9);
        let sols = rand_sat(&csp, &mut rng, 16).expect_sat("select space");
        assert!(!sols.is_empty());
        for s in &sols {
            let expected = [4, 16, 64][s.value(loc) as usize];
            assert_eq!(s.value(len), expected);
        }
    }
}
