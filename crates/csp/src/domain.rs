//! Finite integer domains with explicit value sets or intervals.
//!
//! Decision variables (tile factors, locations, vector lengths) have small
//! explicit value sets; auxiliary variables produced by PROD/SUM rules
//! (memory footprints, totals) have potentially huge ranges and are kept as
//! intervals with bounds propagation. All Heron variables are non-negative.

use std::fmt;

/// A set of possible values for one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Explicit, sorted, deduplicated value set (always non-empty unless
    /// wiped out by propagation).
    Values(Vec<i64>),
    /// Contiguous inclusive interval `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

// Propagation-internal methods signal a domain wipeout with `Err(())`; the
// caller (the propagator) maps it to its own `Infeasible` error, so a
// dedicated error type here would be pure ceremony.
#[allow(clippy::result_unit_err)]
impl Domain {
    /// Explicit value set.
    ///
    /// # Panics
    /// Panics if the iterator is empty or contains negative values.
    pub fn values(values: impl IntoIterator<Item = i64>) -> Self {
        let mut v: Vec<i64> = values.into_iter().collect();
        assert!(!v.is_empty(), "domain must be non-empty");
        v.sort_unstable();
        v.dedup();
        assert!(v[0] >= 0, "Heron domains are non-negative");
        Domain::Values(v)
    }

    /// Interval domain `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `lo < 0`.
    pub fn range(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty range domain [{lo}, {hi}]");
        assert!(lo >= 0, "Heron domains are non-negative");
        Domain::Range { lo, hi }
    }

    /// Singleton domain.
    pub fn singleton(v: i64) -> Self {
        Domain::values([v])
    }

    /// Domain of all positive divisors of `n`, the natural domain of a tile
    /// factor.
    ///
    /// ```
    /// use heron_csp::Domain;
    /// assert_eq!(Domain::divisors_of(12).iter_values().count(), 6);
    /// ```
    pub fn divisors_of(n: i64) -> Self {
        assert!(n >= 1, "divisors_of requires n >= 1");
        let mut v = Vec::new();
        let mut d = 1;
        while d * d <= n {
            if n % d == 0 {
                v.push(d);
                if d != n / d {
                    v.push(n / d);
                }
            }
            d += 1;
        }
        Domain::values(v)
    }

    /// Boolean domain `{0, 1}`.
    pub fn boolean() -> Self {
        Domain::values([0, 1])
    }

    /// Smallest value in the domain.
    pub fn min(&self) -> i64 {
        match self {
            Domain::Values(v) => v[0],
            Domain::Range { lo, .. } => *lo,
        }
    }

    /// Largest value in the domain.
    pub fn max(&self) -> i64 {
        match self {
            Domain::Values(v) => *v.last().expect("non-empty"),
            Domain::Range { hi, .. } => *hi,
        }
    }

    /// Number of values (saturating for large ranges).
    pub fn size(&self) -> u64 {
        match self {
            Domain::Values(v) => v.len() as u64,
            Domain::Range { lo, hi } => (hi - lo + 1) as u64,
        }
    }

    /// Whether the domain contains exactly one value.
    pub fn is_fixed(&self) -> bool {
        self.size() == 1
    }

    /// The single value, if fixed.
    pub fn fixed_value(&self) -> Option<i64> {
        if self.is_fixed() {
            Some(self.min())
        } else {
            None
        }
    }

    /// Membership test.
    pub fn contains(&self, v: i64) -> bool {
        match self {
            Domain::Values(vals) => vals.binary_search(&v).is_ok(),
            Domain::Range { lo, hi } => v >= *lo && v <= *hi,
        }
    }

    /// Iterator over the explicit values.
    ///
    /// # Panics
    /// Panics on a `Range` domain wider than 2^20 values — call sites
    /// should only enumerate decision domains, which are always small.
    pub fn iter_values(&self) -> Box<dyn Iterator<Item = i64> + '_> {
        match self {
            Domain::Values(v) => Box::new(v.iter().copied()),
            Domain::Range { lo, hi } => {
                assert!(hi - lo < (1 << 20), "refusing to enumerate a huge range");
                Box::new(*lo..=*hi)
            }
        }
    }

    /// Restricts to values `>= bound`. Returns `Ok(changed)` or `Err(())` if
    /// the domain would become empty.
    pub fn restrict_min(&mut self, bound: i64) -> Result<bool, ()> {
        match self {
            Domain::Values(v) => {
                let before = v.len();
                v.retain(|&x| x >= bound);
                if v.is_empty() {
                    return Err(());
                }
                Ok(v.len() != before)
            }
            Domain::Range { lo, hi } => {
                if bound > *hi {
                    return Err(());
                }
                if bound > *lo {
                    *lo = bound;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Restricts to values `<= bound`.
    pub fn restrict_max(&mut self, bound: i64) -> Result<bool, ()> {
        match self {
            Domain::Values(v) => {
                let before = v.len();
                v.retain(|&x| x <= bound);
                if v.is_empty() {
                    return Err(());
                }
                Ok(v.len() != before)
            }
            Domain::Range { lo, hi } => {
                if bound < *lo {
                    return Err(());
                }
                if bound < *hi {
                    *hi = bound;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Restricts to the given sorted candidate set.
    pub fn restrict_to(&mut self, candidates: &[i64]) -> Result<bool, ()> {
        match self {
            Domain::Values(v) => {
                let before = v.len();
                v.retain(|x| candidates.binary_search(x).is_ok());
                if v.is_empty() {
                    return Err(());
                }
                Ok(v.len() != before)
            }
            Domain::Range { lo, hi } => {
                let kept: Vec<i64> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| c >= *lo && c <= *hi)
                    .collect();
                if kept.is_empty() {
                    return Err(());
                }
                let changed = kept.len() as u64 != self.size();
                *self = Domain::Values(kept);
                Ok(changed)
            }
        }
    }

    /// Fixes the domain to a single value.
    pub fn fix(&mut self, v: i64) -> Result<bool, ()> {
        if !self.contains(v) {
            return Err(());
        }
        let changed = !self.is_fixed();
        *self = Domain::Values(vec![v]);
        Ok(changed)
    }

    /// Intersects with another domain.
    pub fn intersect(&mut self, other: &Domain) -> Result<bool, ()> {
        match other {
            Domain::Values(vals) => self.restrict_to(vals),
            Domain::Range { lo, hi } => {
                let a = self.restrict_min(*lo)?;
                let b = self.restrict_max(*hi)?;
                Ok(a || b)
            }
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Values(v) if v.len() <= 8 => write!(f, "{v:?}"),
            Domain::Values(v) => {
                write!(
                    f,
                    "{{{}, …, {}}} ({} values)",
                    v[0],
                    v[v.len() - 1],
                    v.len()
                )
            }
            Domain::Range { lo, hi } => write!(f, "[{lo}, {hi}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors() {
        let d = Domain::divisors_of(16);
        assert_eq!(d.iter_values().collect::<Vec<_>>(), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn restrict_bounds_on_values() {
        let mut d = Domain::values([1, 2, 4, 8, 16]);
        assert_eq!(d.restrict_min(3), Ok(true));
        assert_eq!(d.restrict_max(8), Ok(true));
        assert_eq!(d.iter_values().collect::<Vec<_>>(), vec![4, 8]);
        assert!(d.restrict_min(100).is_err());
    }

    #[test]
    fn restrict_bounds_on_range() {
        let mut d = Domain::range(0, 100);
        assert_eq!(d.restrict_min(10), Ok(true));
        assert_eq!(d.restrict_max(20), Ok(true));
        assert_eq!(d, Domain::range(10, 20));
        assert_eq!(d.size(), 11);
    }

    #[test]
    fn restrict_to_candidates_converts_range() {
        let mut d = Domain::range(0, 100);
        assert_eq!(d.restrict_to(&[5, 50, 500]), Ok(true));
        assert_eq!(d, Domain::values([5, 50]));
    }

    #[test]
    fn intersect_values_with_range() {
        let mut d = Domain::values([1, 4, 9, 16]);
        assert_eq!(d.intersect(&Domain::range(2, 10)), Ok(true));
        assert_eq!(d, Domain::values([4, 9]));
    }

    #[test]
    fn fix_and_fixed_value() {
        let mut d = Domain::values([2, 3, 5]);
        assert!(!d.is_fixed());
        assert_eq!(d.fix(3), Ok(true));
        assert_eq!(d.fixed_value(), Some(3));
        assert!(d.fix(5).is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Domain::range(1, 9).to_string(), "[1, 9]");
        assert_eq!(Domain::values([1, 2]).to_string(), "[1, 2]");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_values_panics() {
        Domain::values(std::iter::empty());
    }
}
