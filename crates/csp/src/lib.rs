//! Finite-domain constraint satisfaction problems for Heron.
//!
//! This crate replaces the paper's use of Google or-tools: it provides
//! exactly what the Heron pipeline needs — declaring integer variables,
//! posting the six constraint types of Table 7 (PROD, SUM, EQ, LE, IN,
//! SELECT), checking assignments for validity, and *randomised constraint
//! satisfaction* (`RandSAT`): drawing many random valid assignments via
//! propagation-guided backtracking search.
//!
//! # Example
//!
//! ```
//! use heron_csp::{Csp, Domain, VarCategory};
//!
//! let mut csp = Csp::new();
//! let x = csp.add_var("x", Domain::values([1, 2, 3, 4, 6, 12]), VarCategory::Tunable);
//! let y = csp.add_var("y", Domain::values([1, 2, 3, 4, 6, 12]), VarCategory::Tunable);
//! let n = csp.add_const("n", 12);
//! csp.post_prod(n, vec![x, y]); // x * y == 12
//! let mut rng = heron_rng::HeronRng::from_seed(7);
//! let outcome = heron_csp::solver::rand_sat(&csp, &mut rng, 8);
//! let sols = outcome.expect_sat("doc example");
//! assert!(!sols.is_empty());
//! for s in &sols {
//!     assert_eq!(s.value(x) * s.value(y), 12);
//! }
//! ```

pub mod constraint;
pub mod diagnose;
pub mod domain;
pub mod problem;
pub mod propagate;
pub mod serialize;
pub mod session;
pub mod solver;
pub mod stats;
pub mod store;

pub use constraint::Constraint;
pub use diagnose::{diagnose_root_conflict, root_feasible, ConflictEntry, ConflictReport};
pub use domain::Domain;
pub use problem::{Csp, Solution, VarCategory, VarRef};
pub use serialize::{from_text, solution_from_text, solution_to_text, to_text};
pub use session::SolveSession;
pub use solver::{
    rand_sat, rand_sat_policy, rand_sat_traced, rand_sat_with_budget, validate, SolveOutcome,
    SolvePolicy, SolveStats, SolveStatus,
};
pub use stats::{tunable_domains, SpaceCensus};
pub use store::{Dom, DomainStore, VarTables};
