//! A reusable solver session: one [`Propagator`] + cached root fixpoint
//! shared across many solves.
//!
//! The CGA explorer solves thousands of closely-related CSPs per tune:
//! the initial space for population seeding, and per-offspring variants
//! that only *add* a handful of `IN` pins on tunables. Historically each
//! solve rebuilt the propagator adjacency and re-ran the root fixpoint
//! from scratch. A [`SolveSession`] does that work once:
//!
//! * [`SolveSession::solve`] samples the base space directly on the
//!   cached committed root store (the per-dive trail restores it).
//! * [`SolveSession::solve_pinned`] is the incremental re-solve: it
//!   clones the cached fixpoint (O(vars)), applies the offspring's value
//!   pins, and propagates only from the pinned variables. Because the
//!   filters are monotone, `fixpoint(root_fixpoint + pins)` equals the
//!   from-scratch `fixpoint(initial + IN pins)`, so the sampled solution
//!   stream is identical to materialising the offspring CSP — at a
//!   fraction of the propagation work. Each such call counts one
//!   *incremental hit* ([`SolveStats::incremental_hits`]).
//!
//! **Determinism note:** the root fixpoint's propagations are one-time
//! session setup and are *never* folded into any reported
//! [`SolveStats`]. A tuner killed and resumed mid-run rebuilds its
//! session; if the root cost were charged to the first solve after
//! construction, a resumed run's round records would differ from an
//! uninterrupted run's. Excluding it keeps checkpoint/resume runs
//! byte-identical.

use heron_rng::Rng;
use heron_trace::Tracer;

use crate::problem::{Csp, VarRef};
use crate::propagate::Propagator;
use crate::solver::{
    classify, record, sample_into, Deadline, SampleCtx, SolveOutcome, SolvePolicy, SolveStats,
};
use crate::store::DomainStore;

/// Long-lived solver state for one CSP (see the module docs).
#[derive(Debug)]
pub struct SolveSession {
    csp: Csp,
    prop: Propagator,
    tunables: Vec<VarRef>,
    tmask: Vec<bool>,
    /// The committed root fixpoint; `None` iff the root is infeasible.
    root: Option<DomainStore>,
    incremental_hits: u64,
    max_trail: u64,
}

impl SolveSession {
    /// Builds the session: propagator adjacency, tunable mask, and the
    /// root fixpoint, computed exactly once.
    pub fn new(csp: &Csp) -> Self {
        let csp = csp.clone();
        let prop = Propagator::new(&csp);
        let mut store = prop.store();
        let root = if prop.run_all(&mut store).is_ok() {
            store.commit();
            // Retire constraints already entailed at the root for the
            // session's whole lifetime (read-only, fixpoint-preserving).
            prop.sweep_entailed(&mut store);
            store.take_max_trail();
            Some(store)
        } else {
            None
        };
        // Root-setup propagations are not attributable to any one solve
        // (see the module's determinism note).
        prop.reset_stats();
        let tunables = csp.tunables();
        let mut tmask = vec![false; csp.num_vars()];
        for t in &tunables {
            tmask[t.0] = true;
        }
        SolveSession {
            csp,
            prop,
            tunables,
            tmask,
            root,
            incremental_hits: 0,
            max_trail: 0,
        }
    }

    /// The session's problem.
    pub fn csp(&self) -> &Csp {
        &self.csp
    }

    /// Whether the root fixpoint is feasible.
    pub fn root_feasible(&self) -> bool {
        self.root.is_some()
    }

    /// Total incremental (pinned) re-solves served so far.
    pub fn incremental_hits(&self) -> u64 {
        self.incremental_hits
    }

    /// Deepest trail depth observed across all solves so far.
    pub fn max_trail(&self) -> u64 {
        self.max_trail
    }

    /// Samples up to `n` distinct solutions of the base space — the
    /// session-owned equivalent of [`crate::solver::rand_sat_traced`],
    /// minus the per-call propagator/root rebuild.
    pub fn solve<R: Rng>(
        &mut self,
        rng: &mut R,
        n: usize,
        policy: &SolvePolicy,
        tracer: &Tracer,
    ) -> SolveOutcome {
        let span = tracer.span_with("csp.solve", || {
            [
                ("n", n.to_string()),
                ("budget", policy.budget.to_string()),
                ("vars", self.csp.num_vars().to_string()),
            ]
        });
        let mut stats = SolveStats::default();
        let mut deadline = Deadline::new(policy.deadline_steps);
        let mut out = Vec::with_capacity(n);
        let root_ok = self.root.is_some();
        if let Some(store) = self.root.as_mut() {
            let p0 = self.prop.propagations();
            let w0 = self.prop.wipeouts();
            let ctx = SampleCtx {
                csp: &self.csp,
                prop: &self.prop,
                tunables: &self.tunables,
                tmask: &self.tmask,
            };
            sample_into(
                &ctx,
                store,
                rng,
                n,
                policy,
                &mut deadline,
                &mut stats,
                &mut out,
            );
            stats.propagations = self.prop.propagations() - p0;
            stats.wipeouts = self.prop.wipeouts() - w0;
            stats.max_trail_depth = store.take_max_trail();
        }
        stats.solutions = out.len() as u64;
        self.max_trail = self.max_trail.max(stats.max_trail_depth);
        let status = classify(root_ok, &deadline, &out, n);
        record(tracer, &stats, status);
        drop(span);
        SolveOutcome {
            status,
            solutions: out,
            stats,
        }
    }

    /// Incremental re-solve: samples the base space further constrained
    /// by per-variable value pins (`var ∈ values`, the compiled form of
    /// an offspring's crossover `IN` constraints), starting from the
    /// cached root fixpoint instead of propagating from scratch.
    ///
    /// `values` slices must be sorted and deduplicated (as produced by
    /// `Csp::post_in`). An infeasible pin set classifies as
    /// [`SolveStatus::RootInfeasible`], exactly like materialising the
    /// offspring CSP would.
    pub fn solve_pinned<R: Rng>(
        &mut self,
        pins: &[(VarRef, Vec<i64>)],
        rng: &mut R,
        n: usize,
        policy: &SolvePolicy,
        tracer: &Tracer,
    ) -> SolveOutcome {
        let span = tracer.span_with("csp.solve", || {
            [
                ("n", n.to_string()),
                ("budget", policy.budget.to_string()),
                ("vars", self.csp.num_vars().to_string()),
            ]
        });
        let mut stats = SolveStats::default();
        let mut deadline = Deadline::new(policy.deadline_steps);
        let mut out = Vec::with_capacity(n);
        let p0 = self.prop.propagations();
        let w0 = self.prop.wipeouts();
        let mut root_ok = false;
        if let Some(root) = self.root.as_ref() {
            // O(vars) clone of the committed fixpoint — no trail to copy.
            let mut store = root.clone();
            let mut changed: Vec<VarRef> = Vec::with_capacity(pins.len());
            let mut wiped = false;
            for (v, values) in pins {
                match store.restrict_to(v.0, values) {
                    Ok(true) => changed.push(*v),
                    Ok(false) => {}
                    Err(()) => {
                        stats.wipeouts += 1;
                        wiped = true;
                        break;
                    }
                }
            }
            if !wiped && self.prop.run_from_vars(&mut store, &changed).is_ok() {
                root_ok = true;
                // Pins typically fix variables: retire the newly
                // entailed constraints for this pinned solve.
                self.prop.sweep_entailed(&mut store);
                store.take_max_trail();
                stats.incremental_hits = 1;
                self.incremental_hits += 1;
                let ctx = SampleCtx {
                    csp: &self.csp,
                    prop: &self.prop,
                    tunables: &self.tunables,
                    tmask: &self.tmask,
                };
                sample_into(
                    &ctx,
                    &mut store,
                    rng,
                    n,
                    policy,
                    &mut deadline,
                    &mut stats,
                    &mut out,
                );
                stats.max_trail_depth = store.take_max_trail();
            }
        }
        stats.propagations = self.prop.propagations() - p0;
        stats.wipeouts += self.prop.wipeouts() - w0;
        stats.solutions = out.len() as u64;
        self.max_trail = self.max_trail.max(stats.max_trail_depth);
        let status = classify(root_ok, &deadline, &out, n);
        record(tracer, &stats, status);
        if stats.incremental_hits > 0 {
            tracer.counter_add("csp.incremental_hits", stats.incremental_hits);
        }
        drop(span);
        SolveOutcome {
            status,
            solutions: out,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::problem::VarCategory;
    use crate::solver::{rand_sat_traced, SolveStatus};
    use heron_rng::HeronRng;

    fn tiling_csp() -> (Csp, [VarRef; 3]) {
        let mut csp = Csp::new();
        let n = csp.add_const("n", 64);
        let i0 = csp.add_var("i0", Domain::divisors_of(64), VarCategory::Tunable);
        let i1 = csp.add_var("i1", Domain::divisors_of(64), VarCategory::Tunable);
        let i2 = csp.add_var("i2", Domain::divisors_of(64), VarCategory::Tunable);
        csp.post_prod(n, vec![i0, i1, i2]);
        let inner = csp.add_var("inner", Domain::range(1, 4096), VarCategory::Other);
        csp.post_prod(inner, vec![i1, i2]);
        let cap = csp.add_const("cap", 32);
        csp.post_le(inner, cap);
        (csp, [i0, i1, i2])
    }

    #[test]
    fn session_solve_matches_rand_sat_stream() {
        let (csp, _) = tiling_csp();
        let policy = SolvePolicy::fixed(2_000);
        let mut session = SolveSession::new(&csp);
        let mut rng_a = HeronRng::from_seed(17);
        let mut rng_b = HeronRng::from_seed(17);
        for _ in 0..3 {
            let a = session.solve(&mut rng_a, 8, &policy, &Tracer::disabled());
            let b = rand_sat_traced(&csp, &mut rng_b, 8, &policy, &Tracer::disabled());
            assert_eq!(a.status, b.status);
            assert_eq!(a.solutions, b.solutions, "session diverged from rand_sat");
            // The session never re-pays the root fixpoint.
            assert!(a.stats.propagations < b.stats.propagations);
        }
    }

    #[test]
    fn pinned_solve_matches_materialised_offspring() {
        let (csp, [i0, i1, _]) = tiling_csp();
        let policy = SolvePolicy::fixed(2_000);
        let mut session = SolveSession::new(&csp);
        let pins = vec![(i0, vec![2, 8]), (i1, vec![1, 4])];
        let mut offspring = csp.clone();
        for (v, vals) in &pins {
            offspring.post_in(*v, vals.iter().copied());
        }
        let mut rng_a = HeronRng::from_seed(23);
        let mut rng_b = HeronRng::from_seed(23);
        let a = session.solve_pinned(&pins, &mut rng_a, 6, &policy, &Tracer::disabled());
        let b = rand_sat_traced(&offspring, &mut rng_b, 6, &policy, &Tracer::disabled());
        assert_eq!(a.status, b.status);
        assert_eq!(
            a.solutions, b.solutions,
            "incremental re-solve diverged from the from-scratch offspring solve"
        );
        assert_eq!(a.stats.incremental_hits, 1);
        assert_eq!(session.incremental_hits(), 1);
        assert!(
            a.stats.propagations < b.stats.propagations,
            "incremental solve must propagate less ({} vs {})",
            a.stats.propagations,
            b.stats.propagations
        );
    }

    #[test]
    fn pinned_solve_classifies_infeasible_pins() {
        let (csp, [i0, _, _]) = tiling_csp();
        let mut session = SolveSession::new(&csp);
        // 3 is not a divisor of 64: the pin wipes i0 out.
        let pins = vec![(i0, vec![3])];
        let mut rng = HeronRng::from_seed(1);
        let out = session.solve_pinned(
            &pins,
            &mut rng,
            4,
            &SolvePolicy::fixed(100),
            &Tracer::disabled(),
        );
        assert_eq!(out.status, SolveStatus::RootInfeasible);
        assert!(out.solutions.is_empty());
        assert_eq!(out.stats.incremental_hits, 0);
        // The cached root is untouched: the base space still solves.
        let ok = session.solve(&mut rng, 4, &SolvePolicy::fixed(2_000), &Tracer::disabled());
        assert_eq!(ok.status, SolveStatus::Sat);
    }

    #[test]
    fn root_infeasible_session_classifies_every_solve() {
        let mut csp = Csp::new();
        let a = csp.add_var("a", Domain::values([2, 3]), VarCategory::Tunable);
        csp.post_in(a, [7, 9]);
        let mut session = SolveSession::new(&csp);
        assert!(!session.root_feasible());
        let mut rng = HeronRng::from_seed(0);
        let out = session.solve(&mut rng, 4, &SolvePolicy::fixed(100), &Tracer::disabled());
        assert_eq!(out.status, SolveStatus::RootInfeasible);
        let out = session.solve_pinned(
            &[],
            &mut rng,
            4,
            &SolvePolicy::fixed(100),
            &Tracer::disabled(),
        );
        assert_eq!(out.status, SolveStatus::RootInfeasible);
    }
}
