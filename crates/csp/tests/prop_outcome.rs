//! Property tests pinning the `SolveOutcome` classification contract
//! (DESIGN.md §6): `rand_sat` never silently returns an empty solution
//! set — every non-`Sat` outcome carries an explanatory status, proven
//! UNSAT roots are *classified* (and diagnosable), and deadline-bounded
//! solves stay deterministic.
//!
//! Inputs come from the adversarial corpus in
//! `heron_testkit::csp_corpus` (UNSAT clashes, single-solution pins,
//! knife-edge product spaces).

use heron_csp::{
    diagnose_root_conflict, rand_sat, rand_sat_policy, validate, SolvePolicy, SolveStatus,
};
use heron_rng::HeronRng;
use heron_testkit::csp_corpus::{knife_edge_csp, single_solution_csp, unsat_csp};
use heron_testkit::{property_cases, Gen};

fn solver_rng(g: &mut Gen) -> HeronRng {
    HeronRng::from_seed(g.int(0, i64::MAX) as u64)
}

/// A proven-UNSAT root is classified `RootInfeasible` with zero
/// solutions, and the diagnoser names a removal set that restores
/// feasibility.
#[test]
fn unsat_roots_are_classified_and_diagnosable() {
    property_cases("outcome_unsat_classified", 48, |g| {
        let csp = unsat_csp(g);
        let mut rng = solver_rng(g);
        let outcome = rand_sat(&csp, &mut rng, 4);
        assert_eq!(
            outcome.status,
            SolveStatus::RootInfeasible,
            "clash must be classified, not silently empty"
        );
        assert!(outcome.solutions.is_empty());
        assert!(!outcome.is_sat());
        let report = diagnose_root_conflict(&csp)
            .expect("diagnoser must report on a root-infeasible problem");
        assert!(
            report.removal_restores_feasibility(&csp),
            "diagnosed removal set must restore feasibility"
        );
    });
}

/// A single-solution space is solved (the needle is found) and the
/// returned solution is exactly the pinned one.
#[test]
fn single_solution_spaces_are_solved_exactly() {
    property_cases("outcome_single_solution", 48, |g| {
        let (csp, expected) = single_solution_csp(g);
        let mut rng = solver_rng(g);
        let outcome = rand_sat(&csp, &mut rng, 1);
        assert!(
            outcome.is_sat(),
            "pinned-but-satisfiable space must solve, got {:?}",
            outcome.status
        );
        let sol = outcome.one().expect("sat outcome carries a solution");
        assert!(validate(&csp, &sol), "returned solution must validate");
        assert_eq!(
            sol.values(),
            expected.values(),
            "a single-solution space admits exactly one answer"
        );
    });
}

/// The no-silent-empty contract on knife-edge spaces: whatever the
/// budget, an empty solution set always carries a non-`Sat` status, and
/// every returned solution validates against the problem.
#[test]
fn knife_edges_never_return_silent_empty() {
    property_cases("outcome_knife_edge_contract", 48, |g| {
        let csp = knife_edge_csp(g);
        // Deliberately starve the solver sometimes: tiny budgets force
        // the budget-exhausted / escalation paths.
        let budget = *g.pick(&[1u32, 4, 64, 2_000]);
        let policy = SolvePolicy::fixed(budget);
        let mut rng = solver_rng(g);
        let outcome = rand_sat_policy(&csp, &mut rng, 2, &policy);
        if outcome.solutions.is_empty() {
            assert_ne!(
                outcome.status,
                SolveStatus::Sat,
                "empty solution set must be classified"
            );
        } else {
            assert_eq!(outcome.status, SolveStatus::Sat);
            for sol in &outcome.solutions {
                assert!(validate(&csp, sol), "solutions must satisfy the CSP");
            }
        }
        // Knife-edge spaces are satisfiable by construction, so the
        // solver must never call the root infeasible.
        assert_ne!(outcome.status, SolveStatus::RootInfeasible);
    });
}

/// Deadline-bounded solves are a pure function of (csp, seed, policy):
/// same-seed runs agree byte-for-byte on status, solutions, and stats.
#[test]
fn deadline_bounded_solves_are_deterministic() {
    property_cases("outcome_deadline_deterministic", 32, |g| {
        let csp = knife_edge_csp(g);
        let seed = g.int(0, i64::MAX) as u64;
        let deadline = *g.pick(&[1u64, 8, 64, 512]);
        let policy = SolvePolicy::fixed(256).with_deadline(deadline);
        let solve = || {
            let mut rng = HeronRng::from_seed(seed);
            rand_sat_policy(&csp, &mut rng, 4, &policy)
        };
        let (a, b) = (solve(), solve());
        assert_eq!(a.status, b.status);
        assert_eq!(a.solutions, b.solutions);
        assert_eq!(a.stats, b.stats);
    });
}
