//! Equivalence of the trail + bitset engine against the historical
//! clone-based reference solver (`heron_testkit::csp_reference`).
//!
//! The trail rewrite is only allowed to change *how much work* sampling
//! does, never *what it samples*: for any `(csp, seed, n, policy)` the
//! production engine must return the same solution sequence and the same
//! classification as the clone-per-node reference, because both consume
//! the RNG identically (same shuffles, same candidate lists, same
//! branch/backtrack schedule). Propagation counts are the one sanctioned
//! difference — dormancy and self-wake suppression must only ever make
//! the new engine cheaper.

use heron_csp::{rand_sat_policy, Csp, SolvePolicy};
use heron_rng::HeronRng;
use heron_testkit::csp_reference::rand_sat_reference;
use heron_testkit::{csp_corpus, property_cases};

/// Runs both engines on the same seed and asserts identical outcomes.
fn assert_engines_agree(csp: &Csp, seed: u64, n: usize, policy: &SolvePolicy, label: &str) {
    let mut rng_new = HeronRng::from_seed(seed);
    let mut rng_ref = HeronRng::from_seed(seed);
    let new = rand_sat_policy(csp, &mut rng_new, n, policy);
    let reference = rand_sat_reference(csp, &mut rng_ref, n, policy);
    assert_eq!(
        new.status, reference.status,
        "{label}: status diverged (seed {seed})"
    );
    assert_eq!(
        new.solutions, reference.solutions,
        "{label}: solution sequence diverged (seed {seed})"
    );
    assert_eq!(
        new.stats.attempts, reference.stats.attempts,
        "{label}: attempt schedule diverged (seed {seed})"
    );
    assert!(
        new.stats.propagations <= reference.stats.propagations,
        "{label}: trail engine propagated more ({} > {}) (seed {seed})",
        new.stats.propagations,
        reference.stats.propagations,
    );
}

#[test]
fn trail_engine_matches_reference_on_base_corpus() {
    property_cases("trail_engine_matches_reference_on_base_corpus", 48, |g| {
        let n_vars = g.index(2, 7);
        let csp = csp_corpus::base_csp(g, n_vars);
        let seed = g.int(0, 1_000_000) as u64;
        let n = g.index(1, 9);
        assert_engines_agree(&csp, seed, n, &SolvePolicy::default(), "base");
    });
}

#[test]
fn trail_engine_matches_reference_on_unsat_corpus() {
    property_cases("trail_engine_matches_reference_on_unsat_corpus", 32, |g| {
        let csp = csp_corpus::unsat_csp(g);
        let seed = g.int(0, 1_000_000) as u64;
        assert_engines_agree(&csp, seed, 4, &SolvePolicy::default(), "unsat");
    });
}

#[test]
fn trail_engine_matches_reference_on_single_solution_corpus() {
    property_cases(
        "trail_engine_matches_reference_on_single_solution_corpus",
        32,
        |g| {
            let (csp, pinned) = csp_corpus::single_solution_csp(g);
            let seed = g.int(0, 1_000_000) as u64;
            let mut rng = HeronRng::from_seed(seed);
            let new = rand_sat_policy(&csp, &mut rng, 4, &SolvePolicy::default());
            if new.is_sat() {
                assert_eq!(new.solutions, vec![pinned.clone()]);
            }
            assert_engines_agree(&csp, seed, 4, &SolvePolicy::default(), "single-solution");
        },
    );
}

#[test]
fn trail_engine_matches_reference_on_knife_edge_corpus() {
    property_cases(
        "trail_engine_matches_reference_on_knife_edge_corpus",
        24,
        |g| {
            let csp = csp_corpus::knife_edge_csp(g);
            let seed = g.int(0, 1_000_000) as u64;
            // Small budget + escalation exercises the restart schedule on
            // both sides; a deadline exercises DeadlineExceeded parity.
            let policy = SolvePolicy {
                budget: 8,
                max_escalations: 2,
                escalation_factor: 4,
                budget_cap: 512,
                deadline_steps: 0,
            };
            assert_engines_agree(&csp, seed, 4, &policy, "knife-edge");
            let deadlined = SolvePolicy::default().with_deadline(50);
            assert_engines_agree(&csp, seed, 4, &deadlined, "knife-edge-deadline");
        },
    );
}
