//! Property-based tests of the CSP engine: solver soundness against a
//! brute-force oracle on randomly generated small problems.

use heron_csp::propagate::Propagator;
use heron_csp::{rand_sat, validate, Constraint, Csp, Domain, Solution, VarCategory, VarRef};
use proptest::prelude::*;

/// A small random CSP description we can brute-force.
#[derive(Debug, Clone)]
struct SmallCsp {
    domains: Vec<Vec<i64>>,
    constraints: Vec<Constraint>,
}

impl SmallCsp {
    fn build(&self) -> Csp {
        let mut csp = Csp::new();
        for (i, d) in self.domains.iter().enumerate() {
            csp.add_var(
                format!("v{i}"),
                Domain::values(d.iter().copied()),
                VarCategory::Tunable,
            );
        }
        for c in &self.constraints {
            csp.post(c.clone());
        }
        csp
    }

    /// All solutions by exhaustive enumeration.
    fn brute_force(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut current = vec![0i64; self.domains.len()];
        self.enumerate(0, &mut current, &mut out);
        out
    }

    fn enumerate(&self, idx: usize, current: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if idx == self.domains.len() {
            let env = |r: VarRef| current[r.0];
            if self.constraints.iter().all(|c| c.check(&env)) {
                out.push(current.clone());
            }
            return;
        }
        for &v in &self.domains[idx] {
            current[idx] = v;
            self.enumerate(idx + 1, current, out);
        }
    }
}

fn small_domain() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(0i64..6, 1..4).prop_map(|s| s.into_iter().collect())
}

fn constraint(nvars: usize) -> impl Strategy<Value = Constraint> {
    let var = 0..nvars;
    let var2 = 0..nvars;
    let var3 = 0..nvars;
    prop_oneof![
        (var.clone(), var2.clone(), var3.clone()).prop_map(|(o, a, b)| Constraint::Prod {
            out: VarRef(o),
            factors: vec![VarRef(a), VarRef(b)],
        }),
        (var.clone(), var2.clone(), var3.clone()).prop_map(|(o, a, b)| Constraint::Sum {
            out: VarRef(o),
            terms: vec![VarRef(a), VarRef(b)],
        }),
        (var.clone(), var2.clone()).prop_map(|(a, b)| Constraint::Eq(VarRef(a), VarRef(b))),
        (var.clone(), var2.clone()).prop_map(|(a, b)| Constraint::Le(VarRef(a), VarRef(b))),
        (var.clone(), proptest::collection::btree_set(0i64..6, 1..4)).prop_map(|(v, s)| {
            Constraint::In { var: VarRef(v), values: s.into_iter().collect() }
        }),
        (var, var2, var3).prop_map(|(o, i, c)| Constraint::Select {
            out: VarRef(o),
            index: VarRef(i),
            choices: vec![VarRef(c), VarRef(o)],
        }),
    ]
}

fn small_csp() -> impl Strategy<Value = SmallCsp> {
    proptest::collection::vec(small_domain(), 2..5).prop_flat_map(|domains| {
        let n = domains.len();
        proptest::collection::vec(constraint(n), 0..4)
            .prop_map(move |constraints| SmallCsp { domains: domains.clone(), constraints })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every solution RandSAT returns is a real solution.
    #[test]
    fn rand_sat_solutions_validate(small in small_csp(), seed in 0u64..1000) {
        let csp = small.build();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for sol in rand_sat(&csp, &mut rng, 8) {
            prop_assert!(validate(&csp, &sol));
        }
    }

    /// RandSAT is complete on satisfiable small problems (finds at least
    /// one solution when brute force does).
    #[test]
    fn rand_sat_finds_solutions_when_they_exist(small in small_csp(), seed in 0u64..1000) {
        let solutions = small.brute_force();
        let csp = small.build();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let found = rand_sat(&csp, &mut rng, 4);
        if !solutions.is_empty() {
            prop_assert!(!found.is_empty(), "solver missed a satisfiable problem");
        } else {
            prop_assert!(found.is_empty(), "solver invented a solution");
        }
    }

    /// Propagation is sound: it never removes a value that appears in some
    /// brute-force solution, and only reports infeasibility for truly
    /// unsatisfiable problems.
    #[test]
    fn propagation_is_sound(small in small_csp()) {
        let solutions = small.brute_force();
        let csp = small.build();
        let prop = Propagator::new(&csp);
        let mut domains = prop.initial_domains();
        match prop.run_all(&mut domains) {
            Err(_) => prop_assert!(solutions.is_empty(), "propagation wiped a satisfiable problem"),
            Ok(()) => {
                for sol in &solutions {
                    for (i, &v) in sol.iter().enumerate() {
                        prop_assert!(
                            domains[i].contains(v),
                            "propagation removed value {v} of v{i} used by solution {sol:?}"
                        );
                    }
                }
            }
        }
    }

    /// `validate` agrees with the brute-force membership test.
    #[test]
    fn validate_matches_brute_force(small in small_csp()) {
        let solutions = small.brute_force();
        let csp = small.build();
        for sol in solutions.iter().take(16) {
            prop_assert!(validate(&csp, &Solution::new(sol.clone())));
        }
    }

    /// Serialisation round-trips arbitrary small CSPs exactly.
    #[test]
    fn serialization_roundtrip(small in small_csp()) {
        let csp = small.build();
        let text = heron_csp::to_text(&csp);
        let back = heron_csp::from_text(&text).expect("parses its own output");
        prop_assert_eq!(back.num_vars(), csp.num_vars());
        prop_assert_eq!(back.num_constraints(), csp.num_constraints());
        prop_assert_eq!(heron_csp::to_text(&back), text);
        // Brute-force solution sets agree.
        for sol in small.brute_force().into_iter().take(8) {
            prop_assert!(validate(&back, &Solution::new(sol)));
        }
    }

    /// Domain operations preserve the min/max envelope.
    #[test]
    fn domain_restrict_envelope(values in proptest::collection::btree_set(0i64..100, 1..12),
                                lo in 0i64..100, hi in 0i64..100) {
        let mut d = Domain::values(values.iter().copied());
        let lo_bound = lo.min(hi);
        let hi_bound = lo.max(hi);
        let a = d.restrict_min(lo_bound);
        if a.is_ok() {
            let b = d.restrict_max(hi_bound);
            if b.is_ok() {
                prop_assert!(d.min() >= lo_bound);
                prop_assert!(d.max() <= hi_bound);
                for v in d.iter_values() {
                    prop_assert!(values.contains(&v));
                }
            }
        }
    }
}
