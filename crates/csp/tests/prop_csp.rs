//! Property-based tests of the CSP engine: solver soundness against a
//! brute-force oracle on randomly generated small problems.
//! (heron-testkit harness; see DESIGN.md, "Zero-dependency &
//! determinism policy".)

use heron_csp::propagate::Propagator;
use heron_csp::{rand_sat, validate, Constraint, Csp, Domain, Solution, VarCategory, VarRef};
use heron_testkit::{property_cases, Gen};
use std::collections::BTreeSet;

/// A small random CSP description we can brute-force.
#[derive(Debug, Clone)]
struct SmallCsp {
    domains: Vec<Vec<i64>>,
    constraints: Vec<Constraint>,
}

impl SmallCsp {
    fn build(&self) -> Csp {
        let mut csp = Csp::new();
        for (i, d) in self.domains.iter().enumerate() {
            csp.add_var(
                format!("v{i}"),
                Domain::values(d.iter().copied()),
                VarCategory::Tunable,
            );
        }
        for c in &self.constraints {
            csp.post(c.clone());
        }
        csp
    }

    /// All solutions by exhaustive enumeration.
    fn brute_force(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut current = vec![0i64; self.domains.len()];
        self.enumerate(0, &mut current, &mut out);
        out
    }

    fn enumerate(&self, idx: usize, current: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if idx == self.domains.len() {
            let env = |r: VarRef| current[r.0];
            if self.constraints.iter().all(|c| c.check(&env)) {
                out.push(current.clone());
            }
            return;
        }
        for &v in &self.domains[idx] {
            current[idx] = v;
            self.enumerate(idx + 1, current, out);
        }
    }
}

/// A sorted, deduplicated domain of 1..=3 values drawn from 0..6.
fn small_domain(g: &mut Gen) -> Vec<i64> {
    let set: BTreeSet<i64> = g.vec(1, 3, |g| g.int(0, 6)).into_iter().collect();
    set.into_iter().collect()
}

fn constraint(g: &mut Gen, nvars: usize) -> Constraint {
    let n = nvars as i64;
    match g.int(0, 6) {
        0 => Constraint::Prod {
            out: VarRef(g.int(0, n) as usize),
            factors: vec![VarRef(g.int(0, n) as usize), VarRef(g.int(0, n) as usize)],
        },
        1 => Constraint::Sum {
            out: VarRef(g.int(0, n) as usize),
            terms: vec![VarRef(g.int(0, n) as usize), VarRef(g.int(0, n) as usize)],
        },
        2 => Constraint::Eq(VarRef(g.int(0, n) as usize), VarRef(g.int(0, n) as usize)),
        3 => Constraint::Le(VarRef(g.int(0, n) as usize), VarRef(g.int(0, n) as usize)),
        4 => {
            let values: BTreeSet<i64> = g.vec(1, 3, |g| g.int(0, 6)).into_iter().collect();
            Constraint::In {
                var: VarRef(g.int(0, n) as usize),
                values: values.into_iter().collect(),
            }
        }
        _ => {
            let o = VarRef(g.int(0, n) as usize);
            Constraint::Select {
                out: o,
                index: VarRef(g.int(0, n) as usize),
                choices: vec![VarRef(g.int(0, n) as usize), o],
            }
        }
    }
}

fn small_csp(g: &mut Gen) -> SmallCsp {
    let domains = g.vec(2, 4, small_domain);
    let n = domains.len();
    let constraints = g.vec(0, 3, |g| constraint(g, n));
    SmallCsp {
        domains,
        constraints,
    }
}

/// Every solution RandSAT returns is a real solution.
#[test]
fn rand_sat_solutions_validate() {
    property_cases("rand_sat_solutions_validate", 64, |g| {
        let small = small_csp(g);
        let seed = g.int(0, 1000) as u64;
        let csp = small.build();
        let mut rng = heron_rng::HeronRng::from_seed(seed);
        for sol in rand_sat(&csp, &mut rng, 8).solutions {
            assert!(
                validate(&csp, &sol),
                "invalid RandSAT solution for {small:?}"
            );
        }
    });
}

/// RandSAT is complete on satisfiable small problems (finds at least
/// one solution when brute force does).
#[test]
fn rand_sat_finds_solutions_when_they_exist() {
    property_cases("rand_sat_finds_solutions_when_they_exist", 64, |g| {
        let small = small_csp(g);
        let seed = g.int(0, 1000) as u64;
        let solutions = small.brute_force();
        let csp = small.build();
        let mut rng = heron_rng::HeronRng::from_seed(seed);
        let found = rand_sat(&csp, &mut rng, 4);
        if !solutions.is_empty() {
            assert!(
                found.is_sat() && !found.solutions.is_empty(),
                "solver missed a satisfiable problem ({}): {small:?}",
                found.status
            );
        } else {
            assert!(
                !found.is_sat() && found.solutions.is_empty(),
                "solver invented a solution: {small:?}"
            );
        }
    });
}

/// Propagation is sound: it never removes a value that appears in some
/// brute-force solution, and only reports infeasibility for truly
/// unsatisfiable problems.
#[test]
fn propagation_is_sound() {
    property_cases("propagation_is_sound", 64, |g| {
        let small = small_csp(g);
        let solutions = small.brute_force();
        let csp = small.build();
        let prop = Propagator::new(&csp);
        let mut store = prop.store();
        match prop.run_all(&mut store) {
            Err(_) => assert!(
                solutions.is_empty(),
                "propagation wiped a satisfiable problem: {small:?}"
            ),
            Ok(()) => {
                for sol in &solutions {
                    for (i, &v) in sol.iter().enumerate() {
                        assert!(
                            store.contains(i, v),
                            "propagation removed value {v} of v{i} used by solution {sol:?}"
                        );
                    }
                }
            }
        }
    });
}

/// `validate` agrees with the brute-force membership test.
#[test]
fn validate_matches_brute_force() {
    property_cases("validate_matches_brute_force", 64, |g| {
        let small = small_csp(g);
        let solutions = small.brute_force();
        let csp = small.build();
        for sol in solutions.iter().take(16) {
            assert!(validate(&csp, &Solution::new(sol.clone())));
        }
    });
}

/// Serialisation round-trips arbitrary small CSPs exactly.
#[test]
fn serialization_roundtrip() {
    property_cases("serialization_roundtrip", 64, |g| {
        let small = small_csp(g);
        let csp = small.build();
        let text = heron_csp::to_text(&csp);
        let back = heron_csp::from_text(&text).expect("parses its own output");
        assert_eq!(back.num_vars(), csp.num_vars());
        assert_eq!(back.num_constraints(), csp.num_constraints());
        assert_eq!(heron_csp::to_text(&back), text);
        // Brute-force solution sets agree.
        for sol in small.brute_force().into_iter().take(8) {
            assert!(validate(&back, &Solution::new(sol)));
        }
    });
}

/// Domain operations preserve the min/max envelope.
#[test]
fn domain_restrict_envelope() {
    property_cases("domain_restrict_envelope", 64, |g| {
        let values: BTreeSet<i64> = g.vec(1, 11, |g| g.int(0, 100)).into_iter().collect();
        let lo = g.int(0, 100);
        let hi = g.int(0, 100);
        let mut d = Domain::values(values.iter().copied());
        let lo_bound = lo.min(hi);
        let hi_bound = lo.max(hi);
        let a = d.restrict_min(lo_bound);
        if a.is_ok() {
            let b = d.restrict_max(hi_bound);
            if b.is_ok() {
                assert!(d.min() >= lo_bound);
                assert!(d.max() <= hi_bound);
                for v in d.iter_values() {
                    assert!(values.contains(&v));
                }
            }
        }
    });
}
