//! Baseline tuners and vendor-library models the paper compares against.
//!
//! Each baseline couples a *space* (a `SpaceOptions` variant modelling
//! the approach's template expressiveness) with a *search algorithm*
//! (modelling its explorer) and with rejection-based validity handling: a
//! candidate violating the DLA's constraints costs a trial and scores 0 —
//! exactly what happens when TVM fails to compile or launch on the device.
//!
//! | Baseline | Space | Search | Characteristic deficiency |
//! |---|---|---|---|
//! | AutoTVM | fixed manual template | simulated annealing | fixed tiling structure, no storage_align/locations |
//! | Ansor   | auto template, no intrinsics | genetic algorithm | cannot use TensorCore/VNNI/GEMM units |
//! | AMOS    | mapping exploration | genetic algorithm | no storage_align, fixed compute locations |
//! | vendor  | expert heuristic configs | none (menu lookup) | not shape-specific |

pub mod akg;
pub mod tune;
pub mod vendor;

pub use akg::akg_outcome;
pub use tune::{tune, Approach, Outcome};
pub use vendor::vendor_outcome;
