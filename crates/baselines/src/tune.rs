//! The uniform tuning entry point used by every figure harness.

use heron_core::explore::classic::{GaExplorer, SaExplorer};
use heron_core::explore::Explorer;
use heron_core::generate::{GenerateError, SpaceGenerator, SpaceOptions};
use heron_core::tuner::{evaluate, TuneConfig, Tuner};
use heron_dla::{DlaSpec, Measurer};
use heron_rng::HeronRng;
use heron_tensor::Dag;

/// Which end-to-end approach to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// The paper's system: constrained space + CGA + cost model.
    Heron,
    /// AutoTVM-like: fixed manual template + simulated annealing.
    AutoTvm,
    /// Ansor-like: auto template without DLA intrinsics + GA.
    Ansor,
    /// AMOS-like: intrinsic mapping exploration + GA.
    Amos,
}

impl Approach {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Approach::Heron => "Heron",
            Approach::AutoTvm => "AutoTVM",
            Approach::Ansor => "Ansor",
            Approach::Amos => "AMOS",
        }
    }

    /// The space options modelling this approach's template.
    pub fn space_options(self) -> SpaceOptions {
        match self {
            Approach::Heron => SpaceOptions::heron(),
            Approach::AutoTvm => SpaceOptions::autotvm(),
            Approach::Ansor => SpaceOptions::ansor(),
            Approach::Amos => SpaceOptions::amos(),
        }
    }

    /// All four approaches (figure iteration order).
    pub fn all() -> [Approach; 4] {
        [
            Approach::Heron,
            Approach::AutoTvm,
            Approach::Ansor,
            Approach::Amos,
        ]
    }
}

/// Result of one end-to-end tuning run, comparable across approaches.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Approach display name.
    pub name: &'static str,
    /// Best throughput found, Gops (0 when nothing valid was found).
    pub best_gflops: f64,
    /// Latency of the best program, seconds.
    pub best_latency_s: f64,
    /// Best-so-far curve over measured trials.
    pub curve: Vec<f64>,
    /// Trials that executed successfully.
    pub valid_trials: usize,
    /// Trials rejected by the DLA (compile/run failures).
    pub invalid_trials: usize,
    /// Simulated deployment measurement seconds (per-trial overhead plus
    /// program latencies) — the dominant compilation-time term.
    pub hw_measure_s: f64,
    /// Real seconds of search computation.
    pub search_s: f64,
}

/// Runs `approach` on `dag`/`spec` for `trials` measured trials.
///
/// # Errors
/// Propagates [`GenerateError`] when the operator cannot target the
/// platform at all (e.g. SCAN on VTA).
pub fn tune(
    approach: Approach,
    spec: &DlaSpec,
    dag: &Dag,
    workload: &str,
    trials: usize,
    seed: u64,
) -> Result<Outcome, GenerateError> {
    let generator = SpaceGenerator::new(spec.clone());
    let space = generator.generate_named(dag, &approach.space_options(), workload)?;
    let measurer = Measurer::new(spec.clone());

    if approach == Approach::Heron {
        let t = std::time::Instant::now();
        let mut tuner = Tuner::new(space, measurer, heron_config(trials), seed);
        let r = tuner.run();
        return Ok(Outcome {
            name: approach.name(),
            best_gflops: r.best_gflops,
            best_latency_s: r.best_latency_s,
            curve: r.curve,
            valid_trials: r.valid_trials,
            invalid_trials: r.invalid_trials,
            hw_measure_s: r.timing.hw_measure_s,
            search_s: t.elapsed().as_secs_f64() - r.timing.sim_s,
        });
    }

    // Baselines: explorer + rejection-based measurement.
    let mut valid = 0usize;
    let mut invalid = 0usize;
    let mut hw_s = 0.0f64;
    let mut best_latency = f64::INFINITY;
    let mut best_gflops = 0.0f64;
    let trial_overhead = 0.8;
    let repeats = 3.0;
    let mut measure = |sol: &heron_csp::Solution| -> Option<f64> {
        hw_s += trial_overhead;
        match evaluate(&space, &measurer, sol) {
            Ok((_, m)) => {
                valid += 1;
                hw_s += m.latency_s * repeats;
                if m.gflops > best_gflops {
                    best_gflops = m.gflops;
                    best_latency = m.latency_s;
                }
                Some(m.gflops)
            }
            Err(_) => {
                invalid += 1;
                None
            }
        }
    };
    let mut rng = HeronRng::from_seed(seed);
    let t = std::time::Instant::now();
    let curve = match approach {
        Approach::AutoTvm => SaExplorer::default().explore(&space, &mut measure, trials, &mut rng),
        Approach::Ansor | Approach::Amos => {
            GaExplorer::default().explore(&space, &mut measure, trials, &mut rng)
        }
        Approach::Heron => unreachable!("handled above"),
    };
    let search_s = t.elapsed().as_secs_f64();
    // Trials whose offspring could not even be completed to a concrete
    // program (inconsistent tunable assignments) still consume a real
    // compile attempt on the deployment side.
    let failed_completions = curve.len().saturating_sub(valid + invalid);
    hw_s += failed_completions as f64 * trial_overhead;
    invalid += failed_completions;
    Ok(Outcome {
        name: approach.name(),
        best_gflops,
        best_latency_s: best_latency,
        curve,
        valid_trials: valid,
        invalid_trials: invalid,
        hw_measure_s: hw_s,
        search_s,
    })
}

/// Heron's tuning configuration scaled to the trial budget.
pub fn heron_config(trials: usize) -> TuneConfig {
    if trials >= 1000 {
        TuneConfig {
            trials,
            ..TuneConfig::paper()
        }
    } else {
        TuneConfig::quick(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_dla::v100;
    use heron_tensor::ops;

    #[test]
    fn heron_beats_ansor_on_tensorcore_gemm() {
        let dag = ops::gemm(1024, 1024, 1024);
        let spec = v100();
        let heron = tune(Approach::Heron, &spec, &dag, "g", 60, 1).expect("generates");
        let ansor = tune(Approach::Ansor, &spec, &dag, "g", 60, 1).expect("generates");
        assert!(heron.best_gflops > 0.0 && ansor.best_gflops > 0.0);
        assert!(
            heron.best_gflops > 2.0 * ansor.best_gflops,
            "tensor cores should dominate CUDA cores: {} vs {}",
            heron.best_gflops,
            ansor.best_gflops
        );
    }

    #[test]
    fn baselines_waste_trials_on_invalid_programs() {
        let dag = ops::gemm(1024, 1024, 1024);
        let spec = v100();
        let amos = tune(Approach::Amos, &spec, &dag, "g", 60, 3).expect("generates");
        let heron = tune(Approach::Heron, &spec, &dag, "g", 60, 3).expect("generates");
        assert_eq!(heron.invalid_trials, 0);
        assert!(
            amos.invalid_trials > 0,
            "unconstrained AMOS must hit invalid configs"
        );
    }
}
