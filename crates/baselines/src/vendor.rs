//! Vendor hand-tuned library models (cuDNN/cuBLAS/PyTorch, oneDNN).
//!
//! A vendor library ships a menu of expert-written kernels selected by a
//! shape heuristic, not tuned per shape. We model that faithfully: a small
//! menu of expert configurations (pinned tunable assignments reflecting
//! published kernel designs) is evaluated on the same simulator, the best
//! fitting entry wins, and a modest hand-optimisation bonus accounts for
//! tricks outside the schedule space (async copies, software pipelining).
//! On common square shapes the menu is near-optimal; on the skewed shapes
//! of real networks no menu entry fits well — reproducing the paper's
//! observation that Heron beats vendor libraries by 2.69× on average while
//! only modestly winning on their home-turf shapes.

use heron_core::generate::{GeneratedSpace, SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_csp::Csp;
use heron_dla::{DlaFamily, DlaSpec, Measurer};
use heron_rng::HeronRng;
use heron_tensor::Dag;

/// Hand-optimisation bonus: vendor kernels use mechanisms outside the
/// schedule space (cp.async, swizzled layouts), worth ~10% when a menu
/// entry fits the shape.
const VENDOR_BONUS: f64 = 1.10;

/// Framework dispatch overhead per operator call: the paper compares
/// against *PyTorch* kernels, whose dispatcher + cuDNN heuristics add a
/// fixed per-call cost that dominates small operators (the source of the
/// paper's largest vendor gaps).
const DISPATCH_OVERHEAD_S: f64 = 10e-6;

/// One expert menu entry: tunable-variable pins.
type MenuEntry = Vec<(&'static str, i64)>;

/// Expert kernel menu for TensorCore GPUs (block tiles from large to
/// small, standard warp layout, full vectorisation, conflict-free padding).
fn gpu_menu() -> Vec<MenuEntry> {
    // Structural tile choices only: the micro knobs (vector widths, pads,
    // unroll, reduction chunking) are sampled and the best completion wins,
    // modelling the hand-tuning vendor engineers do per kernel.
    let tile = |i1: i64, i2: i64, j1: i64, j2: i64| -> MenuEntry {
        vec![
            ("m", 16),
            ("n", 16),
            ("k", 16),
            ("tile.C.i1", i1),
            ("tile.C.i2", i2),
            ("tile.C.j1", j1),
            ("tile.C.j2", j2),
            ("unroll", 512),
            ("vec.A.shared", 8),
            ("vec.B.shared", 8),
            // Pad of 2 halves makes the shared-row word stride odd, which
            // is conflict-free for every row length (f32 staging rows pad
            // by 1 word for the same effect).
            ("pad.A.shared", 2),
            ("pad.B.shared", 2),
            ("pad.C.shared", 1),
            ("vec.C", 4),
        ]
    };
    vec![
        // 256x256 block (large-K throughput kernel).
        tile(4, 4, 4, 4),
        // 256x128 block, 64x64 warp tiles.
        tile(4, 4, 2, 4),
        // 128x128 block.
        tile(2, 4, 2, 4),
        // 128x64 block.
        tile(2, 4, 2, 2),
        // 64x64 block (small-shape kernel).
        tile(2, 2, 2, 2),
    ]
}

/// Expert menu for DL Boost CPUs (oneDNN-style packed layouts, wide
/// register blocking).
fn cpu_menu() -> Vec<MenuEntry> {
    vec![
        vec![
            ("tile.C.i2", 14),
            ("layout.B", 1),
            ("unroll", 64),
            ("vec.C", 16),
        ],
        vec![
            ("tile.C.i2", 8),
            ("layout.B", 1),
            ("unroll", 64),
            ("vec.C", 16),
        ],
        vec![
            ("tile.C.i2", 4),
            ("layout.B", 1),
            ("unroll", 16),
            ("vec.C", 16),
        ],
    ]
}

/// Result of the vendor-library model.
#[derive(Debug, Clone, Copy)]
pub struct VendorOutcome {
    /// Achieved throughput, Gops.
    pub gflops: f64,
    /// Kernel latency, seconds.
    pub latency_s: f64,
}

/// Pins the menu entry onto a copy of the space's CSP and solves it.
fn realize_entry(
    space: &GeneratedSpace,
    entry: &MenuEntry,
    rng: &mut HeronRng,
) -> Vec<heron_csp::Solution> {
    let mut csp: Csp = space.csp.clone();
    for (name, value) in entry {
        let Some(var) = csp.var_by_name(name) else {
            return Vec::new();
        };
        if !csp.var(var).domain.contains(*value) {
            return Vec::new(); // entry does not fit this shape
        }
        csp.post_in(var, [*value]);
    }
    // Several completions of the micro knobs; the vendor picks the best.
    heron_csp::rand_sat_with_budget(&csp, rng, 12, 400).solutions
}

/// Evaluates the vendor library on a workload; `None` when the platform
/// has no vendor model (VTA) or no menu entry fits at all.
pub fn vendor_outcome(
    spec: &DlaSpec,
    dag: &Dag,
    workload: &str,
    seed: u64,
) -> Option<VendorOutcome> {
    let menu = match spec.family {
        DlaFamily::Gpu(_) => gpu_menu(),
        DlaFamily::Cpu(_) => cpu_menu(),
        DlaFamily::Vta(_) => return None,
    };
    let generator = SpaceGenerator::new(spec.clone());
    let space = generator
        .generate_named(dag, &SpaceOptions::heron(), workload)
        .ok()?;
    let measurer = Measurer::new(spec.clone());
    let mut rng = HeronRng::from_seed(seed);

    let flops = dag.total_flops() as f64;
    let with_dispatch = |kernel_latency: f64| -> VendorOutcome {
        let latency_s = kernel_latency + DISPATCH_OVERHEAD_S;
        VendorOutcome {
            gflops: flops / latency_s / 1e9,
            latency_s,
        }
    };
    let mut best: Option<VendorOutcome> = None;
    for entry in &menu {
        for sol in realize_entry(&space, entry, &mut rng) {
            let Ok((_, m)) = evaluate(&space, &measurer, &sol) else {
                continue;
            };
            let boosted = with_dispatch(m.latency_s / VENDOR_BONUS);
            if best.is_none_or(|b| boosted.gflops > b.gflops) {
                best = Some(boosted);
            }
        }
    }
    // A vendor library always runs *something*: when no expert menu entry
    // fits the shape, its dispatcher falls back to the generic kernel zoo —
    // structurally limited kernels (modelled as the best of a handful of
    // samples from the fixed manual-template space, without the
    // hand-optimisation bonus). This is where the paper's large vendor
    // gaps on skewed shapes come from.
    if best.is_none() {
        if let Ok(generic) = generator.generate_named(dag, &SpaceOptions::autotvm(), workload) {
            let generic_measurer = Measurer::new(spec.clone());
            for sol in heron_csp::rand_sat_with_budget(&generic.csp, &mut rng, 3, 400).solutions {
                let Ok((_, m)) = evaluate(&generic, &generic_measurer, &sol) else {
                    continue;
                };
                let candidate = with_dispatch(m.latency_s);
                if best.is_none_or(|b| candidate.gflops > b.gflops) {
                    best = Some(candidate);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_dla::{dlboost, v100, vta};
    use heron_tensor::ops;

    #[test]
    fn vendor_is_strong_on_square_gemm() {
        let dag = ops::gemm(4096, 4096, 4096);
        let v = vendor_outcome(&v100(), &dag, "g2", 1).expect("gpu vendor exists");
        // cuBLAS-class efficiency on its home turf (> 40% of peak).
        let frac = v.gflops * 1e9 / v100().peak_ops_per_sec();
        assert!(frac > 0.4, "vendor too weak on square gemm: {frac}");
    }

    #[test]
    fn vendor_weaker_on_skinny_gemm() {
        let skinny = ops::gemm(32, 1000, 4096);
        let square = ops::gemm(4096, 4096, 4096);
        let vs = vendor_outcome(&v100(), &skinny, "g5", 1).expect("exists");
        let vq = vendor_outcome(&v100(), &square, "g2", 1).expect("exists");
        assert!(
            vs.gflops < vq.gflops * 0.5,
            "{} vs {}",
            vs.gflops,
            vq.gflops
        );
    }

    #[test]
    fn no_vendor_on_vta() {
        let dag = ops::gemm_dtyped(256, 256, 256, heron_tensor::DType::I8);
        assert!(vendor_outcome(&vta(), &dag, "g", 1).is_none());
    }

    #[test]
    fn cpu_vendor_exists() {
        let dag = ops::gemm_dtyped(512, 512, 512, heron_tensor::DType::I8);
        let v = vendor_outcome(&dlboost(), &dag, "g", 1).expect("onednn model");
        assert!(v.gflops > 0.0);
    }
}
