//! AKG-like polyhedral baseline.
//!
//! A polyhedral compiler computes one schedule analytically (tile sizes
//! from capacity-filling heuristics) rather than searching. We model that
//! as a deterministic configuration ladder: the preferred polyhedral
//! schedule, then progressively smaller fallbacks until one fits the
//! shape — no measurement feedback, exactly one candidate executed.
//! The paper evaluates AKG only on TensorCore GEMM/C2D; this model
//! likewise supports only GPU platforms.

use heron_core::generate::{SpaceGenerator, SpaceOptions};
use heron_core::tuner::evaluate;
use heron_dla::{DlaFamily, DlaSpec, Measurer};
use heron_rng::HeronRng;
use heron_tensor::Dag;

/// Result of the AKG model.
#[derive(Debug, Clone, Copy)]
pub struct AkgOutcome {
    /// Achieved throughput, Gops.
    pub gflops: f64,
    /// Kernel latency, seconds.
    pub latency_s: f64,
}

/// The deterministic schedule ladder: `(i1, i2, j1, j2, r1)`.
const LADDER: [(i64, i64, i64, i64, i64); 4] = [
    (2, 4, 2, 4, 2), // 128x128 block, 64x64 warp tiles
    (2, 2, 2, 4, 2),
    (2, 2, 2, 2, 2),
    (1, 2, 1, 2, 1), // minimal schedule for tiny shapes
];

/// Computes the AKG-style schedule for a workload; `None` off-GPU or when
/// even the minimal schedule does not fit.
pub fn akg_outcome(spec: &DlaSpec, dag: &Dag, workload: &str, seed: u64) -> Option<AkgOutcome> {
    if !matches!(spec.family, DlaFamily::Gpu(_)) {
        return None;
    }
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(dag, &SpaceOptions::heron(), workload)
        .ok()?;
    let measurer = Measurer::new(spec.clone());
    let mut rng = HeronRng::from_seed(seed);

    for (i1, i2, j1, j2, r1) in LADDER {
        let mut csp = space.csp.clone();
        let pins = [
            ("m", 16),
            ("n", 16),
            ("k", 16),
            ("tile.C.i1", i1),
            ("tile.C.i2", i2),
            ("tile.C.j1", j1),
            ("tile.C.j2", j2),
            ("tile.C.r1", r1),
            ("vec.A.shared", 8),
            ("vec.B.shared", 8),
            // The polyhedral schedule bank-aligns buffers analytically.
            ("pad.A.shared", 2),
            ("pad.B.shared", 2),
            ("pad.C.shared", 2),
            ("loc.A.shared", 0),
            ("loc.B.shared", 0),
            ("vec.C", 4),
            ("unroll", 64),
        ];
        let mut feasible = true;
        for (name, value) in pins {
            let Some(var) = csp.var_by_name(name) else {
                feasible = false;
                break;
            };
            if !csp.var(var).domain.contains(value) {
                feasible = false;
                break;
            }
            csp.post_in(var, [value]);
        }
        if !feasible {
            continue;
        }
        // The polyhedral scheduler emits exactly one program: take the
        // first solution of the pinned space.
        let Some(sol) = heron_csp::rand_sat_with_budget(&csp, &mut rng, 1, 400).one() else {
            continue;
        };
        if let Ok((_, m)) = evaluate(&space, &measurer, &sol) {
            return Some(AkgOutcome {
                gflops: m.gflops,
                latency_s: m.latency_s,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_dla::{v100, vta};
    use heron_tensor::ops;

    #[test]
    fn akg_produces_a_reasonable_gemm_schedule() {
        let dag = ops::gemm(1024, 1024, 1024);
        let o = akg_outcome(&v100(), &dag, "g1", 1).expect("gpu schedule exists");
        let frac = o.gflops * 1e9 / v100().peak_ops_per_sec();
        assert!(frac > 0.05, "AKG too weak: {frac}");
    }

    #[test]
    fn akg_is_deterministic() {
        let dag = ops::gemm(512, 512, 512);
        let a = akg_outcome(&v100(), &dag, "g", 1).expect("exists");
        let b = akg_outcome(&v100(), &dag, "g", 99).expect("exists");
        // Same schedule regardless of seed (the solver only fills aux vars,
        // and the tunables are all pinned).
        assert!((a.gflops - b.gflops).abs() / a.gflops < 0.02);
    }

    #[test]
    fn akg_unsupported_off_gpu() {
        let dag = ops::gemm_dtyped(256, 256, 256, heron_tensor::DType::I8);
        assert!(akg_outcome(&vta(), &dag, "g", 1).is_none());
    }

    #[test]
    fn akg_falls_back_on_small_shapes() {
        // 64x64x64: the 128x128 schedule cannot fit, the ladder must.
        let dag = ops::gemm(64, 64, 64);
        let o = akg_outcome(&v100(), &dag, "small", 1);
        assert!(o.is_some(), "ladder should find a minimal schedule");
    }
}
