//! Uniform sampling over integer and float ranges.
//!
//! Integer ranges use the widening-multiply ("Lemire without
//! rejection") map `(next_u64 as u128 * span) >> 64`, which is
//! branch-free, platform-independent, and deterministic. For the span
//! sizes Heron draws from (domain cardinalities, population indices —
//! all ≪ 2^32) the multiply bias is < 2^-32 and irrelevant next to the
//! stochastic search itself; determinism is worth far more here than a
//! rejection loop whose draw count varies by seed.

use crate::Rng;

/// Types that can be sampled uniformly from a range by
/// [`Rng::random_range`](crate::Rng::random_range).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = (((rng.next_u64() as u128) * ((span + 1) as u128)) >> 64) as u64;
                ((lo as u64).wrapping_add(off)) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                // Shift to unsigned space so the span arithmetic cannot
                // overflow, sample, shift back.
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = (((rng.next_u64() as u128) * ((span + 1) as u128)) >> 64) as u64;
                ((lo as i64 as u64).wrapping_add(off)) as i64 as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        let u: f64 = crate::Standard::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        let u: f32 = crate::Standard::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Range-shaped arguments accepted by
/// [`Rng::random_range`](crate::Rng::random_range): `lo..hi` and
/// `lo..=hi`.
pub trait SampleRange<T: SampleUniform> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HalfOpen> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "random_range: empty range (start >= end)"
        );
        T::sample_inclusive(rng, self.start, self.end.half_open_upper())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Conversion of a half-open upper bound to the inclusive bound used
/// internally. Integers step down by one; floats keep the bound (the
/// unit sample is already in `[0, 1)`, so `hi` itself has measure
/// zero).
pub trait HalfOpen {
    fn half_open_upper(self) -> Self;
}

macro_rules! impl_half_open_int {
    ($($t:ty),*) => {$(
        impl HalfOpen for $t {
            #[inline]
            fn half_open_upper(self) -> Self { self - 1 }
        }
    )*};
}

impl_half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpen for f64 {
    #[inline]
    fn half_open_upper(self) -> Self {
        self
    }
}

impl HalfOpen for f32 {
    #[inline]
    fn half_open_upper(self) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use crate::{HeronRng, Rng};

    #[test]
    fn integer_ranges_hit_all_values_and_stay_in_bounds() {
        let mut rng = HeronRng::from_seed(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "not all of 3..10 sampled: {seen:?}"
        );
    }

    #[test]
    fn inclusive_ranges_include_both_ends() {
        let mut rng = HeronRng::from_seed(12);
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-2..=2);
            assert!((-2..=2).contains(&v));
            lo_hit |= v == -2;
            hi_hit |= v == 2;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn negative_signed_ranges() {
        let mut rng = HeronRng::from_seed(13);
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-100..-50);
            assert!((-100..-50).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = HeronRng::from_seed(14);
        for _ in 0..1_000 {
            let v: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = HeronRng::from_seed(15);
        assert_eq!(rng.random_range(4..=4i64), 4);
        assert_eq!(rng.random_range(7..8usize), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = HeronRng::from_seed(16);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = HeronRng::from_seed(17);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = n / 8;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket {i} count {c} far from {expected}"
            );
        }
    }
}
