//! # heron-rng — deterministic, dependency-free randomness for Heron
//!
//! The whole workspace builds offline; no registry crates are allowed
//! (see `DESIGN.md`, "Zero-dependency & determinism policy"). This crate
//! replaces `rand` with an owned, pinned implementation so that
//! stochastic components — `RandSAT` sampling, the constrained genetic
//! algorithm, GBDT feature subsampling — are bit-reproducible across
//! PRs, platforms, and compiler versions.
//!
//! Core generator: **xoshiro256\*\*** (Blackman & Vigna), seeded from a
//! single `u64` through **SplitMix64** exactly as the reference code
//! recommends. Golden-stream tests in `tests/golden.rs` pin the first
//! outputs for three seeds; any silent change to the generator is a
//! test failure, not a quiet perturbation of every experiment.
//!
//! ```
//! use heron_rng::{HeronRng, Rng, IndexedRandom, SliceRandom};
//!
//! let mut rng = HeronRng::from_seed(42);
//! let x: f64 = rng.random();            // uniform in [0, 1)
//! let i = rng.random_range(0..10usize); // uniform integer
//! let heads = rng.random_bool(0.5);
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! let picked = v.as_slice().choose(&mut rng);
//! assert!(picked.is_some());
//! let _ = heads;
//! let _ = (x, i);
//!
//! // Parallel explorers: fork decorrelated child streams by id.
//! let child_a = rng.fork(0);
//! let child_b = rng.fork(1);
//! assert_ne!(child_a.clone().next_u64(), child_b.clone().next_u64());
//! // Forks depend only on (seed, stream_id), never on draw order.
//! assert_eq!(HeronRng::from_seed(42).fork(0).next_u64(), child_a.clone().next_u64());
//! ```

mod range;
mod slice;

pub use range::{SampleRange, SampleUniform};
pub use slice::{reservoir_sample, weighted_index, IndexedRandom, SliceRandom};

/// Multiplicative constant of the Weyl sequence used by SplitMix64
/// (the 64-bit golden ratio).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 — the canonical one-word seeder / splitter.
///
/// Used to expand a single `u64` seed into the 256-bit xoshiro state and
/// to derive decorrelated stream seeds in [`HeronRng::fork`]. Also a
/// perfectly serviceable standalone generator for cheap one-shot
/// hashing-style randomness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output (reference algorithm, Steele et al. 2014).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// The workspace PRNG: xoshiro256\*\* seeded via SplitMix64.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; `*_jump`-free
/// parallelism is provided by [`HeronRng::fork`], which derives child
/// seeds purely from `(root_seed, stream_id)` so parallel explorers get
/// reproducible, order-independent streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeronRng {
    s: [u64; 4],
    /// The `u64` this generator was seeded with (kept for `fork` and
    /// failure reporting; never consumed by generation itself).
    seed: u64,
}

impl HeronRng {
    /// Seed the generator from a single word. The 256-bit state is
    /// filled with four successive SplitMix64 outputs, as the xoshiro
    /// reference implementation prescribes.
    #[inline]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        HeronRng { s, seed }
    }

    /// `rand::SeedableRng`-compatible spelling of [`HeronRng::from_seed`].
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::from_seed(seed)
    }

    /// The seed this generator (or fork) was constructed from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive a decorrelated child generator for parallel stream
    /// `stream_id`.
    ///
    /// The child seed is a SplitMix64-quality mix of the *original*
    /// seed and the stream id — deliberately independent of how many
    /// values the parent has drawn, so `rng.fork(k)` is stable no
    /// matter where in the tuning loop it is called. Identical
    /// `(seed, stream_id)` pairs always yield identical streams;
    /// distinct stream ids yield streams that differ immediately.
    #[inline]
    pub fn fork(&self, stream_id: u64) -> HeronRng {
        // Feed (seed, stream_id) through two SplitMix64 steps so that
        // fork(0) of seed s is *not* the same as from_seed(s).
        let mut sm = SplitMix64::new(self.seed ^ stream_id.wrapping_mul(GOLDEN_GAMMA));
        let a = sm.next_u64();
        let b = sm.next_u64();
        HeronRng::from_seed(a ^ b.rotate_left(32) ^ 0x48_45_52_4F_4E) // "HERON"
    }

    /// The raw 256-bit xoshiro state, for checkpointing a generator
    /// mid-stream (tuner session resume). Pair with [`HeronRng::seed`]
    /// and feed both to [`HeronRng::restore`] to reconstruct the exact
    /// stream position.
    #[inline]
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a checkpointed `(seed, state)` pair
    /// so the restored stream continues bit-for-bit where the saved one
    /// stopped. The seed is carried along because [`HeronRng::fork`]
    /// derives child streams from it (never from the moving state).
    #[inline]
    pub fn restore(seed: u64, state: [u64; 4]) -> Self {
        HeronRng { s: state, seed }
    }

    /// Raw xoshiro256** output (reference algorithm, Blackman & Vigna
    /// 2018).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for HeronRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        HeronRng::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform random generation — the trait bound every stochastic
/// component in the workspace takes (`fn fit<R: Rng>(..., rng: &mut R)`).
///
/// Only `next_u64` is required; everything else is a provided,
/// deterministic derivation so all implementors produce identical
/// distributions from identical raw streams.
pub trait Rng {
    /// The only required method: the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of the 64-bit word — the
    /// high bits of xoshiro256\*\* are the strongest).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample of a primitive type: `f64`/`f32` in `[0, 1)`,
    /// integers over their full range, `bool` fair.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from an integer or float range
    /// (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let f: f64 = self.random();
        f < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// Exact (no float rounding): draws an integer below `denominator`.
    ///
    /// # Panics
    /// Panics if `denominator == 0` or `numerator > denominator`.
    #[inline]
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "random_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "random_ratio: numerator {numerator} > denominator {denominator}"
        );
        self.random_range(0..denominator) < numerator
    }

    /// A normal (Gaussian) sample via the Box–Muller transform.
    ///
    /// Deterministically consumes exactly two raw words per call (the
    /// sine branch is discarded instead of cached, so a call sequence
    /// is a pure function of the stream position).
    #[inline]
    fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64
    where
        Self: Sized,
    {
        // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
        let u1: f64 = 1.0 - self.random::<f64>();
        let u2: f64 = self.random();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Types with a canonical "standard" uniform distribution for
/// [`Rng::random`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// 53 random mantissa bits → uniform in `[0, 1)`.
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// 24 random mantissa bits → uniform in `[0, 1)`.
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        // Highest bit of the raw word.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let mut a = HeronRng::from_seed(7);
        let mut b = HeronRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_from_u64_aliases_from_seed() {
        assert_eq!(
            HeronRng::seed_from_u64(99).next_u64(),
            HeronRng::from_seed(99).next_u64()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(
            HeronRng::from_seed(1).next_u64(),
            HeronRng::from_seed(2).next_u64()
        );
    }

    #[test]
    fn fork_is_order_independent_and_decorrelated() {
        let root = HeronRng::from_seed(42);
        let mut drained = HeronRng::from_seed(42);
        for _ in 0..100 {
            drained.next_u64();
        }
        // Fork depends only on (seed, id), not on parent draw position.
        assert_eq!(root.fork(3), drained.fork(3));
        // Distinct ids → distinct streams; fork(0) != the root stream.
        assert_ne!(root.fork(0).next_u64(), root.fork(1).next_u64());
        assert_ne!(root.fork(0).next_u64(), HeronRng::from_seed(42).next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut rng = HeronRng::from_seed(99);
        for _ in 0..37 {
            rng.next_u64();
        }
        let snapshot = (rng.seed(), rng.state_words());
        let expect: Vec<u64> = {
            let mut r = rng.clone();
            (0..16).map(|_| r.next_u64()).collect()
        };
        let mut restored = HeronRng::restore(snapshot.0, snapshot.1);
        let got: Vec<u64> = (0..16).map(|_| restored.next_u64()).collect();
        assert_eq!(expect, got, "restored stream diverged");
        // Forks survive restore too (they derive from the seed).
        assert_eq!(rng.fork(5), restored.fork(5));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = HeronRng::from_seed(5);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = HeronRng::from_seed(5);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn random_ratio_extremes_and_rough_balance() {
        let mut rng = HeronRng::from_seed(5);
        assert!(!rng.random_ratio(0, 7));
        assert!(rng.random_ratio(7, 7));
        let hits = (0..10_000).filter(|_| rng.random_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "1/4 ratio hit {hits}/10000");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = HeronRng::from_seed(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn rng_trait_objects_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = HeronRng::from_seed(1);
        let direct = HeronRng::from_seed(1).next_u64();
        assert_eq!(draw(&mut &mut rng), direct);
    }
}
