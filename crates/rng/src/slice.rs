//! Slice adaptors: Fisher–Yates shuffling and uniform / weighted
//! element choice, mirroring the `rand` trait split (`SliceRandom` for
//! mutation, `IndexedRandom` for read-only choice) so call sites stay
//! idiomatic.

use crate::Rng;

/// Read-only random access to slices.
pub trait IndexedRandom {
    type Output;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;

    /// A random element with probability proportional to
    /// `weight(element)`, or `None` if the slice is empty or the total
    /// weight is not strictly positive. Negative weights are treated
    /// as zero.
    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Option<&Self::Output>
    where
        R: Rng,
        F: Fn(&Self::Output) -> f64;

    /// `n` distinct elements in selection order (a partial Fisher–Yates
    /// over indices). Returns fewer than `n` if the slice is shorter.
    fn choose_multiple<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    #[inline]
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }

    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Option<&T>
    where
        R: Rng,
        F: Fn(&T) -> f64,
    {
        let weights: Vec<f64> = self.iter().map(|x| weight(x).max(0.0)).collect();
        let total: f64 = weights.iter().sum();
        if self.is_empty() || total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut ticket = rng.random::<f64>() * total;
        for (item, w) in self.iter().zip(&weights) {
            if ticket < *w {
                return Some(item);
            }
            ticket -= w;
        }
        // Float summation slack: fall back to the last positive-weight
        // element so the draw is never silently dropped.
        self.iter()
            .zip(&weights)
            .rev()
            .find(|(_, &w)| w > 0.0)
            .map(|(item, _)| item)
    }

    fn choose_multiple<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<&T> {
        let n = n.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..n {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..n].iter().map(|&i| &self[i]).collect()
    }
}

/// In-place random mutation of slices.
pub trait SliceRandom {
    /// Uniform in-place Fisher–Yates shuffle (descending variant —
    /// identical draw count for identical lengths).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Uniform sample from an iterator of unknown length via reservoir
/// sampling (Algorithm R). One pass, O(1) memory.
pub fn reservoir_sample<I, R>(iter: I, rng: &mut R) -> Option<I::Item>
where
    I: IntoIterator,
    R: Rng,
{
    let mut chosen = None;
    for (seen, item) in iter.into_iter().enumerate() {
        if seen == 0 || rng.random_range(0..=seen) == 0 {
            chosen = Some(item);
        }
    }
    chosen
}

/// Weighted index draw over a weight slice (roulette wheel). Returns
/// `None` when no weight is strictly positive.
pub fn weighted_index<R: Rng, W: Copy + Into<f64>>(weights: &[W], rng: &mut R) -> Option<usize> {
    let total: f64 = weights.iter().map(|&w| w.into().max(0.0)).sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    let mut ticket = rng.random::<f64>() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        let w = w.into().max(0.0);
        if w > 0.0 {
            last_positive = Some(i);
        }
        if ticket < w {
            return Some(i);
        }
        ticket -= w;
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeronRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = HeronRng::from_seed(21);
        let v = [10, 20, 30, 40];
        let mut seen = [false; 4];
        for _ in 0..400 {
            let &x = v.as_slice().choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut rng = HeronRng::from_seed(22);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let mut rng2 = HeronRng::from_seed(22);
        let mut v2: Vec<u32> = (0..50).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2, "same seed must give the same permutation");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = HeronRng::from_seed(23);
        let v = ["never", "rare", "common"];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            let &x = v
                .as_slice()
                .choose_weighted(&mut rng, |s| match *s {
                    "never" => 0.0,
                    "rare" => 1.0,
                    _ => 9.0,
                })
                .unwrap();
            counts[v.iter().position(|&s| s == x).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 500 && counts[1] < 1_500, "rare: {}", counts[1]);
        assert!(counts[2] > 8_500, "common: {}", counts[2]);
    }

    #[test]
    fn choose_weighted_degenerate_weights() {
        let mut rng = HeronRng::from_seed(24);
        let v = [1, 2, 3];
        assert!(v.as_slice().choose_weighted(&mut rng, |_| 0.0).is_none());
        assert!(v.as_slice().choose_weighted(&mut rng, |_| -1.0).is_none());
        let empty: [i32; 0] = [];
        assert!(empty
            .as_slice()
            .choose_weighted(&mut rng, |_| 1.0)
            .is_none());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = HeronRng::from_seed(25);
        let v: Vec<u32> = (0..10).collect();
        let picks = v.as_slice().choose_multiple(&mut rng, 4);
        assert_eq!(picks.len(), 4);
        let mut dedup: Vec<u32> = picks.iter().map(|&&x| x).collect();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_eq!(v.as_slice().choose_multiple(&mut rng, 99).len(), 10);
    }

    #[test]
    fn reservoir_matches_population() {
        let mut rng = HeronRng::from_seed(26);
        for _ in 0..100 {
            let x = reservoir_sample(5..15, &mut rng).unwrap();
            assert!((5..15).contains(&x));
        }
        assert!(reservoir_sample(0..0, &mut rng).is_none());
    }

    #[test]
    fn weighted_index_basic() {
        let mut rng = HeronRng::from_seed(27);
        for _ in 0..100 {
            let i = weighted_index(&[0.0f64, 2.0, 1.0], &mut rng).unwrap();
            assert!(i == 1 || i == 2);
        }
        assert!(weighted_index::<_, f64>(&[], &mut rng).is_none());
        assert!(weighted_index(&[0.0f64, 0.0], &mut rng).is_none());
    }
}
