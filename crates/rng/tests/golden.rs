//! Golden-stream tests: the first eight raw outputs of SplitMix64 and
//! xoshiro256** for three fixed seeds, pinned against reference values
//! computed with an independent implementation of the published
//! algorithms (Steele et al. 2014; Blackman & Vigna 2018).
//!
//! If any of these assertions fail, the generator changed and **every
//! seeded experiment in the repository silently changed with it** —
//! tuning traces, RandSAT samples, GBDT subsampling, property-test
//! cases. Do not update these constants unless that is the explicit,
//! documented intent of the PR (see DESIGN.md, "Zero-dependency &
//! determinism policy").

use heron_rng::{HeronRng, SplitMix64};

const SEEDS: [u64; 3] = [0, 42, 0xDEAD_BEEF];

/// SplitMix64 reference streams: `splitmix64(seed)` iterated 8 times.
const SPLITMIX_GOLDEN: [[u64; 8]; 3] = [
    [
        0xE220_A839_7B1D_CDAF,
        0x6E78_9E6A_A1B9_65F4,
        0x06C4_5D18_8009_454F,
        0xF88B_B8A8_724C_81EC,
        0x1B39_896A_51A8_749B,
        0x53CB_9F0C_747E_A2EA,
        0x2C82_9ABE_1F45_32E1,
        0xC584_133A_C916_AB3C,
    ],
    [
        0xBDD7_3226_2FEB_6E95,
        0x28EF_E333_B266_F103,
        0x4752_6757_130F_9F52,
        0x581C_E1FF_0E4A_E394,
        0x09BC_585A_2448_23F2,
        0xDE44_31FA_3C80_DB06,
        0x37E9_671C_4537_6D5D,
        0xCCF6_35EE_9E9E_2FA4,
    ],
    [
        0x4ADF_B90F_68C9_EB9B,
        0xDE58_6A31_41A1_0922,
        0x021F_BC2F_8E1C_FC1D,
        0x7466_CE73_7BE1_6790,
        0x3BFA_8764_F685_BD1C,
        0xAB20_3E50_3CB5_5B3F,
        0x5A2F_DC2B_F68C_EDB3,
        0xB30A_4CCF_430B_1B5A,
    ],
];

/// xoshiro256** reference streams: state filled with four SplitMix64
/// outputs of the seed, then iterated 8 times. The seed-0 stream's
/// first word (0x99EC5F36CB75F2B4) matches the widely published
/// reference vector for this seeding convention.
const XOSHIRO_GOLDEN: [[u64; 8]; 3] = [
    [
        0x99EC_5F36_CB75_F2B4,
        0xBF6E_1F78_4956_452A,
        0x1A5F_849D_4933_E6E0,
        0x6AA5_94F1_262D_2D2C,
        0xBBA5_AD4A_1F84_2E59,
        0xFFEF_8375_D9EB_CACA,
        0x6C16_0DEE_D2F5_4C98,
        0x8920_AD64_8FC3_0A3F,
    ],
    [
        0x1578_0B2E_0C2E_C716,
        0x6104_D986_6D11_3A7E,
        0xAE17_5332_39E4_99A1,
        0xECB8_AD47_03B3_60A1,
        0xFDE6_DC7F_E2EC_5E64,
        0xC50D_A531_0179_5238,
        0xB821_5485_5A65_DDB2,
        0xD99A_2743_EBE6_0087,
    ],
    [
        0xC555_5444_A74D_7E83,
        0x65C3_0D37_B4B1_6E38,
        0x54F7_7320_0A4E_FA23,
        0x429A_ED75_FB95_8AF7,
        0xFB0E_1DD6_9C25_5B2E,
        0x9D6D_02EC_5881_4A27,
        0xF419_9B9D_A2E4_B2A3,
        0x54BC_5B2C_11A4_540A,
    ],
];

#[test]
fn splitmix64_streams_are_pinned() {
    for (seed, golden) in SEEDS.iter().zip(SPLITMIX_GOLDEN.iter()) {
        let mut sm = SplitMix64::new(*seed);
        for (i, &want) in golden.iter().enumerate() {
            let got = sm.next_u64();
            assert_eq!(
                got, want,
                "SplitMix64 seed {seed:#x} output {i}: got {got:#018x}, want {want:#018x}"
            );
        }
    }
}

#[test]
fn xoshiro256starstar_streams_are_pinned() {
    for (seed, golden) in SEEDS.iter().zip(XOSHIRO_GOLDEN.iter()) {
        let mut rng = HeronRng::from_seed(*seed);
        for (i, &want) in golden.iter().enumerate() {
            let got = rng.next_u64();
            assert_eq!(
                got, want,
                "xoshiro256** seed {seed:#x} output {i}: got {got:#018x}, want {want:#018x}"
            );
        }
    }
}

/// The derived distributions (floats, ranges, shuffles) sit on top of
/// the raw stream; pin one composite draw sequence so the *derivation*
/// layer is also covered by a golden value, not just the generator.
#[test]
fn derived_draw_sequence_is_pinned() {
    use heron_rng::{IndexedRandom, Rng, SliceRandom};
    let mut rng = HeronRng::from_seed(42);
    let f: f64 = rng.random();
    assert_eq!(f.to_bits(), 0x3FB5_780B_2E0C_2EC0, "f64 unit draw drifted");
    let i = rng.random_range(0..1000usize);
    assert_eq!(i, 378, "usize range draw drifted");
    let s: i64 = rng.random_range(-50..=50);
    assert_eq!(s, 18, "i64 inclusive range draw drifted");
    let mut v: Vec<u8> = (0..8).collect();
    v.shuffle(&mut rng);
    assert_eq!(
        v,
        vec![0, 1, 2, 5, 3, 4, 6, 7],
        "shuffle permutation drifted"
    );
    let &c = v.as_slice().choose(&mut rng).unwrap();
    assert_eq!(c, 4, "choose draw drifted");
}

/// Forked streams are pure functions of (seed, stream_id).
#[test]
fn fork_streams_are_pinned() {
    let root = HeronRng::from_seed(42);
    let mut f0 = root.fork(0);
    let mut f1 = root.fork(1);
    let a = f0.next_u64();
    let b = f1.next_u64();
    assert_ne!(a, b);
    // Re-derive: identical ids give identical streams.
    assert_eq!(root.fork(0).next_u64(), a);
    assert_eq!(root.fork(1).next_u64(), b);
}
