//! heron-scope: service schedule forensics for `heron-serve` runs
//! (DESIGN.md §12).
//!
//! A supervised tuning service answers *what* happened through its
//! manifest and *how healthy* it was through `pulse.json`; this crate
//! answers *where the time went*. From a run's deterministic facts —
//! submission order, per-attempt outcomes with simulated durations,
//! and the backoff policy — it reconstructs the **service schedule**:
//! per-worker occupancy timelines, per-job queue/run/backoff Gantt
//! segments, idle-gap accounting, and the **critical path** through
//! the makespan with per-segment CPM slack. Integer-nanosecond
//! arithmetic makes the critical-path sum equal the makespan exactly,
//! and the validator enforces that equality.
//!
//! Module map:
//!
//! * [`input`] — the deterministic run projection ([`ScopeInput`]);
//! * [`schedule`] — the canonical list-scheduler replay, binding
//!   predecessors, critical path, slack;
//! * [`report`] — `heron-scope-v1` document assembly and the text
//!   timeline renderer;
//! * [`schema`] — the structural validator with `$.path` errors.
//!
//! # Example
//!
//! ```
//! use heron_scope::{build_scope, validate_scope, ScopeAttempt, ScopeInput, ScopeJob};
//!
//! let input = ScopeInput {
//!     workers: 2,
//!     backoff_base_s: 0.5,
//!     jobs: vec![ScopeJob {
//!         id: "g1".to_string(),
//!         state: "completed".to_string(),
//!         attempts: vec![ScopeAttempt {
//!             outcome: "completed".to_string(),
//!             sim_ns: 2_000_000_000,
//!             rounds: 4,
//!         }],
//!         trace_jsonl: String::new(),
//!     }],
//! };
//! let doc = build_scope(&input);
//! validate_scope(&doc).unwrap();
//! assert_eq!(doc.get("makespan_ns").unwrap().as_u64(), Some(2_000_000_000));
//! ```

pub mod input;
pub mod report;
pub mod schedule;
pub mod schema;

pub use input::{ScopeAttempt, ScopeInput, ScopeJob};
pub use report::{build_scope, render_timeline, schedule_of, SCOPE_SCHEMA};
pub use schedule::{build_schedule, LaneStats, Phase, Schedule, Segment};
pub use schema::validate_scope;
