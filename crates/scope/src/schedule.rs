//! The schedule model: a deterministic reconstruction of how a
//! service run occupied its worker pool (DESIGN.md §12).
//!
//! The real supervisor schedules over OS threads, so real start times
//! are racy. The model replays the run's *deterministic facts* — each
//! attempt's simulated duration and the backoff policy — through a
//! canonical list scheduler instead: pending attempts are picked by
//! `(ready_ns, submission order)`, assigned to the earliest-free lane
//! (ties to the lowest index), and every attempt chain threads backoff
//! segments between its deaths and rebirths. All arithmetic is integer
//! nanoseconds, so the critical-path sum telescopes *exactly* to the
//! makespan — the validator checks equality, not closeness.
//!
//! Each run segment's **binding predecessor** is whichever constraint
//! actually held it back: the previous run on its lane (it waited in
//! queue), or its own backoff (it was ready the instant backoff
//! expired). Walking binding predecessors from the last-finishing run
//! yields the critical path, a contiguous chain from 0 to the
//! makespan. Slack comes from a standard CPM backward pass over the
//! job-chain and lane-succession edges; critical segments have zero.

use crate::input::ScopeInput;

/// What a segment of schedule time represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Ready but waiting for a free lane (no worker).
    Queue,
    /// Running on a lane.
    Run,
    /// Simulated recovery backoff between death and rebirth (no worker).
    Backoff,
}

impl Phase {
    /// The phase name as rendered into `scope.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Run => "run",
            Phase::Backoff => "backoff",
        }
    }
}

/// One reconstructed segment of schedule time.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Index into [`ScopeInput::jobs`] (submission order).
    pub job: usize,
    /// Attempt number the segment belongs to.
    pub attempt: u32,
    /// Queue, run, or backoff.
    pub phase: Phase,
    /// Lane for run segments; `None` for queue/backoff.
    pub worker: Option<usize>,
    /// Segment start, model nanoseconds.
    pub start_ns: u64,
    /// Segment end, model nanoseconds.
    pub end_ns: u64,
    /// CPM slack: how far the segment could slip without moving the
    /// makespan. Zero on the critical path.
    pub slack_ns: u64,
    /// Whether the segment is on the critical path.
    pub critical: bool,
}

impl Segment {
    /// Segment duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Per-lane occupancy accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// Nanoseconds the lane spent running attempts.
    pub busy_ns: u64,
    /// Nanoseconds the lane sat idle before the makespan.
    pub idle_ns: u64,
    /// Indices (into [`Schedule::segments`]) of this lane's run
    /// segments, in start order.
    pub runs: Vec<usize>,
}

/// The reconstructed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Every segment, in model-creation order (topological).
    pub segments: Vec<Segment>,
    /// Per-lane occupancy, lane 0 first.
    pub lanes: Vec<LaneStats>,
    /// Model makespan: the last run segment's end, nanoseconds.
    pub makespan_ns: u64,
    /// Indices (into [`Schedule::segments`]) of the critical path, in
    /// time order. Contiguous: starts at 0, ends at the makespan.
    pub critical: Vec<usize>,
}

/// The simulated backoff before attempt `k` (k ≥ 1), nanoseconds.
fn backoff_ns(base_s: f64, k: usize) -> u64 {
    (base_s * f64::powi(2.0, k as i32 - 1) * 1e9).round() as u64
}

/// Appends a segment and its bookkeeping rows, returning its index.
fn push(
    segments: &mut Vec<Segment>,
    succs: &mut Vec<Vec<usize>>,
    binding: &mut Vec<Option<usize>>,
    seg: Segment,
    pred: Option<usize>,
) -> usize {
    let idx = segments.len();
    segments.push(seg);
    succs.push(Vec::new());
    binding.push(pred);
    idx
}

/// Replays `input` through the canonical list scheduler.
pub fn build_schedule(input: &ScopeInput) -> Schedule {
    let workers = input.workers.max(1);
    let njobs = input.jobs.len();
    let mut free_at = vec![0u64; workers];
    let mut lane_last_run: Vec<Option<usize>> = vec![None; workers];
    let mut prev_run: Vec<Option<usize>> = vec![None; njobs];
    let mut segments: Vec<Segment> = Vec::new();
    // CPM edges (successor lists) and critical-walk predecessors, both
    // indexed like `segments`.
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut binding: Vec<Option<usize>> = Vec::new();

    // Pending attempts: (ready_ns, submission order, attempt index).
    let mut pending: Vec<(u64, usize, usize)> = input
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| !j.attempts.is_empty())
        .map(|(i, _)| (0u64, i, 0usize))
        .collect();

    while !pending.is_empty() {
        let pick = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(ready, seq, _))| (ready, seq))
            .map(|(i, _)| i)
            .expect("pending is non-empty");
        let (ready, job, attempt_idx) = pending.remove(pick);
        let attempt = attempt_idx as u32;
        let dur = input.jobs[job].attempts[attempt_idx].sim_ns;

        // Backoff segment: from the previous attempt's death to ready.
        let chain_pred = prev_run[job];
        let mut run_pred_if_ready = chain_pred;
        if attempt_idx > 0 {
            let chain_end = segments[chain_pred.expect("attempt > 0 has a predecessor")].end_ns;
            if ready > chain_end {
                let b = push(
                    &mut segments,
                    &mut succs,
                    &mut binding,
                    Segment {
                        job,
                        attempt,
                        phase: Phase::Backoff,
                        worker: None,
                        start_ns: chain_end,
                        end_ns: ready,
                        slack_ns: 0,
                        critical: false,
                    },
                    chain_pred,
                );
                succs[chain_pred.expect("checked above")].push(b);
                run_pred_if_ready = Some(b);
            }
        }

        // Lane assignment: earliest-free lane, ties to the lowest index.
        let lane = (0..workers)
            .min_by_key(|&l| (free_at[l], l))
            .expect("workers >= 1");
        let start = ready.max(free_at[lane]);
        let queue_idx = if start > ready {
            Some(push(
                &mut segments,
                &mut succs,
                &mut binding,
                Segment {
                    job,
                    attempt,
                    phase: Phase::Queue,
                    worker: None,
                    start_ns: ready,
                    end_ns: start,
                    slack_ns: 0,
                    critical: false,
                },
                None,
            ))
        } else {
            None
        };

        // The run's binding predecessor: the lane if it queued, its
        // backoff (or chain) if it started the instant it was ready.
        let run_pred = if start > ready {
            lane_last_run[lane]
        } else {
            run_pred_if_ready
        };
        let run_idx = push(
            &mut segments,
            &mut succs,
            &mut binding,
            Segment {
                job,
                attempt,
                phase: Phase::Run,
                worker: Some(lane),
                start_ns: start,
                end_ns: start + dur,
                slack_ns: 0,
                critical: false,
            },
            run_pred,
        );
        // CPM edges: chain predecessor → run, lane predecessor → run.
        if let Some(p) = run_pred_if_ready {
            succs[p].push(run_idx);
        }
        if let Some(p) = lane_last_run[lane] {
            succs[p].push(run_idx);
        }
        if let Some(q) = queue_idx {
            // A queue segment slips with its run: same slack, set below.
            succs[q].push(run_idx);
        }
        free_at[lane] = start + dur;
        lane_last_run[lane] = Some(run_idx);
        prev_run[job] = Some(run_idx);

        // Release the next attempt of the chain after its backoff.
        if attempt_idx + 1 < input.jobs[job].attempts.len() {
            let next_ready = start + dur + backoff_ns(input.backoff_base_s, attempt_idx + 1);
            pending.push((next_ready, job, attempt_idx + 1));
        }
    }

    let makespan_ns = segments
        .iter()
        .filter(|s| s.phase == Phase::Run)
        .map(|s| s.end_ns)
        .max()
        .unwrap_or(0);

    // CPM backward pass: creation order is topological (every edge
    // points forward), so one reverse sweep computes latest finishes.
    let mut latest_finish = vec![makespan_ns; segments.len()];
    for i in (0..segments.len()).rev() {
        for &s in &succs[i] {
            let latest_start = latest_finish[s] - segments[s].dur_ns();
            latest_finish[i] = latest_finish[i].min(latest_start);
        }
        segments[i].slack_ns = latest_finish[i] - segments[i].end_ns;
    }

    // Critical path: binding predecessors back from the last finisher.
    let mut critical = Vec::new();
    if let Some(last) = segments
        .iter()
        .enumerate()
        .filter(|(_, s)| s.phase == Phase::Run && s.end_ns == makespan_ns)
        .map(|(i, _)| i)
        .next()
    {
        let mut cursor = Some(last);
        while let Some(i) = cursor {
            critical.push(i);
            segments[i].critical = true;
            cursor = binding[i];
        }
        critical.reverse();
    }

    let lanes = (0..workers)
        .map(|l| {
            let runs: Vec<usize> = segments
                .iter()
                .enumerate()
                .filter(|(_, s)| s.phase == Phase::Run && s.worker == Some(l))
                .map(|(i, _)| i)
                .collect();
            let busy_ns: u64 = runs.iter().map(|&i| segments[i].dur_ns()).sum();
            LaneStats {
                busy_ns,
                idle_ns: makespan_ns - busy_ns,
                runs,
            }
        })
        .collect();

    Schedule {
        segments,
        lanes,
        makespan_ns,
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ScopeAttempt, ScopeJob};

    fn attempt(outcome: &str, sim_s: f64) -> ScopeAttempt {
        ScopeAttempt {
            outcome: outcome.to_string(),
            sim_ns: (sim_s * 1e9) as u64,
            rounds: 1,
        }
    }

    fn job(id: &str, state: &str, attempts: Vec<ScopeAttempt>) -> ScopeJob {
        ScopeJob {
            id: id.to_string(),
            state: state.to_string(),
            attempts,
            trace_jsonl: String::new(),
        }
    }

    fn critical_sum(s: &Schedule) -> u64 {
        s.critical.iter().map(|&i| s.segments[i].dur_ns()).sum()
    }

    fn assert_contiguous(s: &Schedule) {
        let mut cursor = 0;
        for &i in &s.critical {
            assert_eq!(s.segments[i].start_ns, cursor, "critical chain gap");
            cursor = s.segments[i].end_ns;
        }
        assert_eq!(cursor, s.makespan_ns, "critical chain misses makespan");
        assert_eq!(critical_sum(s), s.makespan_ns);
    }

    #[test]
    fn single_job_chain_threads_backoffs_into_the_critical_path() {
        // crash after 2s, backoff 0.5s, rerun 3s: makespan 5.5s.
        let input = ScopeInput {
            workers: 2,
            backoff_base_s: 0.5,
            jobs: vec![job(
                "a",
                "completed",
                vec![attempt("crashed", 2.0), attempt("completed", 3.0)],
            )],
        };
        let s = build_schedule(&input);
        assert_eq!(s.makespan_ns, 5_500_000_000);
        let phases: Vec<Phase> = s.segments.iter().map(|x| x.phase).collect();
        assert_eq!(phases, vec![Phase::Run, Phase::Backoff, Phase::Run]);
        assert_eq!(s.critical.len(), 3, "run + backoff + run all critical");
        assert_contiguous(&s);
        assert!(s.segments.iter().all(|x| x.slack_ns == 0 || !x.critical));
    }

    #[test]
    fn contention_queues_jobs_and_binds_them_to_the_lane() {
        // One lane, two jobs: the second queues behind the first.
        let input = ScopeInput {
            workers: 1,
            backoff_base_s: 0.5,
            jobs: vec![
                job("a", "completed", vec![attempt("completed", 4.0)]),
                job("b", "completed", vec![attempt("completed", 2.0)]),
            ],
        };
        let s = build_schedule(&input);
        assert_eq!(s.makespan_ns, 6_000_000_000);
        let queue: Vec<&Segment> = s
            .segments
            .iter()
            .filter(|x| x.phase == Phase::Queue)
            .collect();
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].job, 1);
        assert_eq!(queue[0].start_ns, 0);
        assert_eq!(queue[0].end_ns, 4_000_000_000);
        // Critical path: a's run then b's run, no queue segments.
        assert!(s
            .critical
            .iter()
            .all(|&i| s.segments[i].phase != Phase::Queue));
        assert_contiguous(&s);
        assert_eq!(s.lanes[0].busy_ns, 6_000_000_000);
        assert_eq!(s.lanes[0].idle_ns, 0);
    }

    #[test]
    fn off_path_jobs_carry_slack() {
        // Two lanes: a runs 5s (critical), b runs 2s with 3s of slack.
        let input = ScopeInput {
            workers: 2,
            backoff_base_s: 0.5,
            jobs: vec![
                job("a", "completed", vec![attempt("completed", 5.0)]),
                job("b", "completed", vec![attempt("completed", 2.0)]),
            ],
        };
        let s = build_schedule(&input);
        assert_eq!(s.makespan_ns, 5_000_000_000);
        let b_run = s
            .segments
            .iter()
            .find(|x| x.job == 1 && x.phase == Phase::Run)
            .expect("b ran");
        assert_eq!(b_run.slack_ns, 3_000_000_000);
        assert!(!b_run.critical);
        assert_contiguous(&s);
        assert_eq!(s.lanes[1].busy_ns, 2_000_000_000);
        assert_eq!(s.lanes[1].idle_ns, 3_000_000_000);
    }

    #[test]
    fn empty_runs_and_never_started_jobs_are_harmless() {
        let input = ScopeInput {
            workers: 2,
            backoff_base_s: 0.5,
            jobs: vec![job("a", "queued", Vec::new())],
        };
        let s = build_schedule(&input);
        assert_eq!(s.makespan_ns, 0);
        assert!(s.segments.is_empty());
        assert!(s.critical.is_empty());
        assert_eq!(s.lanes.len(), 2);
    }

    #[test]
    fn the_model_is_a_pure_function_of_its_input() {
        let input = ScopeInput {
            workers: 2,
            backoff_base_s: 0.5,
            jobs: vec![
                job(
                    "a",
                    "completed",
                    vec![attempt("hung", 1.5), attempt("completed", 2.5)],
                ),
                job("b", "completed", vec![attempt("completed", 4.0)]),
                job("c", "completed", vec![attempt("completed", 1.0)]),
            ],
        };
        let s1 = build_schedule(&input);
        let s2 = build_schedule(&input);
        assert_eq!(s1, s2);
        assert_contiguous(&s1);
    }
}
