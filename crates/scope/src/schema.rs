//! Structural validator for `heron-scope-v1` documents.
//!
//! `heron_scope --check` runs every input file through
//! [`validate_scope`] before rendering, so a truncated or hand-edited
//! `scope.json` fails with a named path instead of a garbled timeline.
//! Beyond structure, the validator enforces the document's central
//! invariant: the critical path is a contiguous chain from 0 to the
//! makespan whose segment durations sum *exactly* to `makespan_ns`.

use heron_trace::Json;

use crate::report::SCOPE_SCHEMA;

fn want<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{path}: missing member `{key}`"))
}

fn want_num(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    want(doc, path, key)?
        .as_f64()
        .ok_or_else(|| format!("{path}.{key}: expected a number"))
}

fn want_str<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a str, String> {
    want(doc, path, key)?
        .as_str()
        .ok_or_else(|| format!("{path}.{key}: expected a string"))
}

fn want_arr<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a [Json], String> {
    want(doc, path, key)?
        .as_arr()
        .ok_or_else(|| format!("{path}.{key}: expected an array"))
}

fn want_phase(doc: &Json, path: &str) -> Result<String, String> {
    let phase = want_str(doc, path, "phase")?;
    if !matches!(phase, "queue" | "run" | "backoff") {
        return Err(format!("{path}.phase: unknown phase `{phase}`"));
    }
    Ok(phase.to_string())
}

fn want_span(doc: &Json, path: &str) -> Result<(u64, u64), String> {
    let start = want_num(doc, path, "start_ns")? as u64;
    let end = want_num(doc, path, "end_ns")? as u64;
    if end < start {
        return Err(format!("{path}: end_ns {end} precedes start_ns {start}"));
    }
    Ok((start, end))
}

/// Validates the structure and invariants of a `scope.json` document.
///
/// # Errors
/// A message naming the offending JSON path.
pub fn validate_scope(doc: &Json) -> Result<(), String> {
    let schema = want_str(doc, "$", "schema")?;
    if schema != SCOPE_SCHEMA {
        return Err(format!(
            "$.schema: expected `{SCOPE_SCHEMA}`, found `{schema}`"
        ));
    }
    want_num(doc, "$", "workers")?;
    let makespan_ns = want_num(doc, "$", "makespan_ns")? as u64;
    want_num(doc, "$", "makespan_s")?;
    let jobs = want_arr(doc, "$", "jobs")?;
    for (i, job) in jobs.iter().enumerate() {
        let path = format!("$.jobs[{i}]");
        want_str(job, &path, "id")?;
        want_str(job, &path, "state")?;
        for key in ["queue_ns", "run_ns", "backoff_ns"] {
            want_num(job, &path, key)?;
        }
        for (k, seg) in want_arr(job, &path, "segments")?.iter().enumerate() {
            let seg_path = format!("{path}.segments[{k}]");
            let phase = want_phase(seg, &seg_path)?;
            want_span(seg, &seg_path)?;
            want_num(seg, &seg_path, "attempt")?;
            want_num(seg, &seg_path, "slack_ns")?;
            match (phase.as_str(), want(seg, &seg_path, "worker")?) {
                ("run", Json::Num(_)) | ("queue" | "backoff", Json::Null) => {}
                ("run", _) => return Err(format!("{seg_path}.worker: run needs a lane")),
                _ => {
                    return Err(format!(
                        "{seg_path}.worker: `{phase}` segments carry no lane"
                    ))
                }
            }
        }
        let profile = want(job, &path, "profile")?;
        let profile_path = format!("{path}.profile");
        want_num(profile, &profile_path, "events")?;
        want_num(profile, &profile_path, "points")?;
        for (k, span) in want_arr(profile, &profile_path, "top_spans")?
            .iter()
            .enumerate()
        {
            let span_path = format!("{profile_path}.top_spans[{k}]");
            want_str(span, &span_path, "name")?;
            want_num(span, &span_path, "count")?;
            want_num(span, &span_path, "total_ns")?;
        }
    }
    for (i, lane) in want_arr(doc, "$", "workers_timeline")?.iter().enumerate() {
        let path = format!("$.workers_timeline[{i}]");
        let busy = want_num(lane, &path, "busy_ns")? as u64;
        let idle = want_num(lane, &path, "idle_ns")? as u64;
        want_num(lane, &path, "worker")?;
        want_num(lane, &path, "utilization")?;
        if busy + idle != makespan_ns {
            return Err(format!(
                "{path}: busy {busy} + idle {idle} != makespan {makespan_ns}"
            ));
        }
        for (k, seg) in want_arr(lane, &path, "segments")?.iter().enumerate() {
            let seg_path = format!("{path}.segments[{k}]");
            want_str(seg, &seg_path, "job")?;
            want_num(seg, &seg_path, "attempt")?;
            want_span(seg, &seg_path)?;
        }
    }
    // The central invariant: the critical path is contiguous from 0 to
    // the makespan and sums to it exactly.
    let critical = want_arr(doc, "$", "critical_path")?;
    if critical.is_empty() && makespan_ns != 0 {
        return Err("$.critical_path: empty with a non-zero makespan".to_string());
    }
    let mut cursor = 0u64;
    let mut sum = 0u64;
    for (i, seg) in critical.iter().enumerate() {
        let path = format!("$.critical_path[{i}]");
        want_str(seg, &path, "job")?;
        want_num(seg, &path, "attempt")?;
        let phase = want_phase(seg, &path)?;
        if phase == "queue" {
            return Err(format!("{path}: queue segments are never critical"));
        }
        let (start, end) = want_span(seg, &path)?;
        if start != cursor {
            return Err(format!(
                "{path}: chain gap — starts at {start}, previous ended at {cursor}"
            ));
        }
        cursor = end;
        sum += end - start;
    }
    if cursor != makespan_ns {
        return Err(format!(
            "$.critical_path: chain ends at {cursor}, makespan is {makespan_ns}"
        ));
    }
    let declared = want_num(doc, "$", "critical_sum_ns")? as u64;
    if declared != sum {
        return Err(format!(
            "$.critical_sum_ns: declared {declared}, segments sum to {sum}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ScopeAttempt, ScopeInput, ScopeJob};
    use crate::report::build_scope;
    use heron_trace::json::parse;

    fn sample() -> Json {
        build_scope(&ScopeInput {
            workers: 1,
            backoff_base_s: 0.5,
            jobs: vec![ScopeJob {
                id: "a".to_string(),
                state: "completed".to_string(),
                attempts: vec![
                    ScopeAttempt {
                        outcome: "crashed".to_string(),
                        sim_ns: 1_000_000_000,
                        rounds: 2,
                    },
                    ScopeAttempt {
                        outcome: "completed".to_string(),
                        sim_ns: 500_000_000,
                        rounds: 3,
                    },
                ],
                trace_jsonl: String::new(),
            }],
        })
    }

    #[test]
    fn accepts_generated_documents_and_roundtrips() {
        let doc = sample();
        validate_scope(&doc).expect("valid");
        let reparsed = parse(&doc.render_pretty()).expect("parses");
        validate_scope(&reparsed).expect("still valid");
    }

    #[test]
    fn rejects_structural_damage_with_named_paths() {
        let base = sample().render();
        for (damage, want_msg) in [
            ("heron-scope-v1", "heron-scope-v0", "$.schema"),
            ("\"makespan_ns\":2", "\"makespan_ns\":3", "makespan"),
            (
                "\"critical_sum_ns\":2",
                "\"critical_sum_ns\":1",
                "critical_sum_ns",
            ),
            ("\"phase\":\"backoff\"", "\"phase\":\"nap\"", "phase"),
        ]
        .map(|(from, to, want)| (base.replace(from, to), want))
        {
            let doc = parse(&damage).expect("still JSON");
            let err = validate_scope(&doc).unwrap_err();
            assert!(err.contains(want_msg), "want `{want_msg}` in `{err}`");
        }
    }
}
