//! The deterministic projection of a finished service run that the
//! scope engine rebuilds the schedule from.
//!
//! Everything here is a deterministic function of (job script, seeds,
//! chaos plan): submission order, per-attempt outcomes with their
//! simulated durations, and the per-job sliced session trace. Nothing
//! scheduling-dependent (real worker ids, event interleavings, host
//! wall-clock) enters, which is what makes `scope.json` byte-identical
//! across reruns of the same script.

/// One settled worker attempt: how it ended and how much simulated
/// time it consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeAttempt {
    /// `completed`, `preempted`, `crashed`, `hung`, or `failed`.
    pub outcome: String,
    /// Simulated wall-clock the attempt consumed before settling, ns.
    pub sim_ns: u64,
    /// Lifetime rounds when the attempt settled.
    pub rounds: u64,
}

/// One admitted job's deterministic scheduling facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeJob {
    /// Job id.
    pub id: String,
    /// Final lifecycle state, rendered (`completed`, `quarantined`, …).
    pub state: String,
    /// Every attempt in attempt order (empty for jobs that never ran).
    pub attempts: Vec<ScopeAttempt>,
    /// The job's sliced session trace (per-job profile source; empty
    /// when unavailable).
    pub trace_jsonl: String,
}

/// The whole run, ready for [`crate::build_scope`]. Jobs MUST be in
/// submission order — the model's tie-breaker.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeInput {
    /// Worker pool size the schedule is reconstructed over.
    pub workers: usize,
    /// Recovery backoff base in simulated seconds (doubles per retry).
    pub backoff_base_s: f64,
    /// Every admitted job in submission order.
    pub jobs: Vec<ScopeJob>,
}
