//! `scope.json` assembly and the text timeline renderer.
//!
//! [`build_scope`] folds the reconstructed [`crate::schedule::Schedule`]
//! plus per-job trace profiles into one `heron-scope-v1` document;
//! [`render_timeline`] draws it as a fixed-width per-worker occupancy
//! chart with a critical-path row. Both are pure functions of the
//! input, so two same-seed service runs render byte-identical output.

use heron_trace::{check_trace, Json};

use crate::input::ScopeInput;
use crate::schedule::{build_schedule, Phase, Schedule, Segment};

/// The schema identifier stamped into every document.
pub const SCOPE_SCHEMA: &str = "heron-scope-v1";

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn segment_json(seg: &Segment) -> Json {
    Json::Obj(vec![
        ("phase".to_string(), s(seg.phase.as_str())),
        (
            "worker".to_string(),
            seg.worker.map_or(Json::Null, |w| num(w as f64)),
        ),
        ("attempt".to_string(), num(f64::from(seg.attempt))),
        ("start_ns".to_string(), num(seg.start_ns as f64)),
        ("end_ns".to_string(), num(seg.end_ns as f64)),
        ("slack_ns".to_string(), num(seg.slack_ns as f64)),
    ])
}

/// Per-job span profile from its sliced session trace: event counts
/// and the top-3 span names by total duration.
fn profile_json(trace_jsonl: &str) -> Json {
    let summary = check_trace(trace_jsonl).unwrap_or_default();
    let mut by_name: Vec<(String, u64, u64)> = Vec::new();
    for span in &summary.spans {
        match by_name.iter_mut().find(|(n, _, _)| *n == span.name) {
            Some(row) => {
                row.1 += 1;
                row.2 += span.dur_ns();
            }
            None => by_name.push((span.name.clone(), 1, span.dur_ns())),
        }
    }
    by_name.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    by_name.truncate(3);
    let top = by_name
        .into_iter()
        .map(|(name, count, total_ns)| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(name)),
                ("count".to_string(), num(count as f64)),
                ("total_ns".to_string(), num(total_ns as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("events".to_string(), num(summary.events as f64)),
        ("points".to_string(), num(summary.points as f64)),
        ("top_spans".to_string(), Json::Arr(top)),
    ])
}

/// Assembles the `scope.json` document for a finished service run.
pub fn build_scope(input: &ScopeInput) -> Json {
    let schedule = build_schedule(input);
    let makespan_ns = schedule.makespan_ns;
    let jobs: Vec<Json> = input
        .jobs
        .iter()
        .enumerate()
        .map(|(j, job)| {
            let segs: Vec<&Segment> = schedule.segments.iter().filter(|x| x.job == j).collect();
            let phase_total = |p: Phase| -> u64 {
                segs.iter()
                    .filter(|x| x.phase == p)
                    .map(|x| x.dur_ns())
                    .sum()
            };
            Json::Obj(vec![
                ("id".to_string(), s(&job.id)),
                ("state".to_string(), s(&job.state)),
                (
                    "queue_ns".to_string(),
                    num(phase_total(Phase::Queue) as f64),
                ),
                ("run_ns".to_string(), num(phase_total(Phase::Run) as f64)),
                (
                    "backoff_ns".to_string(),
                    num(phase_total(Phase::Backoff) as f64),
                ),
                (
                    "segments".to_string(),
                    Json::Arr(segs.iter().map(|x| segment_json(x)).collect()),
                ),
                ("profile".to_string(), profile_json(&job.trace_jsonl)),
            ])
        })
        .collect();
    let workers_timeline: Vec<Json> = schedule
        .lanes
        .iter()
        .enumerate()
        .map(|(l, lane)| {
            let utilization = if makespan_ns > 0 {
                lane.busy_ns as f64 / makespan_ns as f64
            } else {
                0.0
            };
            let runs = lane
                .runs
                .iter()
                .map(|&i| {
                    let seg = &schedule.segments[i];
                    Json::Obj(vec![
                        ("job".to_string(), s(&input.jobs[seg.job].id)),
                        ("attempt".to_string(), num(f64::from(seg.attempt))),
                        ("start_ns".to_string(), num(seg.start_ns as f64)),
                        ("end_ns".to_string(), num(seg.end_ns as f64)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("worker".to_string(), num(l as f64)),
                ("busy_ns".to_string(), num(lane.busy_ns as f64)),
                ("idle_ns".to_string(), num(lane.idle_ns as f64)),
                ("utilization".to_string(), num(utilization)),
                ("segments".to_string(), Json::Arr(runs)),
            ])
        })
        .collect();
    let critical: Vec<Json> = schedule
        .critical
        .iter()
        .map(|&i| {
            let seg = &schedule.segments[i];
            Json::Obj(vec![
                ("job".to_string(), s(&input.jobs[seg.job].id)),
                ("phase".to_string(), s(seg.phase.as_str())),
                ("attempt".to_string(), num(f64::from(seg.attempt))),
                (
                    "worker".to_string(),
                    seg.worker.map_or(Json::Null, |w| num(w as f64)),
                ),
                ("start_ns".to_string(), num(seg.start_ns as f64)),
                ("end_ns".to_string(), num(seg.end_ns as f64)),
            ])
        })
        .collect();
    let critical_sum_ns: u64 = schedule
        .critical
        .iter()
        .map(|&i| schedule.segments[i].dur_ns())
        .sum();
    Json::Obj(vec![
        ("schema".to_string(), s(SCOPE_SCHEMA)),
        ("workers".to_string(), num(input.workers.max(1) as f64)),
        ("makespan_ns".to_string(), num(makespan_ns as f64)),
        ("makespan_s".to_string(), num(makespan_ns as f64 / 1e9)),
        ("jobs".to_string(), Json::Arr(jobs)),
        ("workers_timeline".to_string(), Json::Arr(workers_timeline)),
        ("critical_path".to_string(), Json::Arr(critical)),
        ("critical_sum_ns".to_string(), num(critical_sum_ns as f64)),
    ])
}

/// Convenience: the schedule behind a document (for assertions).
pub fn schedule_of(input: &ScopeInput) -> Schedule {
    build_schedule(input)
}

const SYMBOLS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn symbol(job_index: usize) -> char {
    SYMBOLS[job_index % SYMBOLS.len()] as char
}

fn paint(row: &mut [u8], start_ns: f64, end_ns: f64, makespan_ns: f64, ch: u8) {
    let width = row.len();
    if makespan_ns <= 0.0 || width == 0 {
        return;
    }
    let a = ((start_ns / makespan_ns) * width as f64).floor() as usize;
    let b = ((end_ns / makespan_ns) * width as f64).ceil() as usize;
    for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
        *cell = ch;
    }
}

/// Renders a `scope.json` document as a fixed-width text timeline:
/// one row per worker (letters = jobs, `.` = idle) plus a critical-path
/// row (`~` = backoff) and a legend.
pub fn render_timeline(doc: &Json, width: usize) -> String {
    let width = width.clamp(10, 400);
    let makespan_ns = doc.get("makespan_ns").and_then(Json::as_f64).unwrap_or(0.0);
    let makespan_s = doc.get("makespan_s").and_then(Json::as_f64).unwrap_or(0.0);
    let jobs: &[Json] = doc.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
    let job_index = |id: &str| {
        jobs.iter()
            .position(|j| j.get("id").and_then(Json::as_str) == Some(id))
    };
    let mut out = String::new();
    out.push_str(&format!(
        "heron-scope timeline  makespan={makespan_s:.3}s  workers={}\n",
        doc.get("workers").and_then(Json::as_f64).unwrap_or(0.0) as usize
    ));
    for lane in doc
        .get("workers_timeline")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        let mut row = vec![b'.'; width];
        for seg in lane.get("segments").and_then(Json::as_arr).unwrap_or(&[]) {
            let id = seg.get("job").and_then(Json::as_str).unwrap_or("");
            let ch = job_index(id).map_or(b'?', |i| symbol(i) as u8);
            paint(
                &mut row,
                seg.get("start_ns").and_then(Json::as_f64).unwrap_or(0.0),
                seg.get("end_ns").and_then(Json::as_f64).unwrap_or(0.0),
                makespan_ns,
                ch,
            );
        }
        let w = lane.get("worker").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let util = lane
            .get("utilization")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "w{w} |{}| {:5.1}% busy\n",
            String::from_utf8_lossy(&row),
            util * 100.0
        ));
    }
    let mut cp = vec![b'.'; width];
    for seg in doc
        .get("critical_path")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        let phase = seg.get("phase").and_then(Json::as_str).unwrap_or("");
        let id = seg.get("job").and_then(Json::as_str).unwrap_or("");
        let ch = if phase == "backoff" {
            b'~'
        } else {
            job_index(id).map_or(b'?', |i| symbol(i) as u8)
        };
        paint(
            &mut cp,
            seg.get("start_ns").and_then(Json::as_f64).unwrap_or(0.0),
            seg.get("end_ns").and_then(Json::as_f64).unwrap_or(0.0),
            makespan_ns,
            ch,
        );
    }
    out.push_str(&format!(
        "cp |{}| critical path (~ = backoff)\n",
        String::from_utf8_lossy(&cp)
    ));
    for (i, job) in jobs.iter().enumerate() {
        let id = job.get("id").and_then(Json::as_str).unwrap_or("?");
        let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!("   {} = {id} ({state})\n", symbol(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ScopeAttempt, ScopeJob};
    use crate::schema::validate_scope;

    fn sample() -> ScopeInput {
        let tracer = heron_trace::Tracer::manual();
        for _ in 0..3 {
            let _step = tracer.span("tuner.step");
            {
                let _m = tracer.span("measure.batch");
                tracer.advance_s(0.2);
            }
            tracer.advance_s(0.3);
        }
        ScopeInput {
            workers: 2,
            backoff_base_s: 0.5,
            jobs: vec![
                ScopeJob {
                    id: "g1".to_string(),
                    state: "completed".to_string(),
                    attempts: vec![
                        ScopeAttempt {
                            outcome: "crashed".to_string(),
                            sim_ns: 1_500_000_000,
                            rounds: 2,
                        },
                        ScopeAttempt {
                            outcome: "completed".to_string(),
                            sim_ns: 2_000_000_000,
                            rounds: 4,
                        },
                    ],
                    trace_jsonl: tracer.to_jsonl(),
                },
                ScopeJob {
                    id: "g2".to_string(),
                    state: "completed".to_string(),
                    attempts: vec![ScopeAttempt {
                        outcome: "completed".to_string(),
                        sim_ns: 1_000_000_000,
                        rounds: 2,
                    }],
                    trace_jsonl: String::new(),
                },
            ],
        }
    }

    #[test]
    fn documents_are_deterministic_and_validate() {
        let input = sample();
        let a = build_scope(&input).render_pretty();
        let b = build_scope(&input).render_pretty();
        assert_eq!(a, b, "assembly is pure");
        let doc = build_scope(&input);
        validate_scope(&doc).expect("document validates");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCOPE_SCHEMA));
        let makespan = doc.get("makespan_ns").and_then(Json::as_u64).unwrap();
        let sum = doc.get("critical_sum_ns").and_then(Json::as_u64).unwrap();
        assert_eq!(sum, makespan, "critical path telescopes to the makespan");
    }

    #[test]
    fn profiles_surface_the_hottest_spans() {
        let doc = build_scope(&sample());
        let jobs = doc.get("jobs").and_then(Json::as_arr).unwrap();
        let profile = jobs[0].get("profile").unwrap();
        assert_eq!(profile.get("points").and_then(Json::as_u64), Some(0));
        let top = profile.get("top_spans").and_then(Json::as_arr).unwrap();
        assert_eq!(
            top[0].get("name").and_then(Json::as_str),
            Some("tuner.step"),
            "outermost span dominates total time"
        );
        // The traceless job still carries a (zeroed) profile.
        let empty = jobs[1].get("profile").unwrap();
        assert_eq!(empty.get("events").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn timelines_paint_lanes_and_the_critical_path() {
        let doc = build_scope(&sample());
        let text = render_timeline(&doc, 40);
        assert_eq!(text, render_timeline(&doc, 40), "rendering is pure");
        assert!(text.contains("heron-scope timeline"));
        assert!(text.contains("w0 |"));
        assert!(text.contains("w1 |"));
        assert!(text.contains("cp |"));
        assert!(text.contains('~'), "backoff appears on the critical row");
        assert!(text.contains("A = g1"));
        assert!(text.contains("B = g2"));
    }
}
