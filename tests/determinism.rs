//! Workspace determinism regression tests: identical seeds must give
//! byte-identical tuning traces and solver outputs; different seeds must
//! diverge. Guards the "Zero-dependency & determinism policy" (DESIGN.md) —
//! any platform-dependent or hash-order-dependent randomness in the stack
//! (RandSAT, CGA explorer, cost model, measurer) trips these tests.

use heron::core::tuner::{TuneConfig, TuneResult, Tuner};
use heron::prelude::*;
use heron_rng::HeronRng;

fn space() -> GeneratedSpace {
    let dag = heron::tensor::ops::gemm(384, 384, 384);
    SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "det")
        .expect("generates")
}

/// Serialises everything observable about a tuning session into one
/// string, so equality means "the full trace is identical", not merely
/// "the final score happens to match".
fn record(result: &TuneResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "best_gflops={:.17e} best_latency_s={:.17e} valid={} invalid={}",
        result.best_gflops, result.best_latency_s, result.valid_trials, result.invalid_trials
    );
    if let Some(sol) = &result.best_solution {
        let _ = writeln!(
            out,
            "best_solution={:?} fp={:#018x}",
            sol.values(),
            sol.fingerprint()
        );
    }
    if let Some(k) = &result.best_kernel {
        let _ = writeln!(out, "best_kernel={k:?}");
    }
    for (i, v) in result.curve.iter().enumerate() {
        let _ = writeln!(out, "curve[{i}]={v:.17e}");
    }
    for it in &result.iterations {
        let _ = writeln!(out, "iter={it:?}");
    }
    out
}

fn tune(seed: u64) -> String {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(24),
        seed,
    );
    record(&tuner.run())
}

/// Two full tuning sessions with the same seed produce byte-identical
/// best-schedule records (solution vector, kernel, curve, per-iteration
/// stats) — across generation, RandSAT, the GBDT cost model, and CGA.
#[test]
fn tuner_runs_are_reproducible() {
    let a = tune(7);
    let b = tune(7);
    assert_eq!(a, b, "same-seed tuning traces diverged");
}

/// Different seeds explore differently: traces must not collide. (A
/// collision would mean the seed is being ignored somewhere.)
#[test]
fn tuner_runs_diverge_across_seeds() {
    let a = tune(7);
    let b = tune(8);
    assert_ne!(a, b, "different seeds gave identical tuning traces");
}

/// RandSAT (constraint-guided random sampling) is a pure function of
/// (CSP, seed): same seed, same solutions, in the same order.
#[test]
fn rand_sat_is_reproducible() {
    let s = space();
    let sample = |seed: u64| -> Vec<Vec<i64>> {
        let mut rng = HeronRng::from_seed(seed);
        heron::csp::rand_sat(&s.csp, &mut rng, 8)
            .iter()
            .map(|sol| sol.values().to_vec())
            .collect()
    };
    let a = sample(11);
    let b = sample(11);
    assert_eq!(a, b, "same-seed RandSAT outputs diverged");
    assert_eq!(a.len(), 8);

    let c = sample(12);
    assert_ne!(a, c, "different seeds gave identical RandSAT outputs");
}
