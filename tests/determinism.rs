//! Workspace determinism regression tests: identical seeds must give
//! byte-identical tuning traces and solver outputs; different seeds must
//! diverge. Guards the "Zero-dependency & determinism policy" (DESIGN.md) —
//! any platform-dependent or hash-order-dependent randomness in the stack
//! (RandSAT, CGA explorer, cost model, measurer) trips these tests.

use heron::core::tuner::{TuneConfig, TuneResult, Tuner};
use heron::core::TuneCheckpoint;
use heron::dla::FaultPlan;
use heron::prelude::*;
use heron_rng::HeronRng;

fn space() -> GeneratedSpace {
    let dag = heron::tensor::ops::gemm(384, 384, 384);
    SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "det")
        .expect("generates")
}

/// Serialises everything observable about a tuning session into one
/// string, so equality means "the full trace is identical", not merely
/// "the final score happens to match".
fn record(result: &TuneResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "best_gflops={:.17e} best_latency_s={:.17e} valid={} invalid={}",
        result.best_gflops, result.best_latency_s, result.valid_trials, result.invalid_trials
    );
    if let Some(sol) = &result.best_solution {
        let _ = writeln!(
            out,
            "best_solution={:?} fp={:#018x}",
            sol.values(),
            sol.fingerprint()
        );
    }
    if let Some(k) = &result.best_kernel {
        let _ = writeln!(out, "best_kernel={k:?}");
    }
    for (i, v) in result.curve.iter().enumerate() {
        let _ = writeln!(out, "curve[{i}]={v:.17e}");
    }
    for it in &result.iterations {
        let _ = writeln!(out, "iter={it:?}");
    }
    let _ = writeln!(
        out,
        "retried={} retries={} quarantined={} timeouts={} termination={}",
        result.retried_trials,
        result.total_retries,
        result.quarantined,
        result.timeout_trials,
        result.termination
    );
    for (tag, n) in &result.error_counts {
        let _ = writeln!(out, "error[{tag}]={n}");
    }
    out
}

fn tune(seed: u64) -> String {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(24),
        seed,
    );
    record(&tuner.run())
}

/// Two full tuning sessions with the same seed produce byte-identical
/// best-schedule records (solution vector, kernel, curve, per-iteration
/// stats) — across generation, RandSAT, the GBDT cost model, and CGA.
#[test]
fn tuner_runs_are_reproducible() {
    let a = tune(7);
    let b = tune(7);
    assert_eq!(a, b, "same-seed tuning traces diverged");
}

/// Different seeds explore differently: traces must not collide. (A
/// collision would mean the seed is being ignored somewhere.)
#[test]
fn tuner_runs_diverge_across_seeds() {
    let a = tune(7);
    let b = tune(8);
    assert_ne!(a, b, "different seeds gave identical tuning traces");
}

fn faulty_tune(seed: u64, rate: f64, trials: usize) -> TuneResult {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(trials),
        seed,
    )
    .with_faults(FaultPlan::uniform(seed, rate));
    tuner.run()
}

/// Fault injection is part of the deterministic trace: the same seed and
/// the same `FaultPlan` reproduce every injected timeout, hang, retry and
/// quarantine byte-for-byte; a different fault seed diverges.
#[test]
fn fault_injection_is_deterministic() {
    let a = record(&faulty_tune(21, 0.25, 24));
    let b = record(&faulty_tune(21, 0.25, 24));
    assert_eq!(a, b, "same-seed faulty tuning traces diverged");

    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(24),
        21,
    )
    .with_faults(FaultPlan::uniform(99, 0.25));
    let c = record(&tuner.run());
    assert_ne!(a, c, "different fault seeds gave identical traces");
}

/// Checkpoint/resume is exact: killing a session at an iteration boundary,
/// serialising the checkpoint through its text format, and resuming in a
/// fresh `Tuner` reproduces the uninterrupted run's full trace — best
/// solution, curve and resilience counters included.
#[test]
fn checkpoint_resume_matches_uninterrupted_run() {
    let seed = 13;
    let rate = 0.2;
    let config = TuneConfig::quick(32);

    // Uninterrupted reference run.
    let full = record(&faulty_tune(seed, rate, 32));

    // Kill at ~half the budget, checkpoint, roundtrip through text.
    let mut first = Tuner::new(space(), Measurer::new(heron::dla::v100()), config, seed)
        .with_faults(FaultPlan::uniform(seed, rate));
    let finished = first.run_until(16);
    assert!(!finished, "32-trial session must not finish by trial 16");
    assert!(first.trials_done() >= 16);
    let text = first.checkpoint().to_text();
    let ckpt = TuneCheckpoint::from_text(&text).expect("checkpoint roundtrips");

    // Resume in a brand-new tuner and finish the budget.
    let mut second = Tuner::resume(
        space(),
        Measurer::new(heron::dla::v100()),
        config,
        FaultPlan::uniform(seed, rate),
        &ckpt,
    )
    .expect("checkpoint applies to the same space");
    let resumed = record(&second.run());

    assert_eq!(
        resumed, full,
        "resumed trace diverged from uninterrupted run"
    );
}

/// At a 20% transient-fault rate the session still completes every trial,
/// quarantines repeat offenders, and finds a valid program.
#[test]
fn faulty_sessions_complete_and_quarantine() {
    let result = faulty_tune(17, 0.2, 24);
    assert_eq!(result.curve.len(), 24, "all trials must complete");
    assert!(result.best_gflops > 0.0, "{}", result.report());
    assert!(
        result.retried_trials > 0 || result.quarantined > 0,
        "a 20% fault rate must leave traces: {}",
        result.report()
    );
    assert!(
        !result.error_counts.is_empty(),
        "injected faults must be accounted"
    );
}

/// RandSAT (constraint-guided random sampling) is a pure function of
/// (CSP, seed): same seed, same solutions, in the same order.
#[test]
fn rand_sat_is_reproducible() {
    let s = space();
    let sample = |seed: u64| -> Vec<Vec<i64>> {
        let mut rng = HeronRng::from_seed(seed);
        heron::csp::rand_sat(&s.csp, &mut rng, 8)
            .iter()
            .map(|sol| sol.values().to_vec())
            .collect()
    };
    let a = sample(11);
    let b = sample(11);
    assert_eq!(a, b, "same-seed RandSAT outputs diverged");
    assert_eq!(a.len(), 8);

    let c = sample(12);
    assert_ne!(a, c, "different seeds gave identical RandSAT outputs");
}
