//! Workspace determinism regression tests: identical seeds must give
//! byte-identical tuning traces and solver outputs; different seeds must
//! diverge. Guards the "Zero-dependency & determinism policy" (DESIGN.md) —
//! any platform-dependent or hash-order-dependent randomness in the stack
//! (RandSAT, CGA explorer, cost model, measurer) trips these tests.

use heron::core::tuner::{TuneConfig, TuneResult, Tuner};
use heron::core::TuneCheckpoint;
use heron::dla::FaultPlan;
use heron::prelude::*;
use heron::trace::{check_trace, normalize_jsonl, Tracer};
use heron_rng::HeronRng;

fn space() -> GeneratedSpace {
    let dag = heron::tensor::ops::gemm(384, 384, 384);
    SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "det")
        .expect("generates")
}

/// Serialises everything observable about a tuning session into one
/// string, so equality means "the full trace is identical", not merely
/// "the final score happens to match".
fn record(result: &TuneResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "best_gflops={:.17e} best_latency_s={:.17e} valid={} invalid={}",
        result.best_gflops, result.best_latency_s, result.valid_trials, result.invalid_trials
    );
    if let Some(sol) = &result.best_solution {
        let _ = writeln!(
            out,
            "best_solution={:?} fp={:#018x}",
            sol.values(),
            sol.fingerprint()
        );
    }
    if let Some(k) = &result.best_kernel {
        let _ = writeln!(out, "best_kernel={k:?}");
    }
    for (i, v) in result.curve.iter().enumerate() {
        let _ = writeln!(out, "curve[{i}]={v:.17e}");
    }
    for it in &result.iterations {
        let _ = writeln!(out, "iter={it:?}");
    }
    let _ = writeln!(
        out,
        "retried={} retries={} quarantined={} timeouts={} termination={}",
        result.retried_trials,
        result.total_retries,
        result.quarantined,
        result.timeout_trials,
        result.termination
    );
    let _ = writeln!(
        out,
        "repaired={} relaxed={} deadline_hits={} fallbacks={}",
        result.repaired_offspring,
        result.relaxed_constraints,
        result.solver_deadline_hits,
        result.fallback_samples
    );
    for (tag, n) in &result.error_counts {
        let _ = writeln!(out, "error[{tag}]={n}");
    }
    out
}

fn tune(seed: u64) -> String {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(24),
        seed,
    );
    record(&tuner.run())
}

/// Two full tuning sessions with the same seed produce byte-identical
/// best-schedule records (solution vector, kernel, curve, per-iteration
/// stats) — across generation, RandSAT, the GBDT cost model, and CGA.
#[test]
fn tuner_runs_are_reproducible() {
    let a = tune(7);
    let b = tune(7);
    assert_eq!(a, b, "same-seed tuning traces diverged");
}

/// Different seeds explore differently: traces must not collide. (A
/// collision would mean the seed is being ignored somewhere.)
#[test]
fn tuner_runs_diverge_across_seeds() {
    let a = tune(7);
    let b = tune(8);
    assert_ne!(a, b, "different seeds gave identical tuning traces");
}

fn faulty_tune(seed: u64, rate: f64, trials: usize) -> TuneResult {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(trials),
        seed,
    )
    .with_faults(FaultPlan::uniform(seed, rate));
    tuner.run()
}

/// Fault injection is part of the deterministic trace: the same seed and
/// the same `FaultPlan` reproduce every injected timeout, hang, retry and
/// quarantine byte-for-byte; a different fault seed diverges.
#[test]
fn fault_injection_is_deterministic() {
    let a = record(&faulty_tune(21, 0.25, 24));
    let b = record(&faulty_tune(21, 0.25, 24));
    assert_eq!(a, b, "same-seed faulty tuning traces diverged");

    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(24),
        21,
    )
    .with_faults(FaultPlan::uniform(99, 0.25));
    let c = record(&tuner.run());
    assert_ne!(a, c, "different fault seeds gave identical traces");
}

/// Checkpoint/resume is exact: killing a session at an iteration boundary,
/// serialising the checkpoint through its text format, and resuming in a
/// fresh `Tuner` reproduces the uninterrupted run's full trace — best
/// solution, curve and resilience counters included.
#[test]
fn checkpoint_resume_matches_uninterrupted_run() {
    let seed = 13;
    let rate = 0.2;
    let config = TuneConfig::quick(32);

    // Uninterrupted reference run.
    let full = record(&faulty_tune(seed, rate, 32));

    // Kill at ~half the budget, checkpoint, roundtrip through text.
    let mut first = Tuner::new(space(), Measurer::new(heron::dla::v100()), config, seed)
        .with_faults(FaultPlan::uniform(seed, rate));
    let finished = first.run_until(16);
    assert!(!finished, "32-trial session must not finish by trial 16");
    assert!(first.trials_done() >= 16);
    let text = first.checkpoint().to_text();
    let ckpt = TuneCheckpoint::from_text(&text).expect("checkpoint roundtrips");

    // Resume in a brand-new tuner and finish the budget.
    let mut second = Tuner::resume(
        space(),
        Measurer::new(heron::dla::v100()),
        config,
        FaultPlan::uniform(seed, rate),
        &ckpt,
    )
    .expect("checkpoint applies to the same space");
    let resumed = record(&second.run());

    assert_eq!(
        resumed, full,
        "resumed trace diverged from uninterrupted run"
    );
}

/// At a 20% transient-fault rate the session still completes every trial,
/// quarantines repeat offenders, and finds a valid program.
#[test]
fn faulty_sessions_complete_and_quarantine() {
    let result = faulty_tune(17, 0.2, 24);
    assert_eq!(result.curve.len(), 24, "all trials must complete");
    assert!(result.best_gflops > 0.0, "{}", result.report());
    assert!(
        result.retried_trials > 0 || result.quarantined > 0,
        "a 20% fault rate must leave traces: {}",
        result.report()
    );
    assert!(
        !result.error_counts.is_empty(),
        "injected faults must be accounted"
    );
}

/// Strips the wall-clock instruments (`*_ms` fit-time histograms,
/// `tuner.cga_s`/`tuner.model_s` host-time gauges) whose *values* depend
/// on the machine; every remaining instrument — all counters and all
/// simulated-time gauges — must be byte-identical across same-seed runs.
fn deterministic_metrics(tsv: &str) -> String {
    tsv.lines()
        .filter(|l| {
            let name = l.split('\t').next().unwrap_or("");
            !name.ends_with("_ms") && name != "tuner.cga_s" && name != "tuner.model_s"
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The full instrument name list (wall-clock ones included) — the set of
/// registered instruments is itself deterministic even when their values
/// are not.
fn metric_names(tsv: &str) -> Vec<String> {
    tsv.lines()
        .skip(1)
        .map(|l| l.split('\t').next().unwrap_or("").to_string())
        .collect()
}

fn traced_tune_with(tracer: &Tracer, seed: u64) -> (String, String) {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(24),
        seed,
    )
    .with_faults(FaultPlan::uniform(seed, 0.2));
    tuner.set_tracer(tracer.clone());
    tuner.run();
    (tracer.to_jsonl(), tracer.metrics_tsv())
}

/// Tracing is part of the determinism contract: under the simulated
/// manual clock, two same-seed sessions emit byte-identical JSONL traces
/// (timestamps included) and byte-identical metrics snapshots; a
/// different seed diverges. The trace also passes structural validation
/// and covers every pipeline layer.
#[test]
fn traced_runs_are_byte_identical_for_same_seed() {
    let (ja, ma) = traced_tune_with(&Tracer::manual(), 7);
    let (jb, mb) = traced_tune_with(&Tracer::manual(), 7);
    assert_eq!(ja, jb, "same-seed JSONL traces diverged");
    assert_eq!(
        deterministic_metrics(&ma),
        deterministic_metrics(&mb),
        "same-seed metrics snapshots diverged"
    );
    assert_eq!(
        metric_names(&ma),
        metric_names(&mb),
        "instrument sets diverged"
    );

    let summary = check_trace(&ja).expect("trace must be well-formed");
    for layer in ["csp.solve", "cga.evolve", "measure.trial", "model.fit"] {
        assert!(
            summary.span_names().contains(&layer),
            "trace must cover `{layer}`: {:?}",
            summary.span_names()
        );
    }

    let (jc, _) = traced_tune_with(&Tracer::manual(), 8);
    assert_ne!(ja, jc, "different seeds gave identical traces");
}

/// Under the real monotonic clock only the timestamps may differ between
/// same-seed runs: after zeroing `t_ns`, the event sequences are
/// byte-identical.
#[test]
fn real_clock_traces_match_after_timestamp_normalisation() {
    let (ja, _) = traced_tune_with(&Tracer::real(), 7);
    let (jb, _) = traced_tune_with(&Tracer::real(), 7);
    assert_eq!(
        normalize_jsonl(&ja),
        normalize_jsonl(&jb),
        "same-seed real-clock traces diverged beyond timestamps"
    );
}

/// Killing a session at an iteration boundary and resuming it from the
/// checkpoint reproduces the *trace* of the uninterrupted run's second
/// half, byte for byte — not just the final scores.
#[test]
fn resumed_trace_matches_uninterrupted_suffix() {
    let seed = 13;
    let rate = 0.2;
    let config = TuneConfig::quick(32);

    // Uninterrupted reference: attach a fresh tracer at the trial-16
    // boundary, so it records exactly the second half of the session.
    let mut full = Tuner::new(space(), Measurer::new(heron::dla::v100()), config, seed)
        .with_faults(FaultPlan::uniform(seed, rate));
    assert!(
        !full.run_until(16),
        "32-trial session must not finish by 16"
    );
    let t_full = Tracer::manual();
    full.set_tracer(t_full.clone());
    full.run();

    // Interrupted run: checkpoint at the same boundary, resume in a
    // brand-new tuner with its own fresh tracer.
    let mut first = Tuner::new(space(), Measurer::new(heron::dla::v100()), config, seed)
        .with_faults(FaultPlan::uniform(seed, rate));
    assert!(!first.run_until(16));
    let ckpt = TuneCheckpoint::from_text(&first.checkpoint().to_text()).expect("roundtrips");
    let mut second = Tuner::resume(
        space(),
        Measurer::new(heron::dla::v100()),
        config,
        FaultPlan::uniform(seed, rate),
        &ckpt,
    )
    .expect("checkpoint applies");
    let t_res = Tracer::manual();
    second.set_tracer(t_res.clone());
    second.run();

    let (full_trace, res_trace) = (t_full.to_jsonl(), t_res.to_jsonl());
    assert!(!res_trace.is_empty(), "resumed session must emit events");
    assert_eq!(
        res_trace, full_trace,
        "post-resume trace diverged from the uninterrupted run"
    );
    assert_eq!(
        deterministic_metrics(&t_full.metrics_tsv()),
        deterministic_metrics(&t_res.metrics_tsv())
    );
    check_trace(&res_trace).expect("resumed trace is balanced");
}

/// Renders the full `insight.json` document a tuning session would emit.
fn insight_json(seed: u64, trials: usize, kill_at: Option<usize>) -> String {
    let mut tuner = Tuner::new(
        space(),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(trials),
        seed,
    )
    .with_faults(FaultPlan::uniform(seed, 0.2))
    .with_insight(8);
    if let Some(boundary) = kill_at {
        // Kill at the boundary, roundtrip the checkpoint through its text
        // encoding (insight state included), resume in a brand-new tuner.
        assert!(!tuner.run_until(boundary), "session must not finish early");
        let ckpt =
            TuneCheckpoint::from_text(&tuner.checkpoint().to_text()).expect("ckpt roundtrips");
        tuner = Tuner::resume(
            space(),
            Measurer::new(heron::dla::v100()),
            TuneConfig::quick(trials),
            FaultPlan::uniform(seed, 0.2),
            &ckpt,
        )
        .expect("checkpoint applies");
    }
    tuner.run();
    let log = tuner.insight().expect("insight enabled");
    let doc = heron::insight::analyze(log).to_json(log);
    heron::insight::validate_insight(&doc).expect("schema-valid insight");
    doc.render_pretty()
}

/// Search-health analytics are part of the determinism contract:
/// same-seed sessions emit byte-identical `insight.json` documents,
/// different seeds diverge.
#[test]
fn insight_reports_are_byte_identical_for_same_seed() {
    let a = insight_json(7, 24, None);
    let b = insight_json(7, 24, None);
    assert_eq!(a, b, "same-seed insight.json diverged");

    let c = insight_json(8, 24, None);
    assert_ne!(a, c, "different seeds gave identical insight.json");
}

/// Insight-exact resume: killing a session at an iteration boundary and
/// resuming from the text checkpoint yields an `insight.json` byte-
/// identical to the uninterrupted run's — the analyzer sees the same
/// rounds, refits and coverage either way.
#[test]
fn resumed_insight_report_matches_uninterrupted_run() {
    let full = insight_json(13, 32, None);
    let resumed = insight_json(13, 32, Some(16));
    assert_eq!(resumed, full, "post-resume insight.json diverged");
}

/// The perf-trajectory snapshot is deterministic too: building the same
/// `BENCH_heron.json` workload entry twice from same-seed sessions gives
/// byte-identical documents, and the gate passes self-comparison.
#[test]
fn bench_snapshot_json_is_byte_identical_for_same_seed() {
    use heron::insight::{compare, BenchReport, CompareConfig, WorkloadBench};

    let snapshot = |seed: u64| -> BenchReport {
        let mut tuner = Tuner::new(
            space(),
            Measurer::new(heron::dla::v100()),
            TuneConfig::quick(24),
            seed,
        )
        .with_insight(8);
        let result = tuner.run();
        let log = tuner.insight().expect("insight enabled");
        let mut report = BenchReport::new(seed, 24);
        report.push(WorkloadBench {
            name: "det".into(),
            best_gflops: result.best_gflops,
            best_latency_us: result.best_latency_s * 1e6,
            trials: result.curve.len() as u32,
            valid_trials: result.valid_trials as u32,
            rounds: log.rounds.len() as u32,
            hw_measure_s: result.timing.hw_measure_s,
            randsat_solutions: 0,
            randsat_propagations: 0,
            sol_per_kprop: 0.0,
            randsat_max_trail: log
                .rounds
                .iter()
                .map(|r| r.solver_max_trail)
                .max()
                .unwrap_or(0),
            incremental_hits: log.rounds.iter().map(|r| r.solver_incremental).sum(),
            model_fits: log.refits.len() as u32,
            final_rank_accuracy: result.model_rank_accuracy.unwrap_or(0.0),
        });
        report
    };

    let a = snapshot(7);
    let b = snapshot(7);
    let (ja, jb) = (a.to_json().render_pretty(), b.to_json().render_pretty());
    assert_eq!(ja, jb, "same-seed BENCH_heron.json diverged");
    heron::insight::validate_bench(&a.to_json()).expect("schema-valid snapshot");
    assert!(
        compare(&a, &b, &CompareConfig::default()).is_empty(),
        "self-comparison must pass the gate"
    );

    let c = snapshot(9);
    assert_ne!(
        ja,
        c.to_json().render_pretty(),
        "different seeds gave identical snapshots"
    );
}

/// RandSAT (constraint-guided random sampling) is a pure function of
/// (CSP, seed): same seed, same solutions, in the same order.
#[test]
fn rand_sat_is_reproducible() {
    let s = space();
    let sample = |seed: u64| -> Vec<Vec<i64>> {
        let mut rng = HeronRng::from_seed(seed);
        heron::csp::rand_sat(&s.csp, &mut rng, 8)
            .solutions
            .iter()
            .map(|sol| sol.values().to_vec())
            .collect()
    };
    let a = sample(11);
    let b = sample(11);
    assert_eq!(a, b, "same-seed RandSAT outputs diverged");
    assert_eq!(a.len(), 8);

    let c = sample(12);
    assert_ne!(a, c, "different seeds gave identical RandSAT outputs");
}
