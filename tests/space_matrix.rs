//! Space-generation matrix: every platform × approach × operator must
//! produce a satisfiable space whose solutions lower cleanly, and Heron's
//! spaces must be valid-by-construction everywhere.

use heron::prelude::*;
use heron::sched::lower;
use heron::tensor::ops;
use heron_rng::HeronRng;

fn check_space(
    spec: &heron::dla::DlaSpec,
    opts: &SpaceOptions,
    dag: &heron::tensor::Dag,
    label: &str,
    expect_all_valid: bool,
) {
    let Ok(space) = SpaceGenerator::new(spec.clone()).generate_named(dag, opts, label) else {
        panic!("{label}: generation failed");
    };
    let mut rng = HeronRng::from_seed(11);
    let sols = heron::csp::rand_sat(&space.csp, &mut rng, 12);
    assert!(
        sols.is_sat() && !sols.solutions.is_empty(),
        "{label}: space unsatisfiable ({})",
        sols.status
    );
    let sols = sols.solutions;
    let measurer = Measurer::new(spec.clone());
    let mut valid = 0;
    for sol in &sols {
        assert!(
            heron::csp::validate(&space.csp, sol),
            "{label}: solver returned non-solution"
        );
        let kernel = lower(&space.template, sol.fingerprint(), &|n| {
            sol.value_by_name(&space.csp, n)
        })
        .unwrap_or_else(|e| panic!("{label}: lowering failed: {e}"));
        if measurer.validate(&kernel).is_ok() {
            valid += 1;
        }
    }
    if expect_all_valid {
        assert_eq!(
            valid,
            sols.len(),
            "{label}: Heron sample violated arch limits"
        );
    } else {
        assert!(valid > 0, "{label}: no runnable sample at all");
    }
}

fn approaches() -> [(&'static str, SpaceOptions, bool); 4] {
    [
        ("heron", SpaceOptions::heron(), true),
        ("autotvm", SpaceOptions::autotvm(), false),
        ("ansor", SpaceOptions::ansor(), false),
        ("amos", SpaceOptions::amos(), false),
    ]
}

#[test]
fn v100_matrix() {
    let spec = heron::dla::v100();
    let dags = [
        ("gemm", ops::gemm(512, 512, 512)),
        (
            "c2d",
            ops::conv2d(ops::Conv2dConfig::new(8, 28, 28, 128, 128, 3, 3, 1, 1)),
        ),
        ("scan", ops::scan(16, 512)),
    ];
    for (op, dag) in &dags {
        for (name, opts, all_valid) in approaches() {
            check_space(&spec, &opts, dag, &format!("v100/{op}/{name}"), all_valid);
        }
    }
}

#[test]
fn dlboost_matrix() {
    let spec = heron::dla::dlboost();
    let dags = [
        ("gemm", ops::gemm_dtyped(512, 512, 512, DType::I8)),
        (
            "c2d",
            ops::conv2d(
                ops::Conv2dConfig::new(8, 28, 28, 128, 128, 3, 3, 1, 1).with_dtype(DType::I8),
            ),
        ),
    ];
    for (op, dag) in &dags {
        for (name, opts, all_valid) in approaches() {
            check_space(
                &spec,
                &opts,
                dag,
                &format!("dlboost/{op}/{name}"),
                all_valid,
            );
        }
    }
}

#[test]
fn vta_matrix() {
    let spec = heron::dla::vta();
    let dags = [
        ("gemm", ops::gemm_dtyped(512, 512, 512, DType::I8)),
        ("bmm", ops::bmm_dtyped(8, 128, 128, 128, DType::I8)),
    ];
    // Ansor is not evaluated on VTA in the paper (no scalar path on the
    // GEMM-unit accelerator), so only the intrinsic-capable approaches.
    for (op, dag) in &dags {
        for (name, opts, all_valid) in [
            ("heron", SpaceOptions::heron(), true),
            ("autotvm", SpaceOptions::autotvm(), false),
            ("amos", SpaceOptions::amos(), false),
        ] {
            check_space(&spec, &opts, dag, &format!("vta/{op}/{name}"), all_valid);
        }
    }
}

#[test]
fn flexible_intrinsic_platforms_generate() {
    // Cambricon-style multi-shape intrinsics exercise the SELECT-linked
    // shape choice.
    let spec = heron::dla::cambricon();
    let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
    check_space(
        &spec,
        &SpaceOptions::heron(),
        &dag,
        "cambricon/gemm/heron",
        true,
    );
    let tpu = heron::dla::tpu();
    let big = ops::gemm_dtyped(1024, 1024, 1024, DType::I8);
    check_space(&tpu, &SpaceOptions::heron(), &big, "tpu/gemm/heron", true);
}
