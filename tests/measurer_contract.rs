//! Integration tests of the DLA measurer's public contract: analysis and
//! energy agree with measurement, across platforms, on real tuned kernels.

use heron::prelude::*;
use heron::tensor::ops;

fn tuned_kernel(spec: &heron::dla::DlaSpec) -> heron::sched::Kernel {
    let dag = ops::gemm_dtyped(512, 512, 512, spec.in_dtype);
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "mc")
        .expect("generates");
    let mut tuner = Tuner::new(
        space,
        Measurer::new(spec.clone()),
        TuneConfig::quick(32),
        23,
    );
    tuner.run().best_kernel.expect("found a kernel")
}

#[test]
fn analysis_tracks_measurement_on_every_platform() {
    for spec in [heron::dla::v100(), heron::dla::dlboost(), heron::dla::vta()] {
        let kernel = tuned_kernel(&spec);
        let measurer = Measurer::new(spec.clone());
        let m = measurer.measure(&kernel).expect("valid");
        let a = measurer.analyze(&kernel).expect("valid");
        // The analysis total is the jitter-free trend of the measurement.
        let clock_hz = match &spec.family {
            heron::dla::DlaFamily::Gpu(g) => g.clock_ghz * 1e9,
            heron::dla::DlaFamily::Cpu(c) => c.clock_ghz * 1e9,
            heron::dla::DlaFamily::Vta(v) => v.clock_ghz * 1e9,
        };
        let trend = a.total_cycles / clock_hz;
        let rel = (m.latency_s - trend).abs() / trend;
        assert!(
            rel < 0.1,
            "{}: analysis drifts {rel} from measurement",
            spec.name
        );
        // The report renders and names the bound.
        let text = a.to_string();
        assert!(text.contains("bound"));
        assert!(!a.components.is_empty());
    }
}

#[test]
fn energy_is_consistent_and_positive_everywhere() {
    for spec in [heron::dla::v100(), heron::dla::dlboost(), heron::dla::vta()] {
        let kernel = tuned_kernel(&spec);
        let measurer = Measurer::new(spec.clone());
        let (m, e) = measurer.measure_with_energy(&kernel).expect("valid");
        assert!(e.total_j() > 0.0);
        assert!(
            e.compute_j > 0.0,
            "{}: tuned GEMM must burn compute energy",
            spec.name
        );
        assert!(e.offchip_j > 0.0, "{}: operands come from DRAM", spec.name);
        let eff = e.gops_per_watt(kernel.total_flops, m.latency_s);
        assert!(eff.is_finite() && eff > 0.0);
        // Energy components decompose the total.
        let sum = e.compute_j + e.offchip_j + e.onchip_j + e.static_j;
        assert!((sum - e.total_j()).abs() < 1e-12);
    }
}

#[test]
fn invalid_kernels_fail_analysis_and_energy_identically() {
    let spec = heron::dla::v100();
    let mut kernel = tuned_kernel(&spec);
    // Blow the shared-memory budget.
    kernel.buffers[0].bytes = 1 << 30;
    let measurer = Measurer::new(spec);
    assert!(measurer.measure(&kernel).is_err());
    assert!(measurer.analyze(&kernel).is_err());
    assert!(measurer.measure_with_energy(&kernel).is_err());
}

#[test]
fn measurement_noise_is_controlled_by_protocol() {
    let spec = heron::dla::v100();
    let kernel = tuned_kernel(&spec);
    let quiet = Measurer::new(spec.clone()).with_protocol(10, 0.0);
    let noisy = Measurer::new(spec).with_protocol(1, 0.05);
    let a = quiet.measure(&kernel).expect("valid");
    let b = quiet.measure(&kernel).expect("valid");
    assert_eq!(a.latency_s, b.latency_s, "zero-noise protocol is exact");
    // Noisy protocol still deterministic per (kernel, protocol).
    let c = noisy.measure(&kernel).expect("valid");
    let d = noisy.measure(&kernel).expect("valid");
    assert_eq!(c.latency_s, d.latency_s);
}
