//! Integration tests of every exploration algorithm on a real generated
//! space: interface contracts (budget, monotonicity) and the paper's
//! ordering claims at fixed seeds.

use heron::core::explore::cga::{CgaConfig, CgaExplorer};
use heron::core::explore::classic::{GaExplorer, RandomExplorer, SaExplorer};
use heron::core::explore::variants::{InfeasibilityDrivenGa, SatDecoderGa, StochasticRankingGa};
use heron::core::explore::Explorer;
use heron::core::tuner::evaluate;
use heron::prelude::*;
use heron_rng::HeronRng;

fn space() -> GeneratedSpace {
    let dag = heron::tensor::ops::gemm(512, 512, 512);
    SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "g")
        .expect("generates")
}

fn run(explorer: &mut dyn Explorer, steps: usize, seed: u64) -> Vec<f64> {
    let s = space();
    let measurer = Measurer::new(heron::dla::v100());
    let mut rng = HeronRng::from_seed(seed);
    let mut measure =
        |sol: &heron::csp::Solution| evaluate(&s, &measurer, sol).ok().map(|(_, m)| m.gflops);
    explorer.explore(&s, &mut measure, steps, &mut rng)
}

fn all_explorers() -> Vec<Box<dyn Explorer>> {
    vec![
        Box::new(CgaExplorer::new(CgaConfig::default())),
        Box::new(CgaExplorer::cga1(CgaConfig::default())),
        Box::new(RandomExplorer),
        Box::new(SaExplorer::default()),
        Box::new(GaExplorer::default()),
        Box::new(StochasticRankingGa::default()),
        Box::new(SatDecoderGa::default()),
        Box::new(InfeasibilityDrivenGa::default()),
    ]
}

#[test]
fn every_explorer_respects_budget_and_monotonicity() {
    for explorer in &mut all_explorers() {
        let curve = run(explorer.as_mut(), 40, 5);
        assert!(
            curve.len() <= 40,
            "{} exceeded the trial budget: {}",
            explorer.name(),
            curve.len()
        );
        assert!(!curve.is_empty(), "{} did nothing", explorer.name());
        for w in curve.windows(2) {
            assert!(w[1] >= w[0], "{} curve not monotone", explorer.name());
        }
    }
}

#[test]
fn every_explorer_finds_something_valid() {
    for explorer in &mut all_explorers() {
        let curve = run(explorer.as_mut(), 60, 6);
        let best = curve.last().copied().unwrap_or(0.0);
        assert!(
            best > 0.0,
            "{} found no valid program in 60 trials",
            explorer.name()
        );
    }
}

#[test]
fn cga_outperforms_sa_at_fixed_seed() {
    // The paper's Figure 12 ordering; SA gets stuck in the irregular space.
    let cga = run(&mut CgaExplorer::new(CgaConfig::default()), 120, 7);
    let sa = run(&mut SaExplorer::default(), 120, 7);
    let (cga_best, sa_best) = (
        cga.last().copied().unwrap_or(0.0),
        sa.last().copied().unwrap_or(0.0),
    );
    assert!(
        cga_best > sa_best,
        "CGA {cga_best} should beat SA {sa_best}"
    );
}

#[test]
fn explorer_names_are_distinct() {
    let mut names: Vec<&str> = all_explorers().iter().map(|e| e.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 8);
}

#[test]
fn sat_decoder_offspring_are_always_valid() {
    // GA-2's defining property: decoded phenotypes satisfy CSP_initial.
    let s = space();
    let mut rng = HeronRng::from_seed(8);
    let parents = heron::csp::rand_sat(&s.csp, &mut rng, 2).expect_sat("explorer space");
    for _ in 0..10 {
        let geno = heron::core::explore::classic::crossover_tunables(
            &s,
            &parents[0],
            &parents[1],
            &mut rng,
        );
        if let Some(pheno) = heron::core::explore::variants::sat_decode(&s, &geno, &mut rng) {
            assert!(heron::csp::validate(&s.csp, &pheno));
        }
    }
}
