//! Flight-recorder and postmortem forensics regression suite
//! (DESIGN.md §12).
//!
//! The forensic artifacts — per-job flight-recorder rings, crash
//! postmortem bundles, and the reconstructed `scope.json` schedule —
//! exist to be *diffed*: against a previous run, against a healthy
//! baseline, against the same incident on another machine. That only
//! works if they are byte-deterministic functions of (script, seeds,
//! chaos plan), so these tests run the same chaos scenario twice and
//! require every artifact byte-identical, and pin the postmortem
//! emission contract (exactly one bundle per confirmed death, hangs
//! included).

use heron::scope::validate_scope;
use heron::serve::{check_postmortem, parse_script, JobState, Supervisor};
use heron::trace::Json;
use heron_bench::scope_input;

/// A chaos scenario that exercises all three death paths: a recovered
/// crash, a confirmed hang, and a poisoned job that exhausts its
/// restart budget into quarantine.
const CHAOS_SCRIPT: &str = "\
workers = 2
queue_capacity = 8
restart_budget = 1
checkpoint_every = 2
hang_grace_polls = 200
poll_interval_ms = 5
ring_capacity = 32

job a op=gemm shape=64x64x64 trials=32 seed=41
job b op=gemm shape=96x96x96 trials=24 seed=42
job c op=gemm shape=64x96x64 trials=24 seed=43

kill a attempt=0 round=3 kind=crash
kill b attempt=0 round=2 kind=hang
kill c attempt=0 round=1 kind=crash
kill c attempt=1 round=2 kind=crash
";

fn run_chaos() -> Supervisor {
    let script = parse_script(CHAOS_SCRIPT).expect("script parses");
    let mut sup = Supervisor::from_script(script);
    sup.run();
    sup
}

#[test]
fn same_seed_chaos_runs_yield_byte_identical_forensics() {
    let first = run_chaos();
    let second = run_chaos();

    // Ring contents: every job's last flight deposit (rounds, simulated
    // clock, ring snapshot JSONL) is reproduced byte for byte.
    let rings = first.recorder().entries();
    assert!(!rings.is_empty(), "chaos run deposited no flight entries");
    assert_eq!(rings, second.recorder().entries(), "ring contents differ");
    for (job, entry) in &rings {
        if !entry.ring_jsonl.is_empty() {
            heron::trace::check_ring_snapshot(&entry.ring_jsonl)
                .unwrap_or_else(|e| panic!("job `{job}` ring snapshot invalid: {e}"));
        }
    }

    // Postmortem bundles: same set, same bytes, and each validates.
    let bundles = first.postmortems();
    assert_eq!(bundles, second.postmortems(), "postmortem bundles differ");
    for pm in bundles {
        check_postmortem(&pm.bundle)
            .unwrap_or_else(|e| panic!("bundle `{}` invalid: {e}", pm.file));
    }

    // The reconstructed schedule document, rendered bytes included.
    let scope_a = heron::scope::build_scope(&scope_input(&first));
    let scope_b = heron::scope::build_scope(&scope_input(&second));
    validate_scope(&scope_a).expect("scope document validates");
    assert_eq!(
        scope_a.render_pretty(),
        scope_b.render_pretty(),
        "scope.json differs across same-seed runs"
    );
    let makespan = scope_a.get("makespan_ns").and_then(Json::as_u64);
    assert_eq!(
        scope_a.get("critical_sum_ns").and_then(Json::as_u64),
        makespan,
        "critical-path sum must equal the makespan exactly"
    );
    assert_ne!(makespan, Some(0), "chaos run has a non-zero makespan");
}

#[test]
fn postmortems_fire_exactly_once_per_confirmed_death() {
    let sup = run_chaos();

    // The scenario's deaths: a crashes once (recovers), b hangs once
    // (recovers), c crashes twice and the second death also quarantines
    // it (restart_budget = 1).
    assert_eq!(sup.state("a"), Some(JobState::Completed));
    assert_eq!(sup.state("b"), Some(JobState::Completed));
    assert_eq!(sup.state("c"), Some(JobState::Quarantined));

    let bundles = sup.postmortems();
    let files: Vec<&str> = bundles.iter().map(|p| p.file.as_str()).collect();
    assert_eq!(
        files,
        [
            "a.attempt0.crash.jsonl",
            "b.attempt0.hang.jsonl",
            "c.attempt0.crash.jsonl",
            "c.attempt1.crash.jsonl",
            "c.attempt1.quarantine.jsonl",
        ],
        "one bundle per confirmed death, canonical order"
    );

    // The hang contract specifically: one confirmed hang ⇒ exactly one
    // hang bundle, even though the watchdog polls the stalled worker
    // `hang_grace_polls` times before confirming.
    let hangs = bundles.iter().filter(|p| p.reason == "hang").count();
    assert_eq!(sup.tracer().counter("serve.hangs_detected"), Some(1));
    assert_eq!(hangs, 1, "exactly one postmortem per confirmed hang");

    // And the counter matches the bundle list it summarises.
    assert_eq!(
        sup.tracer().counter("serve.postmortems"),
        Some(bundles.len() as u64)
    );
}
