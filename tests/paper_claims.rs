//! Integration tests pinning the paper's qualitative claims — the *shape*
//! of the evaluation, at reduced trial budgets.

use heron::prelude::*;
use heron::tensor::ops;

const TRIALS: usize = 60;

#[test]
fn heron_beats_every_baseline_on_tensorcore_gemm() {
    let spec = heron::dla::v100();
    let dag = ops::gemm(1024, 1024, 1024);
    let heron = tune(Approach::Heron, &spec, &dag, "g1", TRIALS, 1).expect("ok");
    for a in [Approach::AutoTvm, Approach::Ansor, Approach::Amos] {
        let o = tune(a, &spec, &dag, "g1", TRIALS, 1).expect("ok");
        assert!(
            heron.best_gflops > o.best_gflops,
            "Heron ({:.0}) must beat {} ({:.0})",
            heron.best_gflops,
            o.name,
            o.best_gflops
        );
    }
}

#[test]
fn ansor_cannot_use_tensor_cores() {
    // The Ansor-like space never tensorizes, capping it at CUDA-core rates.
    let spec = heron::dla::v100();
    let dag = ops::gemm(2048, 2048, 2048);
    let space = SpaceGenerator::new(spec)
        .generate_named(&dag, &SpaceOptions::ansor(), "g")
        .expect("generates");
    assert!(
        !space.template.stages.iter().any(|s| s.intrinsic.is_some()),
        "ansor template must not contain a tensorized stage"
    );
}

#[test]
fn heron_wins_big_on_skinny_shapes_vs_vendor() {
    let spec = heron::dla::v100();
    // G5 = 32 x 1000 x 4096: awkward for fixed vendor kernels.
    let skinny = ops::gemm(32, 1000, 4096);
    let heron = tune(Approach::Heron, &spec, &skinny, "g5", TRIALS, 2).expect("ok");
    let vendor = vendor_outcome(&spec, &skinny, "g5", 2).expect("vendor exists");
    assert!(
        heron.best_gflops > 1.3 * vendor.gflops,
        "Heron {:.0} vs vendor {:.0} on skinny gemm",
        heron.best_gflops,
        vendor.gflops
    );
}

#[test]
fn vendor_competitive_on_square_gemm() {
    let spec = heron::dla::v100();
    let square = ops::gemm(4096, 4096, 4096);
    let heron = tune(Approach::Heron, &spec, &square, "g2", TRIALS, 3).expect("ok");
    let vendor = vendor_outcome(&spec, &square, "g2", 3).expect("vendor exists");
    // On its home turf the vendor library is within ~2x of tuned Heron.
    assert!(
        vendor.gflops * 2.0 > heron.best_gflops,
        "vendor should be competitive on square gemm: {:.0} vs {:.0}",
        vendor.gflops,
        heron.best_gflops
    );
}

#[test]
fn heron_never_wastes_trials_but_amos_does() {
    let spec = heron::dla::v100();
    let dag = ops::gemm(1024, 1024, 1024);
    let heron = tune(Approach::Heron, &spec, &dag, "g", TRIALS, 4).expect("ok");
    assert_eq!(heron.invalid_trials, 0);
    let amos = tune(Approach::Amos, &spec, &dag, "g", TRIALS, 4).expect("ok");
    assert!(
        amos.invalid_trials > 0,
        "AMOS should hit register-pressure failures"
    );
}

#[test]
fn dlboost_vnni_beats_avx_fallback() {
    let spec = heron::dla::dlboost();
    let dag = ops::gemm_dtyped(1024, 1024, 1024, DType::I8);
    let heron = tune(Approach::Heron, &spec, &dag, "g", TRIALS, 5).expect("ok");
    let ansor = tune(Approach::Ansor, &spec, &dag, "g", TRIALS, 5).expect("ok");
    assert!(
        heron.best_gflops > 2.0 * ansor.best_gflops,
        "VNNI must dominate AVX: {:.0} vs {:.0}",
        heron.best_gflops,
        ansor.best_gflops
    );
}

#[test]
fn vta_heron_beats_autotvm_on_gemm() {
    let spec = heron::dla::vta();
    let dag = ops::gemm_dtyped(1024, 1024, 1024, DType::I8);
    let heron = tune(Approach::Heron, &spec, &dag, "g", TRIALS, 6).expect("ok");
    let autotvm = tune(Approach::AutoTvm, &spec, &dag, "g", TRIALS, 6).expect("ok");
    assert!(
        heron.best_gflops >= autotvm.best_gflops,
        "Heron {:.1} vs AutoTVM {:.1} on VTA",
        heron.best_gflops,
        autotvm.best_gflops
    );
}

#[test]
fn scan_not_supported_on_vta() {
    let spec = heron::dla::vta();
    let dag = ops::scan(8, 128);
    assert!(tune(Approach::Heron, &spec, &dag, "scan", 8, 7).is_err());
}
