//! End-to-end integration tests: compute description → constrained space
//! generation → CGA exploration → simulated measurement, on every DLA
//! family.

use heron::prelude::*;
use heron::tensor::ops;

fn run(spec: heron::dla::DlaSpec, dag: heron::tensor::Dag, trials: usize, seed: u64) -> TuneResult {
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "it")
        .expect("generates");
    let mut tuner = Tuner::new(space, Measurer::new(spec), TuneConfig::quick(trials), seed);
    tuner.run()
}

#[test]
fn tensorcore_gemm_pipeline() {
    let r = run(heron::dla::v100(), ops::gemm(512, 512, 512), 48, 1);
    assert!(
        r.best_gflops > 1000.0,
        "TC gemm should exceed 1 Tflops: {}",
        r.best_gflops
    );
    assert_eq!(r.invalid_trials, 0);
    assert!(r.best_kernel.is_some());
}

#[test]
fn tensorcore_conv2d_pipeline() {
    let dag = ops::conv2d(ops::Conv2dConfig::new(8, 28, 28, 128, 128, 3, 3, 1, 1));
    let r = run(heron::dla::v100(), dag, 48, 2);
    assert!(r.best_gflops > 1000.0);
    assert_eq!(r.invalid_trials, 0);
    let k = r.best_kernel.expect("kernel");
    assert!(
        k.tensorized_stage().is_some(),
        "conv2d maps onto wmma via im2col"
    );
}

#[test]
fn dlboost_gemm_pipeline() {
    let dag = ops::gemm_dtyped(512, 512, 512, DType::I8);
    let r = run(heron::dla::dlboost(), dag, 48, 3);
    assert!(
        r.best_gflops > 100.0,
        "VNNI gemm too slow: {}",
        r.best_gflops
    );
    assert_eq!(r.invalid_trials, 0);
    let k = r.best_kernel.expect("kernel");
    assert_eq!(
        k.tensorized_stage().and_then(|s| s.intrinsic),
        Some((1, 16, 4))
    );
}

#[test]
fn vta_gemm_pipeline() {
    let dag = ops::gemm_dtyped(256, 256, 256, DType::I8);
    let r = run(heron::dla::vta(), dag, 48, 4);
    assert!(r.best_gflops > 1.0);
    assert_eq!(r.invalid_trials, 0);
    let k = r.best_kernel.expect("kernel");
    // The access-cycle rule holds on the best program.
    let comp = k.tensorized_stage().expect("tensorized");
    assert!(
        comp.row_elems >= 2,
        "access-cycle rule violated: {}",
        comp.row_elems
    );
}

#[test]
fn scan_pipeline_uses_scalar_path() {
    let r = run(heron::dla::v100(), ops::scan(16, 512), 32, 5);
    assert!(r.best_gflops > 0.0);
    assert!(r.best_kernel.expect("kernel").tensorized_stage().is_none());
}

#[test]
fn every_operator_suite_generates_on_v100() {
    let generator = SpaceGenerator::new(heron::dla::v100());
    for op in heron::workloads::operator_names() {
        for w in operator_suite(op) {
            let dag = w.build(DType::F16);
            let space = generator
                .generate_named(&dag, &SpaceOptions::heron(), &w.name)
                .expect("v100 supports every operator");
            // Every space is satisfiable.
            let mut rng = heron_rng::HeronRng::from_seed(9);
            let sols = heron::csp::rand_sat(&space.csp, &mut rng, 1);
            assert!(
                sols.is_sat() && !sols.solutions.is_empty(),
                "{op}/{} space unsatisfiable ({})",
                w.name,
                sols.status
            );
        }
    }
}

#[test]
fn curve_is_monotone_and_reaches_best() {
    let r = run(heron::dla::v100(), ops::gemm(256, 256, 256), 40, 6);
    for w in r.curve.windows(2) {
        assert!(w[1] >= w[0], "best-so-far curve must be monotone");
    }
    let last = *r.curve.last().expect("non-empty");
    assert!((last - r.best_gflops).abs() < 1e-6);
}

#[test]
fn deterministic_given_seed() {
    let a = run(heron::dla::v100(), ops::gemm(256, 256, 256), 24, 7);
    let b = run(heron::dla::v100(), ops::gemm(256, 256, 256), 24, 7);
    assert_eq!(a.best_gflops, b.best_gflops, "same seed must reproduce");
    assert_eq!(a.curve, b.curve);
}
