//! Service-robustness regression suite: the chaos proof.
//!
//! heron-serve's contract is that supervision is *invisible* in the
//! results: a job that crashed, hung, was fenced off and resumed from
//! its last checkpoint produces the byte-identical `TuneResult` of an
//! uninterrupted single-process run, and the supervisor never loses,
//! double-runs, or silently drops a job. These tests pin that contract
//! (plus the admission/backpressure and restart-budget semantics) under
//! seeded worker-kill injection, and sweep checkpoint recovery across
//! *every* round boundary of a session, not just one kill point.

use heron::serve::{chaos, parse_script, AdmitError, JobSpec, JobState, Supervisor};
use heron_serve::build_session;

/// A small, fast job the chaos scenarios share.
fn job(id: &str, seed: u64, trials: usize) -> JobSpec {
    let mut spec = JobSpec::new(id, "gemm", "64x64x64");
    spec.seed = seed;
    spec.trials = trials;
    spec
}

#[test]
fn recovered_jobs_are_byte_identical_and_none_are_lost_or_double_run() {
    let script = parse_script(
        "\
workers = 2
queue_capacity = 8
restart_budget = 2
checkpoint_every = 2
hang_grace_polls = 400
poll_interval_ms = 5

job a op=gemm shape=64x64x64 trials=32 seed=21
job b op=gemm shape=96x96x96 trials=32 seed=22 fault_rate=0.2
job c op=gemm shape=64x96x64 trials=24 seed=23

# a crashes after round 3 (checkpoint at round 2 exists);
# b crashes at round 1 before any checkpoint (restart from scratch);
# c hangs at round 2 (watchdog path).
kill a attempt=0 round=3 kind=crash
kill b attempt=0 round=1 kind=crash
kill c attempt=0 round=2 kind=hang
",
    )
    .expect("script parses");
    let specs = script.jobs.clone();
    let mut sup = Supervisor::from_script(script);
    sup.run();

    // Every admitted job settled as completed, none lost.
    for spec in &specs {
        assert_eq!(
            sup.state(&spec.id),
            Some(JobState::Completed),
            "job `{}` did not complete",
            spec.id
        );
    }
    // All three kill paths actually fired and recovered.
    let counter = |n: &str| sup.tracer().counter(n).unwrap_or(0);
    assert_eq!(counter("serve.crashes_detected"), 2);
    assert_eq!(counter("serve.hangs_detected"), 1);
    assert_eq!(counter("serve.jobs_recovered"), 3);
    assert_eq!(counter("serve.jobs_completed"), 3, "no job ran twice");
    // The byte-identity proof: records and fingerprints equal the
    // uninterrupted single-process runs, reports exist exactly for
    // completed jobs.
    let verified = chaos::verify_run(&sup, &specs).expect("chaos verification");
    assert_eq!(verified.len(), 3);
}

#[test]
fn restart_budget_exhaustion_quarantines_the_poisoned_job_only() {
    let script = parse_script(
        "\
workers = 2
queue_capacity = 4
restart_budget = 1
checkpoint_every = 2
poll_interval_ms = 5

job healthy op=gemm shape=64x64x64 trials=24 seed=31
job poison op=gemm shape=48x48x48 trials=24 seed=32
kill poison attempt=0 round=1 kind=crash
kill poison attempt=1 round=1 kind=crash
",
    )
    .expect("script parses");
    let specs = script.jobs.clone();
    let mut sup = Supervisor::from_script(script);
    sup.run();

    assert_eq!(sup.state("healthy"), Some(JobState::Completed));
    assert_eq!(sup.state("poison"), Some(JobState::Quarantined));
    assert!(
        sup.report("poison").is_none(),
        "quarantined job has no report"
    );
    let row = sup
        .rows()
        .into_iter()
        .find(|r| r.id == "poison")
        .expect("row exists");
    assert_eq!(row.attempts, 2, "budget 1 allows attempts 0 and 1");
    assert_eq!(row.recoveries, 2);
    assert!(
        row.note.as_deref().unwrap_or("").contains("restart budget"),
        "quarantine note names the cause: {:?}",
        row.note
    );
    assert_eq!(sup.tracer().counter("serve.jobs_quarantined"), Some(1));
    // The healthy job is still byte-identical — a neighbour's
    // quarantine must not perturb anyone else's session.
    chaos::verify_run(&sup, &specs).expect("healthy job verifies");
}

#[test]
fn admission_rejects_overflow_duplicates_and_invalid_specs_with_reasons() {
    let mut sup = Supervisor::new(heron::serve::ServeConfig {
        queue_capacity: 2,
        ..Default::default()
    });
    sup.submit(job("a", 1, 16)).expect("admits");
    sup.submit(job("b", 2, 16)).expect("admits");
    match sup.submit(job("c", 3, 16)) {
        Err(AdmitError::QueueFull { capacity: 2 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    match sup.submit(job("a", 4, 16)) {
        Err(AdmitError::Duplicate { id }) => assert_eq!(id, "a"),
        other => panic!("expected Duplicate, got {other:?}"),
    }
    match sup.submit(JobSpec::new("bad", "gemm", "64x64")) {
        Err(AdmitError::Invalid { id, .. }) => assert_eq!(id, "bad"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    // Rejections are recorded for the manifest, not silently dropped.
    let rejected: Vec<&str> = sup.rejected().iter().map(|(id, _)| id.as_str()).collect();
    assert_eq!(rejected, ["c", "a", "bad"]);
    assert_eq!(sup.tracer().counter("serve.jobs_rejected"), Some(3));
    sup.run();
    assert_eq!(sup.state("a"), Some(JobState::Completed));
    assert_eq!(sup.state("b"), Some(JobState::Completed));
    assert_eq!(sup.state("c"), None, "rejected jobs never enter the table");
}

#[test]
fn graceful_drain_checkpoints_in_flight_jobs_that_resume_identically() {
    let script = parse_script(
        "\
workers = 2
queue_capacity = 4
drain_after_completions = 1
checkpoint_every = 2
poll_interval_ms = 5

job first op=gemm shape=64x64x64 trials=16 seed=41
job second op=gemm shape=96x96x96 trials=64 seed=42
job third op=gemm shape=64x96x64 trials=24 seed=43
",
    )
    .expect("script parses");
    let specs = script.jobs.clone();
    let mut sup = Supervisor::from_script(script);
    sup.run();

    // Two workers run `first` (2 rounds) and `second` (8 rounds); the
    // drain fires on `first`'s completion, preempts `second` mid-run,
    // and strands `third` in the queue — it must never be started once
    // draining, and never be lost either.
    assert_eq!(sup.state("first"), Some(JobState::Completed));
    assert_eq!(sup.state("third"), Some(JobState::Queued));
    // `second` is preempted at its next round boundary (or, in a
    // pathological scheduling, finished its last round first — both
    // are clean drains; what is forbidden is anything else).
    let second_state = sup.state("second").expect("second is tracked");
    assert!(
        matches!(second_state, JobState::Preempted | JobState::Completed),
        "drain left `second` in {second_state}"
    );
    // verify_run re-checks completed jobs and proves every preempted
    // job's checkpoint resumes to the exact uninterrupted result.
    chaos::verify_run(&sup, &specs).expect("drain verification");
    if second_state == JobState::Preempted {
        let text = sup.store().load("second").expect("checkpoint in store");
        let (_, resumed_fp) = chaos::resume_record(&specs[1], &text).expect("resumes");
        let (_, ref_fp) = chaos::reference_record(&specs[1]).expect("reference runs");
        assert_eq!(resumed_fp, ref_fp, "job `second` diverged after drain");
    }
}

#[test]
fn per_job_deadline_preempts_through_the_service_and_resumes_exactly() {
    let script = parse_script(
        "\
workers = 2
poll_interval_ms = 5
job dl op=gemm shape=64x64x64 trials=48 seed=51 deadline_rounds=2
",
    )
    .expect("script parses");
    let specs = script.jobs.clone();
    let mut sup = Supervisor::from_script(script);
    sup.run();

    assert_eq!(sup.state("dl"), Some(JobState::Preempted));
    let row = sup.rows().into_iter().find(|r| r.id == "dl").expect("row");
    assert_eq!(row.rounds, 2, "preempted exactly at the deadline boundary");
    let text = sup.store().load("dl").expect("checkpointed");
    let (resumed_record, resumed_fp) = chaos::resume_record(&specs[0], &text).expect("resumes");
    let (reference_record, reference_fp) = chaos::reference_record(&specs[0]).expect("reference");
    assert_eq!(resumed_record, reference_record);
    assert_eq!(resumed_fp, reference_fp);
}

/// Satellite: recovery must be exact from *every* round boundary, not
/// just the kill points the chaos scripts happen to choose. Runs one
/// session to completion, then for each round 1..R checkpoints a fresh
/// session at that boundary, resumes it, and demands the identical
/// deterministic record and fingerprint.
#[test]
fn resume_from_every_round_boundary_matches_the_uninterrupted_run() {
    let spec = job("sweep", 61, 48);
    let (reference_record, reference_fp) = chaos::reference_record(&spec).expect("reference runs");

    // Count the rounds of the uninterrupted session.
    let mut probe = build_session(&spec, None).expect("builds");
    let mut rounds = 0u64;
    while probe.step() {
        rounds += 1;
    }
    assert!(rounds >= 3, "sweep needs a few rounds, got {rounds}");

    for boundary in 1..rounds {
        let mut head = build_session(&spec, None).expect("builds");
        for _ in 0..boundary {
            assert!(head.step(), "finished before boundary {boundary}");
        }
        let text = head.checkpoint().to_text();
        let (resumed_record, resumed_fp) = chaos::resume_record(&spec, &text).expect("resumes");
        assert_eq!(
            resumed_fp, reference_fp,
            "fingerprint diverged resuming from round {boundary}/{rounds}"
        );
        assert_eq!(
            resumed_record, reference_record,
            "record diverged resuming from round {boundary}/{rounds}"
        );
    }
}
