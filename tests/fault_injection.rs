//! Integration tests of the fault-tolerant measurement pipeline: the
//! tuner must absorb device-level rejections *and* injected infrastructure
//! faults without aborting, without poisoning the cost model, and with
//! every failure accounted.

use heron::core::tuner::{Termination, TuneConfig, Tuner};
use heron::dla::FaultPlan;
use heron::prelude::*;

fn space(name: &str) -> GeneratedSpace {
    let dag = heron::tensor::ops::gemm(384, 384, 384);
    SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), name)
        .expect("generates")
}

/// Regression for the cost-model poisoning bug: failed trials used to be
/// trained with a raw `0.0`, dragging predictions toward zero whenever
/// the fault rate was non-trivial. With the penalty policy the model's
/// pairwise rank accuracy at a 20% transient-fault rate stays close to
/// the fault-free model's.
#[test]
fn cost_model_survives_a_20pct_fault_rate() {
    let seed = 29;
    let trials = 48;

    let mut clean = Tuner::new(
        space("fi-clean"),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(trials),
        seed,
    );
    let clean = clean.run();
    let clean_acc = clean.model_rank_accuracy.expect("model fitted");

    let mut faulty = Tuner::new(
        space("fi-faulty"),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(trials),
        seed,
    )
    .with_faults(FaultPlan::uniform(seed, 0.2));
    let faulty = faulty.run();
    let faulty_acc = faulty.model_rank_accuracy.expect("model fitted");

    assert_eq!(faulty.curve.len(), trials, "faults must not eat trials");
    assert!(faulty.best_gflops > 0.0, "{}", faulty.report());
    assert!(
        faulty_acc > 0.6,
        "cost model poisoned at 20% faults: rank accuracy {faulty_acc:.3}\n{}",
        faulty.report()
    );
    assert!(
        faulty_acc > clean_acc - 0.25,
        "fault-rate accuracy collapse: {faulty_acc:.3} vs clean {clean_acc:.3}"
    );
    // The faulty session pays for its faults in simulated measurement time.
    assert!(faulty.timing.hw_measure_s > clean.timing.hw_measure_s);
}

/// Deterministic device rejections (wrong platform for the space) are
/// counted as invalid trials; the session terminates normally instead of
/// panicking, and nothing is retried (retries are for transient faults).
#[test]
fn deterministic_rejections_never_abort_the_session() {
    let mut tuner = Tuner::new(
        space("fi-mismatch"),
        Measurer::new(heron::dla::vta()),
        TuneConfig::quick(12),
        5,
    );
    let result = tuner.run();
    assert_eq!(result.valid_trials, 0);
    assert!(result.invalid_trials > 0);
    assert_eq!(result.retried_trials, 0);
    assert_eq!(result.total_retries, 0);
    assert!(matches!(
        result.termination,
        Termination::TrialsExhausted | Termination::SpaceExhausted
    ));
    let total: usize = result.error_counts.values().sum();
    assert!(
        total >= result.invalid_trials,
        "every failed attempt must be classified: {:?}",
        result.error_counts
    );
}

/// Injected fault classes surface in the per-class accounting, and
/// timeouts are tracked per trial.
#[test]
fn fault_classes_are_accounted() {
    let seed = 31;
    let mut tuner = Tuner::new(
        space("fi-classes"),
        Measurer::new(heron::dla::v100()),
        TuneConfig::quick(48),
        seed,
    )
    .with_faults(FaultPlan::uniform(seed, 0.4));
    let result = tuner.run();
    let transient: usize = ["timeout", "device-hang", "rpc-dropped", "spurious"]
        .iter()
        .filter_map(|t| result.error_counts.get(*t))
        .sum();
    assert!(
        transient > 0,
        "a 40% fault plan must inject something: {:?}",
        result.error_counts
    );
    assert!(result.total_retries >= transient.min(result.total_retries));
    if result.error_counts.contains_key("timeout") {
        assert!(result.timeout_trials > 0);
    }
    let report = result.report();
    assert!(report.contains("resilience:"));
    assert!(report.contains("errors:"));
}
