//! Integration tests of kernel-library generation: batch tuning with
//! persistence across every platform — the deliverable named in the
//! paper's title.

use heron::core::library::KernelLibrary;
use heron::prelude::*;
use heron::tensor::ops;

#[test]
fn library_generation_across_platforms() {
    let dir = std::env::temp_dir().join("heron_it_library");
    let _ = std::fs::create_dir_all(&dir);
    for spec in [heron::dla::v100(), heron::dla::dlboost(), heron::dla::vta()] {
        let dag = ops::gemm_dtyped(512, 512, 512, spec.in_dtype);
        let mut lib = KernelLibrary::new();
        let entry = lib
            .tune_and_insert("gemm-512", &dag, &spec, TuneConfig::quick(32), 11)
            .unwrap_or_else(|| panic!("{}: tuning failed", spec.name))
            .clone();
        assert!(entry.gflops > 0.0);
        assert_eq!(entry.dla, spec.name);

        // Persist, reload, materialise, re-measure at the stored speed.
        let path = dir.join(format!("{}.lib", spec.name));
        lib.save(&path).expect("writable");
        let loaded = KernelLibrary::load(&path).expect("parses");
        assert_eq!(loaded, lib);
        let kernel = loaded
            .materialize("gemm-512", &dag, &spec)
            .expect("stored config re-materialises");
        let m = Measurer::new(spec.clone())
            .measure(&kernel)
            .expect("still valid");
        let rel = (m.gflops - entry.gflops).abs() / entry.gflops;
        assert!(rel < 0.05, "{}: drift {rel}", spec.name);
    }
}

#[test]
fn library_covers_a_whole_operator_suite() {
    let spec = heron::dla::v100();
    let mut lib = KernelLibrary::new();
    for w in operator_suite("GEMM") {
        let dag = w.build(DType::F16);
        lib.tune_and_insert(&w.name, &dag, &spec, TuneConfig::quick(24), 13);
    }
    assert_eq!(lib.len(), operator_suite("GEMM").len());
    // Text round trip preserves every entry.
    let text = lib.to_text();
    let back = KernelLibrary::from_text(&text).expect("parses");
    assert_eq!(back, lib);
    for (key, entry) in back.iter() {
        assert!(entry.gflops > 0.0, "{key} has no performance");
        assert!(!entry.tunables.is_empty());
    }
}

#[test]
fn stale_library_entries_fail_gracefully_on_other_shapes() {
    // Materialising an entry against a different shape must not panic —
    // it returns None when the stored tunables don't fit.
    let spec = heron::dla::v100();
    let dag_big = ops::gemm(1024, 1024, 1024);
    let dag_small = ops::gemm(64, 64, 64);
    let mut lib = KernelLibrary::new();
    lib.tune_and_insert("g", &dag_big, &spec, TuneConfig::quick(24), 17)
        .expect("tunes");
    // Large tile factors stored for 1024^3 cannot satisfy 64^3's divisor
    // domains — expect a clean None (or a rare coincidental fit).
    let result = lib.materialize("g", &dag_small, &spec);
    if let Some(kernel) = result {
        // If it happens to fit, it must still be a valid kernel.
        Measurer::new(spec)
            .validate(&kernel)
            .expect("fit implies valid");
    }
}
