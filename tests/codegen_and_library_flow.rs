//! Integration: the human-facing artefacts — pseudo-code, schedule
//! program text, CSP export — render consistently from real tuned kernels.

use heron::prelude::*;
use heron::sched::kernel_pseudo_code;
use heron::tensor::ops;

#[test]
fn pseudo_code_renders_for_every_platform() {
    for spec in [heron::dla::v100(), heron::dla::dlboost(), heron::dla::vta()] {
        let dag = ops::gemm_dtyped(512, 512, 512, spec.in_dtype);
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), "cg")
            .expect("generates");
        let mut tuner = Tuner::new(
            space,
            Measurer::new(spec.clone()),
            TuneConfig::quick(24),
            29,
        );
        let kernel = tuner.run().best_kernel.expect("kernel found");
        let code = kernel_pseudo_code(&kernel);
        assert!(
            code.contains(&format!("for {}", spec.name).replace(&spec.name, ""))
                || code.contains("for (")
        );
        assert_eq!(
            code.matches('{').count(),
            code.matches('}').count(),
            "{}",
            spec.name
        );
        assert!(code.contains("// kernel"));
        if kernel.tensorized_stage().is_some() {
            assert!(
                code.contains("mma_sync_"),
                "{}: intrinsic not rendered",
                spec.name
            );
        }
    }
}

#[test]
fn schedule_program_text_renders_from_generated_spaces() {
    let dag = ops::conv2d(ops::Conv2dConfig::new(8, 28, 28, 128, 128, 3, 3, 1, 1));
    let space = SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "cg2")
        .expect("generates");
    // The template records every primitive applied by the rules.
    assert!(space.template.primitives.len() >= 10);
    let rendered: Vec<String> = space
        .template
        .primitives
        .iter()
        .map(|p| p.to_string())
        .collect();
    let all = rendered.join("\n");
    assert!(all.contains("tensorize"));
    assert!(all.contains("cache_read"));
    assert!(all.contains("cache_write"));
    assert!(all.contains("storage_align"));
    assert!(all.contains("compute_at"));
}

#[test]
fn csp_export_of_generated_space_roundtrips() {
    let dag = ops::gemm(512, 512, 512);
    let space = SpaceGenerator::new(heron::dla::v100())
        .generate_named(&dag, &SpaceOptions::heron(), "cg3")
        .expect("generates");
    let text = heron::csp::to_text(&space.csp);
    let back = heron::csp::from_text(&text).expect("parses");
    assert_eq!(back.num_vars(), space.csp.num_vars());
    assert_eq!(back.num_constraints(), space.csp.num_constraints());
    // Solutions of the original validate on the parsed copy and vice versa.
    let mut rng = heron_rng::HeronRng::from_seed(31);
    for sol in heron::csp::rand_sat(&space.csp, &mut rng, 4).solutions {
        assert!(heron::csp::validate(&back, &sol));
    }
    for sol in heron::csp::rand_sat(&back, &mut rng, 4).solutions {
        assert!(heron::csp::validate(&space.csp, &sol));
    }
    // Solution text round trip against the parsed CSP.
    let sol = heron::csp::rand_sat(&back, &mut rng, 1)
        .one()
        .expect("solvable");
    let stext = heron::csp::solution_to_text(&back, &sol);
    let sback = heron::csp::solution_from_text(&back, &stext).expect("parses");
    assert_eq!(sback, sol);
}
