//! Pulse-plane regression suite: per-job trace correlation and the
//! SLI/SLO engine.
//!
//! heron-pulse's contract extends the chaos proof from *results* to
//! *telemetry*: the merged service trace slices losslessly back into
//! per-job sub-traces (each a valid trace whose profile sums to that
//! job's recorded wall-clock), a recovered job's sub-trace is
//! byte-identical to an uninterrupted resume of the same checkpoint,
//! and the whole derived plane — `pulse.json`, the SLO report, the
//! `heron_status` dashboard — is byte-identical across service reruns.

use std::collections::BTreeMap;

use heron::pulse::{
    attach_slo, breach_count, build_pulse, render_dashboard, render_slo_report, validate_pulse,
    SloSpec,
};
use heron::serve::{parse_script, JobState, Supervisor};
use heron::trace::{check_trace, service_slice, slice_by_job, Json};
use heron_serve::build_session;

/// The shared chaos scenario: all three kill paths (crash after a
/// checkpoint, crash before any checkpoint, hang) on small jobs.
const SCRIPT: &str = "\
workers = 2
queue_capacity = 8
restart_budget = 2
checkpoint_every = 2
hang_grace_polls = 400
poll_interval_ms = 5

job a op=gemm shape=64x64x64 trials=32 seed=21
job b op=gemm shape=96x96x96 trials=32 seed=22 fault_rate=0.2
job c op=gemm shape=64x96x64 trials=24 seed=23

kill a attempt=0 round=3 kind=crash
kill b attempt=0 round=1 kind=crash
kill c attempt=0 round=2 kind=hang
";

fn run_service() -> Supervisor {
    let script = parse_script(SCRIPT).expect("script parses");
    let mut sup = Supervisor::from_script(script);
    sup.run();
    sup
}

#[test]
fn pulse_plane_is_byte_identical_across_service_runs() {
    let spec = SloSpec::parse(
        "\
reject_rate <= 0.5
recovery_max_s <= 60
queue_wait_s <= 120
",
    )
    .expect("spec parses");
    let first = build_pulse(&run_service().pulse_input(), &spec);
    let second = build_pulse(&run_service().pulse_input(), &spec);
    validate_pulse(&first).expect("valid pulse document");
    assert_eq!(
        first.render_pretty(),
        second.render_pretty(),
        "pulse.json diverged across reruns"
    );
    assert_eq!(render_slo_report(&first), render_slo_report(&second));
    assert_eq!(render_dashboard(&first, 3), render_dashboard(&second, 3));
    // The permissive spec passes; a tightened spec breaches — the gate
    // `heron_status --check` exits nonzero on.
    assert_eq!(breach_count(&first), 0, "{}", render_slo_report(&first));
    let tightened = SloSpec::parse("makespan_s <= 0.001\n").expect("spec parses");
    let rejudged = attach_slo(first, &tightened);
    assert!(breach_count(&rejudged) > 0, "tightened SLO must breach");
    // The hang (job c) surfaced its confirmed stall precursor.
    let jobs = rejudged.get("jobs").and_then(Json::as_arr).expect("jobs");
    let c = jobs
        .iter()
        .find(|j| j.get("id").and_then(Json::as_str) == Some("c"))
        .expect("job c");
    let warnings = c.get("warnings").and_then(Json::as_arr).expect("warnings");
    assert!(
        warnings
            .iter()
            .filter_map(Json::as_str)
            .any(|w| w.starts_with("pulse.warn.heartbeat_stall")),
        "job c should carry a heartbeat-stall warning"
    );
}

#[test]
fn merged_trace_slices_losslessly_and_sums_to_each_jobs_wall_clock() {
    let sup = run_service();
    let merged = sup.merged_trace_jsonl();
    let summary = check_trace(&merged).expect("merged trace validates");

    // Per-job span multiset of the merged trace, keyed by job id
    // (`-` = service-level / untagged).
    let mut expected: BTreeMap<String, Vec<(String, u64, u64)>> = BTreeMap::new();
    for span in &summary.spans {
        let key = span
            .ctx
            .as_ref()
            .map_or_else(|| "-".to_string(), |c| c.job.clone());
        expected
            .entry(key)
            .or_default()
            .push((span.name.clone(), span.t_open_ns, span.t_close_ns));
    }
    for spans in expected.values_mut() {
        spans.sort();
    }

    let slices = slice_by_job(&merged);
    assert_eq!(
        slices.keys().map(|s| s.as_str()).collect::<Vec<_>>(),
        ["a", "b", "c"],
        "every completed job slices out"
    );
    let mut reconstructed: BTreeMap<String, Vec<(String, u64, u64)>> = BTreeMap::new();
    for (job, slice) in &slices {
        let sub = check_trace(slice).expect("job slice validates standalone");
        // Exactness: the slice's top-level spans sum to the wall-clock
        // the worker recorded for the job's final attempt, to the ns.
        let wall_ns: u64 = sub
            .spans
            .iter()
            .filter(|s| s.parent == 0)
            .map(|s| s.dur_ns())
            .sum();
        let report = sup.report(job).expect("completed job has a report");
        assert_eq!(
            wall_ns, report.wall_ns,
            "job `{job}` slice does not sum to its recorded wall-clock"
        );
        let mut spans: Vec<(String, u64, u64)> = sub
            .spans
            .iter()
            .map(|s| (s.name.clone(), s.t_open_ns, s.t_close_ns))
            .collect();
        spans.sort();
        reconstructed.insert(job.clone(), spans);
    }
    // The service-level remainder, plus every slice, reproduces the
    // merged trace's span multiset exactly: slicing is lossless.
    let service = check_trace(&service_slice(&merged)).expect("service slice validates");
    let mut spans: Vec<(String, u64, u64)> = service
        .spans
        .iter()
        .map(|s| (s.name.clone(), s.t_open_ns, s.t_close_ns))
        .collect();
    spans.sort();
    reconstructed.insert("-".to_string(), spans);
    assert_eq!(reconstructed, expected, "slicing lost or invented spans");
}

#[test]
fn recovered_job_slice_equals_the_uninterrupted_resume_suffix() {
    let script = parse_script(SCRIPT).expect("script parses");
    let specs = script.jobs.clone();
    let mut sup = Supervisor::from_script(script);
    sup.run();
    assert_eq!(sup.state("a"), Some(JobState::Completed));
    let slices = slice_by_job(&sup.merged_trace_jsonl());

    // Job `a` crashed after round 3 with a round-2 checkpoint: its
    // final attempt must trace byte-identically to checkpointing an
    // uninterrupted session at round 2 and resuming it to completion.
    let spec_a = &specs[0];
    let mut head = build_session(spec_a, None).expect("builds");
    for _ in 0..2 {
        assert!(head.step(), "session finished before the kill boundary");
    }
    let text = head.checkpoint().to_text();
    let mut resumed = build_session(spec_a, Some(&text)).expect("resumes");
    while resumed.step() {}
    assert_eq!(
        slices["a"],
        resumed.tracer().to_jsonl(),
        "job a's sub-trace is not the uninterrupted run's suffix"
    );

    // Job `b` crashed before any checkpoint: its final attempt is a
    // from-scratch rerun, so its sub-trace equals a fresh session's.
    let mut reference = build_session(&specs[1], None).expect("builds");
    while reference.step() {}
    assert_eq!(
        slices["b"],
        reference.tracer().to_jsonl(),
        "job b's sub-trace is not a fresh run's trace"
    );
}
