//! Tunes a quantised 2-D convolution for the VTA accelerator, showing how
//! the automatically generated constraints capture VTA's explicit SRAM
//! capacities and its accumulator access-cycle rule.
//!
//! ```sh
//! cargo run --release --example vta_conv2d
//! ```

use heron::prelude::*;
use heron::tensor::ops::{conv2d, Conv2dConfig};

fn main() {
    let spec = heron::dla::vta();
    println!("target: {} — constraints from the spec:", spec.name);
    for c in spec.constraint_summary() {
        println!("  {c}");
    }

    // An int8 ResNet-style convolution.
    let cfg = Conv2dConfig::new(1, 28, 28, 128, 128, 3, 3, 1, 1).with_dtype(DType::I8);
    let dag = conv2d(cfg);
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "c2d-vta")
        .expect("conv2d maps onto the GEMM unit via im2col");

    println!(
        "\nschedule template ({} primitives):",
        space.template.primitives.len()
    );
    for p in space.template.primitives.iter().take(12) {
        println!("  {p}");
    }
    if space.template.primitives.len() > 12 {
        println!("  … {} more", space.template.primitives.len() - 12);
    }

    let mut tuner = Tuner::new(
        space,
        Measurer::new(spec.clone()),
        TuneConfig::quick(200),
        3,
    );
    let r = tuner.run();
    println!(
        "\nbest: {:.2} Gops ({:.1}% of the {:.1}-Gops peak), latency {:.2} ms",
        r.best_gflops,
        r.best_gflops * 1e9 / spec.peak_ops_per_sec() * 100.0,
        spec.peak_ops_per_sec() / 1e9,
        r.best_latency_s * 1e3
    );
    if let Some(k) = &r.best_kernel {
        for b in &k.buffers {
            println!("  buffer {} @{}: {} B", b.name, b.scope, b.bytes);
        }
        let comp = k.tensorized_stage().expect("tensorized");
        println!(
            "  GEMM-unit invocations per task: {} | inner accumulation extent: {} (>= 2 required)",
            comp.intrinsic_execs, comp.row_elems
        );
    }
}
