//! Library generation end to end: tune a set of operators, save the
//! resulting kernel library to disk, reload it, and materialise kernels
//! from the stored configurations without re-tuning — the deployment
//! workflow of the paper's title.
//!
//! ```sh
//! cargo run --release --example generate_library
//! ```

use heron::core::library::KernelLibrary;
use heron::prelude::*;

fn main() {
    let spec = heron::dla::v100();
    let workloads = [
        ("gemm-1024", heron::tensor::ops::gemm(1024, 1024, 1024)),
        ("gemm-g5", heron::tensor::ops::gemm(32, 1000, 4096)),
        (
            "c2d-c5",
            heron::tensor::ops::conv2d(heron::tensor::ops::Conv2dConfig::new(
                32, 14, 14, 256, 256, 3, 3, 1, 1,
            )),
        ),
    ];

    // 1. Generate the library.
    let mut lib = KernelLibrary::new();
    for (key, dag) in &workloads {
        match lib.tune_and_insert(key, dag, &spec, TuneConfig::quick(150), 42) {
            Some(e) => println!("{key}: {:.0} Gops ({:.1} us)", e.gflops, e.latency_s * 1e6),
            None => println!("{key}: no valid program found"),
        }
    }

    // 2. Persist and reload.
    let path = std::env::temp_dir().join("heron_demo_library.txt");
    lib.save(&path).expect("writable temp dir");
    let loaded = KernelLibrary::load(&path).expect("round-trips");
    assert_eq!(lib, loaded);
    println!("\nsaved {} entries to {}", loaded.len(), path.display());

    // 3. Deploy: materialise a stored kernel without tuning and verify it
    //    still measures at the recorded speed.
    let (key, dag) = &workloads[0];
    let kernel = loaded
        .materialize(key, dag, &spec)
        .expect("stored config is valid");
    let measured = Measurer::new(spec).measure(&kernel).expect("runs");
    let stored = loaded.get(key).expect("present");
    println!(
        "deployed `{key}` from the library: stored {:.0} Gops, re-measured {:.0} Gops",
        stored.gflops, measured.gflops
    );
    println!(
        "\ngenerated kernel:\n{}",
        heron::sched::kernel_pseudo_code(&kernel)
    );
}
