//! Performance *and* energy: tunes the same GEMM for all three DLA
//! families and reports latency, throughput, bottleneck, and the energy
//! breakdown — the efficiency story that motivates DLAs in the paper's
//! introduction.
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use heron::prelude::*;

fn main() {
    let trials = 200;
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>24}",
        "platform", "Gops", "uJ/run", "Gops/W", "peak %", "bound"
    );
    for spec in [heron::dla::v100(), heron::dla::dlboost(), heron::dla::vta()] {
        let dag = heron::tensor::ops::gemm_dtyped(1024, 1024, 1024, spec.in_dtype);
        let space = SpaceGenerator::new(spec.clone())
            .generate_named(&dag, &SpaceOptions::heron(), "gemm-1024")
            .expect("gemm is tensorizable everywhere");
        let mut tuner = Tuner::new(
            space,
            Measurer::new(spec.clone()),
            TuneConfig::quick(trials),
            17,
        );
        let result = tuner.run();
        let Some(kernel) = result.best_kernel else {
            println!("{:<10} no valid program", spec.name);
            continue;
        };
        let measurer = Measurer::new(spec.clone());
        let (m, e) = measurer.measure_with_energy(&kernel).expect("valid");
        let analysis = measurer.analyze(&kernel).expect("valid");
        println!(
            "{:<10} {:>10.0} {:>10.1} {:>12.1} {:>9.1}% {:>24}",
            spec.name,
            m.gflops,
            e.total_j() * 1e6,
            e.gops_per_watt(kernel.total_flops, m.latency_s),
            m.gflops * 1e9 / spec.peak_ops_per_sec() * 100.0,
            analysis.bound.to_string()
        );
    }
    println!("\n(int8 accelerators do the same GEMM with far less energy per run —");
    println!(" the efficiency argument from the paper's introduction.)");
}
