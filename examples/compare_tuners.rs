//! Compares Heron against the AutoTVM-, Ansor- and AMOS-like baselines and
//! the vendor-library model on two TensorCore workloads: a large square
//! GEMM (vendor home turf) and a skinny inference GEMM (where automatic
//! constraint generation shines).
//!
//! ```sh
//! cargo run --release --example compare_tuners
//! ```

use heron::prelude::*;

fn main() {
    let spec = heron::dla::v100();
    let trials = 300;
    let cases = [
        (
            "G2: 4096x4096x4096",
            heron::tensor::ops::gemm(4096, 4096, 4096),
        ),
        ("G5: 32x1000x4096", heron::tensor::ops::gemm(32, 1000, 4096)),
    ];
    for (label, dag) in cases {
        println!("== {label} ({trials} trials each) ==");
        println!(
            "{:<10} {:>12} {:>10} {:>9} {:>9}",
            "approach", "Gops", "latency", "valid", "invalid"
        );
        for approach in Approach::all() {
            let o = tune(approach, &spec, &dag, label, trials, 7).expect("generates");
            println!(
                "{:<10} {:>12.0} {:>8.1}us {:>9} {:>9}",
                o.name,
                o.best_gflops,
                o.best_latency_s * 1e6,
                o.valid_trials,
                o.invalid_trials
            );
        }
        if let Some(v) = vendor_outcome(&spec, &dag, label, 7) {
            println!(
                "{:<10} {:>12.0} {:>8.1}us {:>9} {:>9}",
                "cuDNN*",
                v.gflops,
                v.latency_s * 1e6,
                "-",
                "-"
            );
        }
        println!();
    }
    println!("cuDNN* = vendor-library model (expert kernel menu on the same simulator)");
}
