//! End-to-end network tuning: generates libraries for every distinct BERT
//! layer (batch 16) on the simulated V100 TensorCore and reports the
//! occurrence-weighted network latency, Heron vs the vendor library.
//!
//! ```sh
//! cargo run --release --example network_bert
//! ```

use heron::prelude::*;

fn main() {
    let spec = heron::dla::v100();
    let trials = 200;
    let layers = heron::workloads::network("bert");
    println!(
        "BERT (batch 16) on simulated V100 — {} distinct layers",
        layers.len()
    );
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>12}",
        "layer", "count", "Heron (us)", "vendor (us)", "speedup"
    );

    let mut total_heron = 0.0;
    let mut total_vendor = 0.0;
    for (w, count) in &layers {
        let dag = w.build(DType::F16);
        let heron = tune(Approach::Heron, &spec, &dag, &w.name, trials, 11)
            .expect("bert layers are tensorizable");
        let vendor = vendor_outcome(&spec, &dag, &w.name, 11).expect("gpu vendor model");
        total_heron += heron.best_latency_s * *count as f64;
        total_vendor += vendor.latency_s * *count as f64;
        println!(
            "{:<12} {:>6} {:>14.1} {:>14.1} {:>11.2}x",
            w.name,
            count,
            heron.best_latency_s * 1e6,
            vendor.latency_s * 1e6,
            vendor.latency_s / heron.best_latency_s
        );
    }
    println!(
        "\nnetwork latency: Heron {:.2} ms vs vendor {:.2} ms ({:.2}x)",
        total_heron * 1e3,
        total_vendor * 1e3,
        total_vendor / total_heron
    );
}
