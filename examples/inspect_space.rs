//! Inspects a generated constrained space: the schedule template, the
//! CSP census (paper Tables 4/5), a few random valid configurations, and
//! the effect of constraint-based crossover on a pair of parents.
//!
//! ```sh
//! cargo run --release --example inspect_space
//! ```

use heron::core::explore::cga::offspring_csp;
use heron::prelude::*;
use heron_rng::HeronRng;

fn main() {
    let spec = heron::dla::v100();
    let dag = heron::tensor::ops::conv2d(heron::tensor::ops::Conv2dConfig::new(
        16, 14, 14, 256, 256, 3, 3, 1, 1,
    ));
    let space = SpaceGenerator::new(spec)
        .generate_named(&dag, &SpaceOptions::heron(), "c2d-C5")
        .expect("generates");

    println!("== schedule template ==");
    for p in &space.template.primitives {
        println!("  {p}");
    }

    let census = heron::csp::SpaceCensus::of(&space.csp);
    println!("\n== CSP census (cf. paper Tables 4-5) ==");
    println!(
        "  variables: {} (arch {}, loop {}, tunable {}, other {})",
        census.total_vars(),
        census.arch_vars,
        census.loop_length_vars,
        census.tunable_vars,
        census.other_vars
    );
    println!("  constraints: {} by type:", census.total_constraints());
    for (tag, n) in &census.constraints_by_type {
        println!("    {tag}: {n}");
    }
    println!(
        "  raw tunable cross-product: 10^{:.1} configurations",
        space.csp.tunable_space_log10()
    );

    println!("\n== random valid configurations (RandSAT) ==");
    let mut rng = HeronRng::from_seed(1);
    let sols = heron::csp::rand_sat(&space.csp, &mut rng, 3).expect_sat("generated space");
    let tunables = space.csp.tunables();
    for (i, sol) in sols.iter().enumerate() {
        let values: Vec<String> = tunables
            .iter()
            .take(8)
            .map(|&v| format!("{}={}", space.csp.var(v).name, sol.value(v)))
            .collect();
        println!("  #{i}: {} …", values.join(" "));
    }

    println!("\n== constraint-based crossover (Algorithm 3) ==");
    let keys: Vec<_> = tunables.iter().copied().take(4).collect();
    let child_csp = offspring_csp(&space.csp, &keys, &sols[0], &sols[1], &mut rng);
    println!(
        "  CSP_initial has {} constraints; the offspring CSP has {} (crossover IN constraints on {} key variables, one removed by mutation)",
        space.csp.num_constraints(),
        child_csp.num_constraints(),
        keys.len()
    );
    let children = heron::csp::rand_sat(&child_csp, &mut rng, 2).solutions;
    for child in &children {
        assert!(heron::csp::validate(&space.csp, child));
        println!("  offspring is valid under CSP_initial ✓");
    }
}
