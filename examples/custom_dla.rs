//! Customisation (paper Section 4, "Customization"): targeting a *new*
//! accelerator only requires describing its architectural limits — the
//! generation rules adapt automatically.
//!
//! This example defines a fictional edge accelerator with flexible
//! functional units (several legal intrinsic shapes, Cambricon-style),
//! asymmetric scratchpads, and a wide DMA, then tunes a GEMM for it. Note
//! the SELECT constraints tying `(m, n, k)` to a single shape selector so
//! that only legal combinations are explored.
//!
//! ```sh
//! cargo run --release --example custom_dla
//! ```

use heron::dla::{DlaFamily, DlaSpec, VtaParams};
use heron::prelude::*;
use heron::sched::MemScope;

fn edge_npu() -> DlaSpec {
    DlaSpec {
        name: "edge-npu".into(),
        family: DlaFamily::Vta(VtaParams {
            clock_ghz: 0.8,
            macs_per_cycle: 2048.0,
            dma_bytes_per_cycle: 64.0,
            input_buf_bytes: 256 * 1024,
            weight_buf_bytes: 512 * 1024,
            acc_buf_bytes: 96 * 1024,
            min_access_cycle: 2,
            issue_overhead_cycles: 24.0,
        }),
        // Flexible units: four legal shapes.
        intrinsic_shapes: vec![(1, 32, 32), (2, 32, 32), (1, 64, 32), (1, 32, 64)],
        vector_lengths: vec![1, 4, 16, 64],
        capacities: vec![
            (MemScope::VtaInput, 256 * 1024),
            (MemScope::VtaWeight, 512 * 1024),
            (MemScope::VtaAcc, 96 * 1024),
        ],
        in_dtype: DType::I8,
    }
}

fn main() {
    let spec = edge_npu();
    println!("custom DLA `{}`:", spec.name);
    for c in spec.constraint_summary() {
        println!("  {c}");
    }

    let dag = heron::tensor::ops::gemm_dtyped(1024, 1024, 1024, DType::I8);
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "gemm-edge")
        .expect("gemm is tensorizable");
    println!(
        "\ngenerated space: {} vars, {} constraints (includes the shape-selector SELECTs)",
        space.csp.num_vars(),
        space.csp.num_constraints()
    );

    let mut tuner = Tuner::new(
        space,
        Measurer::new(spec.clone()),
        TuneConfig::quick(200),
        9,
    );
    let r = tuner.run();
    println!(
        "best: {:.1} Gops ({:.1}% of peak), invalid trials: {}",
        r.best_gflops,
        r.best_gflops * 1e9 / spec.peak_ops_per_sec() * 100.0,
        r.invalid_trials
    );
    if let Some(k) = &r.best_kernel {
        let (m, n, kk) = k
            .tensorized_stage()
            .and_then(|s| s.intrinsic)
            .expect("tensorized");
        println!("chosen intrinsic shape: ({m}, {n}, {kk})");
        assert!(
            spec.allows_intrinsic(m, n, kk),
            "only legal shapes are explored"
        );
    }
}
