//! Quickstart: generate a constrained space for a GEMM on a TensorCore
//! GPU, explore it with the constraint-based genetic algorithm, and print
//! the best program found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use heron::prelude::*;

fn main() {
    // A 1024^3 half-precision matrix multiply.
    let dag = heron::tensor::ops::gemm(1024, 1024, 1024);
    println!(
        "compute:\n{}",
        heron::tensor::program::naive_program(&dag).to_pseudo_code()
    );

    // Stage 1: constrained space generation (paper Section 4).
    let spec = heron::dla::v100();
    let space = SpaceGenerator::new(spec.clone())
        .generate_named(&dag, &SpaceOptions::heron(), "gemm-1024")
        .expect("gemm is tensorizable");
    let census = heron::csp::SpaceCensus::of(&space.csp);
    println!(
        "generated CSP_initial: {} variables, {} constraints, {} tunables",
        census.total_vars(),
        census.total_constraints(),
        census.tunable_vars
    );

    // Stage 2: constrained space exploration with CGA (paper Section 5).
    let trials = 300;
    let mut tuner = Tuner::new(
        space,
        Measurer::new(spec.clone()),
        TuneConfig::quick(trials),
        42,
    );
    let result = tuner.run();

    println!(
        "\nafter {trials} measured trials: best {:.0} Gops ({:.1}% of peak), latency {:.1} us",
        result.best_gflops,
        result.best_gflops * 1e9 / spec.peak_ops_per_sec() * 100.0,
        result.best_latency_s * 1e6
    );
    println!(
        "valid trials: {} | invalid: {} (CGA offspring are valid by construction)",
        result.valid_trials, result.invalid_trials
    );
    if let Some(kernel) = &result.best_kernel {
        println!("\nbest kernel:\n{kernel}");
    }
}
