//! End-to-end model compilation through the graph front end: build the
//! full ResNet-50 graph, run operator fusion, tune every distinct
//! convolution once (tuning cache), and report the compiled model.
//!
//! ```sh
//! cargo run --release --example compile_resnet
//! ```

use heron::graph::{compile, fuse, models, CompileOptions};

fn main() {
    let batch = 16;
    let g = models::resnet50(batch);
    println!(
        "ResNet-50 @ batch {batch}: {} nodes, {:.1} Gflops of MAC work",
        g.len(),
        g.mac_flops() as f64 / 1e9
    );

    let fused = fuse::fuse(&g);
    let absorbed: usize = fused.layers.iter().map(|l| l.epilogue.len()).sum();
    println!(
        "fusion: {} nodes -> {} fused layers ({absorbed} element-wise ops absorbed)",
        g.len(),
        fused.len()
    );

    let spec = heron::dla::v100();
    let model = compile::compile(
        &g,
        &fused,
        &spec,
        &CompileOptions {
            trials: 120,
            seed: 42,
        },
    );
    println!(
        "\ntuned {} distinct workloads, {} layers served from the cache",
        model.tuned_workloads, model.cache_hits
    );
    println!(
        "end-to-end latency: {:.2} ms ({:.0}% in tuned MAC kernels, effective {:.1} Tflops)",
        model.latency_s() * 1e3,
        model.mac_fraction() * 100.0,
        g.mac_flops() as f64 / model.latency_s() / 1e12
    );

    // Show the five slowest layers.
    let mut layers = model.layers.clone();
    layers.sort_by(|a, b| b.latency_s.partial_cmp(&a.latency_s).expect("finite"));
    println!("\nslowest layers:");
    for l in layers.iter().take(5) {
        println!("  {:<16} {:>9.1} us", l.name, l.latency_s * 1e6);
    }
}
