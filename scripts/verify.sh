#!/usr/bin/env bash
# Tier-1 verification for the Heron reproduction (see ROADMAP.md).
#
# Everything runs --offline: the workspace must build from a clean checkout
# with no registry access (DESIGN.md, "Zero-dependency & determinism
# policy"). A registry dependency sneaking back into any Cargo.toml is a
# build break on air-gapped machines, so we lint for it explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== registry-dependency lint =="
# Only path dependencies inside the workspace are allowed. In particular the
# previously vendored external packages (the registry RNG crate, the property
# -testing crate, the statistics bench harness) must not reappear.
banned='^[[:space:]]*(rand|rand_[a-z0-9_]+|proptest|criterion)[[:space:]]*[=.]'
if grep -rInE "$banned" --include=Cargo.toml .; then
    echo "error: registry dependency found in a Cargo.toml (listed above)" >&2
    echo "hint: use heron-rng / heron-testkit instead (DESIGN.md policy)" >&2
    exit 1
fi
# Belt and braces: no Cargo.toml may name the banned packages at all.
if grep -rIn --include=Cargo.toml -wE 'rand|proptest|criterion' .; then
    echo "error: banned package name appears in a Cargo.toml (listed above)" >&2
    exit 1
fi
echo "ok: no registry dependencies"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
# Lint everything (lib, bins, tests, benches) with warnings promoted to
# errors so lints cannot accumulate. Skipped gracefully on toolchains
# without the clippy component.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint gate" >&2
fi

echo "== offline release build (workspace) =="
cargo build --release --offline --workspace

echo "== offline tests (workspace) =="
# NB: a bare `cargo test` from the root only tests the root package;
# --workspace covers every crate, including heron-rng golden-stream tests
# and the heron-testkit self-tests.
cargo test -q --offline --workspace

echo "== fault-injection smoke (resilient tuning) =="
# A quick tune at a 10% transient-fault rate must still complete every
# trial and find a valid program (DESIGN.md §6); exits non-zero otherwise.
cargo run --release --offline -p heron-bench --bin fault_sweep -- --smoke >/dev/null
echo "ok: tuner finds valid programs under injected faults"

echo "== observability smoke (traced tuning) =="
# A traced smoke tune must produce (a) a JSONL trace that passes the
# structural validator (balanced spans, contiguous seq, monotone
# timestamps — DESIGN.md §7) and (b) a metrics snapshot covering at
# least 12 distinct instruments across the pipeline layers.
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
cargo run --release --offline -p heron-bench --bin heron_cli -- \
    tune --op gemm --shape 256x256x256 --trials 24 --fault-rate 0.2 \
    --trace-out "$obs_dir/trace.jsonl" --metrics-out "$obs_dir/metrics.tsv" \
    >/dev/null 2>&1
cargo run --release --offline -p heron-bench --bin trace_report -- \
    "$obs_dir/trace.jsonl" --check
instruments=$(($(wc -l < "$obs_dir/metrics.tsv") - 1))
if [ "$instruments" -lt 12 ]; then
    echo "error: traced tune registered only $instruments instruments (<12)" >&2
    exit 1
fi
for layer in csp. cga. model. measure. dla.; do
    if ! grep -q "^$layer" "$obs_dir/metrics.tsv"; then
        echo "error: no \`$layer*\` instrument in the metrics snapshot" >&2
        exit 1
    fi
done
echo "ok: trace validates; $instruments instruments across all layers"

echo "== insight smoke (search-health analytics + perf trajectory) =="
# A traced tune with insight enabled must emit a schema-valid
# `insight.json`; `bench_snapshot` must emit a schema-valid
# `BENCH_heron.json`; and `bench_compare` comparing that snapshot
# against itself must pass the regression gate (DESIGN.md §7,
# "Search-health analytics & perf trajectory"). The committed
# `BENCH_heron.json` baseline is regenerated with the default
# seed/trials; this stage uses a reduced budget so it stays fast.
cargo run --release --offline -p heron-bench --bin heron_cli -- \
    tune --op gemm --shape 256x256x256 --trials 24 \
    --insight-out "$obs_dir/insight.json" >/dev/null 2>&1
if ! grep -q '"schema": "heron-insight-v1"' "$obs_dir/insight.json"; then
    echo "error: insight.json missing the heron-insight-v1 schema id" >&2
    exit 1
fi
cargo run --release --offline -p heron-bench --bin bench_snapshot -- \
    --trials 24 --out "$obs_dir/BENCH_smoke.json" >/dev/null 2>&1
cargo run --release --offline -p heron-bench --bin bench_compare -- \
    "$obs_dir/BENCH_smoke.json" "$obs_dir/BENCH_smoke.json" >/dev/null
# The committed baseline must stay parseable and schema-valid (the gate
# validates both inputs before comparing).
if [ -f BENCH_heron.json ]; then
    cargo run --release --offline -p heron-bench --bin bench_compare -- \
        BENCH_heron.json BENCH_heron.json >/dev/null
fi
echo "ok: insight.json + BENCH snapshot validate; self-comparison passes the gate"

echo "== solver-throughput smoke (RandSAT sol_per_kprop gate) =="
# The RandSAT probe inside `bench_snapshot` is a pure count: seed 2023,
# 64 solutions, fixed spaces — independent of the trial budget, so the
# reduced-budget smoke snapshot carries the exact `sol_per_kprop` the
# full baseline does. Gate it against the committed baseline with zero
# tolerance: any propagation-count regression in the solver hot path
# fails verification. The other metrics depend on the trial budget
# (24 here vs the baseline's full run), so they get no-op limits.
if [ -f BENCH_heron.json ]; then
    cargo run --release --offline -p heron-bench --bin bench_compare -- \
        BENCH_heron.json "$obs_dir/BENCH_smoke.json" \
        --max-throughput-drop 0 \
        --max-perf-drop 1 --max-latency-rise 1000000 --max-accuracy-drop 1
    echo "ok: sol_per_kprop no worse than the committed baseline"
else
    echo "warning: no committed BENCH_heron.json; skipping throughput gate" >&2
fi

echo "== robustness smoke (hardened exploration) =="
# Over-constrained and UNSAT spaces must terminate with a classified
# status (repair/fallback on satisfiable spaces, `root-infeasible` +
# diagnosis on contradictory ones), and deadline-bounded solves must be
# deterministic (DESIGN.md §6, "Solver-side failure & repair").
cargo run --release --offline -p heron-bench --bin space_stress -- --smoke >/dev/null
echo "ok: over-constrained + UNSAT spaces behave (space_stress --smoke)"

# A corrupt checkpoint must be rejected up front: write a real
# checkpoint, flip one byte mid-file, and require `--resume` to exit
# non-zero naming the corruption (never a partial load).
ck="$obs_dir/gemm.ckpt"
cargo run --release --offline -p heron-bench --bin heron_cli -- \
    tune --op gemm --shape 256x256x256 --trials 16 \
    --pause-at 8 --checkpoint "$ck" >/dev/null 2>&1
size=$(wc -c < "$ck")
mid=$((size / 2))
orig=$(dd if="$ck" bs=1 skip="$mid" count=1 2>/dev/null)
flip='Z'; [ "$orig" = 'Z' ] && flip='Q'
printf '%s' "$flip" | dd of="$ck" bs=1 seek="$mid" conv=notrunc 2>/dev/null
if cargo run --release --offline -p heron-bench --bin heron_cli -- \
    tune --op gemm --shape 256x256x256 --trials 16 \
    --resume "$ck" >"$obs_dir/resume.out" 2>&1; then
    echo "error: resume from a corrupted checkpoint succeeded" >&2
    exit 1
fi
if ! grep -qi "corrupt" "$obs_dir/resume.out"; then
    echo "error: corrupted-checkpoint rejection does not mention corruption:" >&2
    cat "$obs_dir/resume.out" >&2
    exit 1
fi
echo "ok: bit-flipped checkpoint rejected as corrupt (byte $mid)"

echo "== service-robustness smoke (heron-serve chaos harness) =="
# The supervised tuning service must survive injected worker crashes,
# hangs, a poisoned job, and admission overflow — and supervision must
# be invisible in the results (DESIGN.md §9): the smoke self-asserts
# that every recovered job's deterministic record is byte-identical to
# an uninterrupted run, that the poisoned job is quarantined after its
# restart budget, and that a second full service run reproduces the
# manifest byte for byte. Its trace must pass the structural validator.
cargo run --release --offline -p heron-bench --bin heron_serve -- \
    --smoke --trace-out "$obs_dir/serve_trace.jsonl" \
    --pulse-out "$obs_dir/pulse.json" --slo scripts/serve_smoke.slo \
    --slo-report "$obs_dir/slo_report.txt" --baseline BENCH_heron.json \
    --scope-out "$obs_dir/scope.json" \
    --postmortem-dir "$obs_dir/postmortems" >/dev/null
cargo run --release --offline -p heron-bench --bin trace_report -- \
    "$obs_dir/serve_trace.jsonl" --check
echo "ok: chaos smoke passes; recovered jobs byte-identical; service trace validates"

echo "== scope smoke (flight recorder, postmortems, critical path) =="
# The forensics layer (DESIGN.md §12) gates the build: the chaos
# smoke's injected crash must leave a postmortem bundle behind, and the
# reconstructed schedule must satisfy the central scope invariant —
# the critical path's segment durations sum *exactly* to the recorded
# makespan (heron_scope --check validates it and prints the equality).
test -f "$obs_dir/postmortems/g1.attempt0.crash.jsonl" || {
    echo "error: no postmortem bundle for the injected g1 crash" >&2
    ls "$obs_dir/postmortems" >&2 || true
    exit 1
}
test -f "$obs_dir/postmortems/g2.attempt0.hang.jsonl" || {
    echo "error: no postmortem bundle for the injected g2 hang" >&2
    exit 1
}
cargo run --release --offline -p heron-bench --bin heron_scope -- \
    "$obs_dir/scope.json" --check > "$obs_dir/scope_check.out"
grep -q 'critical-path sum == makespan' "$obs_dir/scope_check.out" || {
    echo "error: heron_scope did not confirm critical-path sum == makespan:" >&2
    cat "$obs_dir/scope_check.out" >&2
    exit 1
}
echo "ok: crash/hang bundles present; scope.json valid; critical path sums to the makespan"

echo "== pulse smoke (per-job SLIs, SLO gate, ops dashboard) =="
# The derived telemetry plane (DESIGN.md §10) gates the build: the
# committed SLO spec must hold over the chaos smoke's pulse.json, and a
# deliberately tightened spec must breach — proving the gate can fail,
# not just that it happens to pass. The dashboard itself is rendered as
# part of the check (it is a pure function of pulse.json, so any panic
# or nondeterminism surfaces here).
cargo run --release --offline -p heron-bench --bin heron_status -- \
    "$obs_dir/pulse.json" --check >/dev/null
grep -q '^verdict: PASS$' "$obs_dir/slo_report.txt" || {
    echo "error: committed SLO spec does not pass on the chaos smoke:" >&2
    cat "$obs_dir/slo_report.txt" >&2
    exit 1
}
printf 'makespan_s <= 20\n' > "$obs_dir/tight.slo"
if cargo run --release --offline -p heron-bench --bin heron_status -- \
    "$obs_dir/pulse.json" --slo "$obs_dir/tight.slo" --check \
    >/dev/null 2>&1; then
    echo "error: tightened SLO spec (makespan_s <= 20) did not breach" >&2
    exit 1
fi
echo "ok: committed SLO spec passes; tightened spec fails the gate"

echo "== audit smoke (differential constraint-space auditor) =="
# The generated spaces themselves gate the build (DESIGN.md §11): a
# clean committed spec must audit clean on every platform (no CSP-SAT
# point the simulator rejects, no sim-valid schedule the CSP rejects),
# same-seed audits must be byte-identical, and a deliberately damaged
# rule must fail the check — proving the auditor can fail, not just
# that it happens to pass.
for dla in v100 dlboost vta; do
    cargo run --release --offline -p heron-bench --bin heron_audit -- \
        --dla "$dla" --op gemm --shape 128x128x128 --samples 32 \
        --out "$obs_dir/audit_$dla.json" --check >/dev/null
done
cargo run --release --offline -p heron-bench --bin heron_audit -- \
    --dla v100 --op gemm --shape 128x128x128 --samples 32 \
    --out "$obs_dir/audit_v100_rerun.json" --check >/dev/null
cmp -s "$obs_dir/audit_v100.json" "$obs_dir/audit_v100_rerun.json" || {
    echo "error: same-seed audit.json is not byte-identical" >&2
    exit 1
}
if cargo run --release --offline -p heron-bench --bin heron_audit -- \
    --dla v100 --op gemm --shape 128x128x128 --samples 32 \
    --mutate drop-le --check >/dev/null 2>&1; then
    echo "error: audit --check passed on a space with a dropped LE rule" >&2
    exit 1
fi
echo "ok: clean specs audit clean (3 platforms, byte-stable); dropped rule fails the gate"

echo "== telemetry-name lint (serve.* / pulse.* / audit.* / scope.* documentation) =="
# Every serve.*/pulse.*/audit.*/scope.* counter, point, or span name
# the code emits must be documented in DESIGN.md §10/§11/§12's name
# tables, so the dashboard and trace reports never show an unexplained
# metric.
undocumented=""
for name in $(grep -rhoE '"(serve|pulse|audit|scope)\.[a-z_.]+"' crates --include='*.rs' \
    | tr -d '"' | sort -u); do
    grep -q -- "$name" DESIGN.md || undocumented="$undocumented $name"
done
if [ -n "$undocumented" ]; then
    echo "error: telemetry names missing from DESIGN.md §10-§12:$undocumented" >&2
    exit 1
fi
echo "ok: every serve.*/pulse.*/audit.*/scope.* telemetry name is documented"

echo "== fitness-robustness lint (explorer/solver/model layers) =="
# Two recurring NaN/error-poisoning bugs, kept out by lint:
#  - `unwrap_or(0.0)` on a measurement feeds failures into the cost
#    model as perfect-zero scores (use the penalty policy instead);
#  - `partial_cmp(..)` on fitness silently reorders NaNs (use
#    `f64::total_cmp` after sanitising at the source).
poison=$(grep -rn --include='*.rs' -E 'unwrap_or\(0\.0\)|partial_cmp' \
    crates/core/src crates/csp/src crates/cost/src \
    | grep -vE ':[0-9]+:[[:space:]]*//' \
    || true)
if [ -n "$poison" ]; then
    echo "error: fitness-poisoning pattern in a library crate:" >&2
    echo "$poison" >&2
    echo "hint: penalty-fraction scoring + f64::total_cmp (DESIGN.md §6)" >&2
    exit 1
fi
echo "ok: no unwrap_or(0.0) / partial_cmp on the fitness paths"

echo "== stray-print lint (library crates) =="
# Library crates must report through heron-trace (or return values), not
# by printing: only the bench binaries and the test harness may talk to
# stdout/stderr directly. Doc comments and test modules are exempt; the
# lint is line-based, so code-fence examples inside `//!`/`///` blocks
# and `#[cfg(test)]` sections are matched by their comment or `grep -v`
# context below.
stray=$(grep -rn --include='*.rs' -E '\b(println!|eprintln!)' crates src \
    | grep -v '^crates/bench/' \
    | grep -v '^crates/testkit/' \
    | grep -vE ':[0-9]+:[[:space:]]*//' \
    | grep -vE '(^|/)tests/' \
    || true)
if [ -n "$stray" ]; then
    echo "error: direct println!/eprintln! in a library crate:" >&2
    echo "$stray" >&2
    echo "hint: route diagnostics through heron-trace (DESIGN.md §7)" >&2
    exit 1
fi
echo "ok: no stray prints outside bench/testkit"

echo "verify.sh: all checks passed"
